#include "stats/pchip.h"

#include <gtest/gtest.h>

#include <cmath>

namespace autosens::stats {
namespace {

TEST(PchipTest, Validation) {
  EXPECT_THROW(PchipCurve({}), std::invalid_argument);
  EXPECT_THROW(PchipCurve({{1.0, 2.0}}), std::invalid_argument);
  EXPECT_THROW(PchipCurve({{1.0, 2.0}, {1.0, 3.0}}), std::invalid_argument);
  EXPECT_THROW(PchipCurve({{2.0, 2.0}, {1.0, 3.0}}), std::invalid_argument);
}

TEST(PchipTest, HitsAnchorsExactly) {
  const PchipCurve curve({{0.0, 1.0}, {1.0, 0.5}, {3.0, 0.4}, {5.0, 0.1}});
  for (const auto& anchor : curve.anchors()) {
    EXPECT_NEAR(curve(anchor.x), anchor.y, 1e-12);
  }
}

TEST(PchipTest, TwoAnchorsIsLinear) {
  const PchipCurve curve({{0.0, 0.0}, {10.0, 20.0}});
  EXPECT_NEAR(curve(5.0), 10.0, 1e-12);
  EXPECT_NEAR(curve(2.5), 5.0, 1e-12);
}

TEST(PchipTest, ClampsOutsideRange) {
  const PchipCurve curve({{1.0, 3.0}, {2.0, 7.0}});
  EXPECT_DOUBLE_EQ(curve(0.0), 3.0);
  EXPECT_DOUBLE_EQ(curve(9.0), 7.0);
}

TEST(PchipTest, MonotoneDataGivesMonotoneInterpolant) {
  // The defining property: no overshoot between decreasing anchors. A
  // natural cubic spline would overshoot here; PCHIP must not.
  const PchipCurve curve(
      {{0.0, 1.0}, {300.0, 1.0}, {500.0, 0.88}, {1000.0, 0.68}, {1500.0, 0.61},
       {2000.0, 0.59}, {5000.0, 0.55}});
  double previous = curve(0.0);
  for (double x = 1.0; x <= 5000.0; x += 7.0) {
    const double y = curve(x);
    EXPECT_LE(y, previous + 1e-12) << "at x=" << x;
    EXPECT_GE(y, 0.55 - 1e-12);
    EXPECT_LE(y, 1.0 + 1e-12);
    previous = y;
  }
}

TEST(PchipTest, FlatSegmentsStayFlat) {
  const PchipCurve curve({{0.0, 1.0}, {1.0, 1.0}, {2.0, 0.5}, {3.0, 0.5}});
  for (double x = 0.0; x <= 1.0; x += 0.1) EXPECT_NEAR(curve(x), 1.0, 1e-12);
  for (double x = 2.0; x <= 3.0; x += 0.1) EXPECT_NEAR(curve(x), 0.5, 1e-12);
}

TEST(PchipTest, LocalExtremumHasZeroSlope) {
  const PchipCurve curve({{0.0, 0.0}, {1.0, 1.0}, {2.0, 0.0}});
  EXPECT_NEAR(curve.derivative(1.0), 0.0, 1e-12);
  // And the interpolant never exceeds the peak.
  for (double x = 0.0; x <= 2.0; x += 0.01) EXPECT_LE(curve(x), 1.0 + 1e-12);
}

TEST(PchipTest, DerivativeMatchesFiniteDifference) {
  const PchipCurve curve({{0.0, 1.0}, {1.0, 0.7}, {2.5, 0.6}, {4.0, 0.2}});
  for (double x = 0.1; x < 4.0; x += 0.37) {
    const double h = 1e-6;
    const double fd = (curve(x + h) - curve(x - h)) / (2.0 * h);
    EXPECT_NEAR(curve.derivative(x), fd, 1e-4) << "at x=" << x;
  }
}

TEST(PchipTest, DerivativeZeroOutsideRange) {
  const PchipCurve curve({{0.0, 1.0}, {1.0, 2.0}});
  EXPECT_DOUBLE_EQ(curve.derivative(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(curve.derivative(2.0), 0.0);
}

/// Property: PCHIP stays within the local anchor envelope on every segment
/// for a variety of shapes.
class PchipEnvelopeProperty : public ::testing::TestWithParam<int> {};

TEST_P(PchipEnvelopeProperty, SegmentsStayWithinAnchorEnvelope) {
  std::vector<CurvePoint> anchors;
  for (int i = 0; i <= 10; ++i) {
    const double x = i;
    double y = 0.0;
    switch (GetParam()) {
      case 0: y = std::exp(-0.3 * i); break;
      case 1: y = (i % 2 == 0) ? 1.0 : 0.0; break;   // zig-zag
      case 2: y = i * i; break;                      // convex increasing
      case 3: y = std::sin(0.6 * i); break;
    }
    anchors.push_back({x, y});
  }
  const PchipCurve curve(anchors);
  for (std::size_t s = 0; s + 1 < anchors.size(); ++s) {
    const double lo = std::min(anchors[s].y, anchors[s + 1].y);
    const double hi = std::max(anchors[s].y, anchors[s + 1].y);
    for (double t = 0.0; t <= 1.0; t += 0.05) {
      const double x = anchors[s].x + t * (anchors[s + 1].x - anchors[s].x);
      const double y = curve(x);
      EXPECT_GE(y, lo - 1e-9) << "shape " << GetParam() << " x=" << x;
      EXPECT_LE(y, hi + 1e-9) << "shape " << GetParam() << " x=" << x;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, PchipEnvelopeProperty, ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace autosens::stats
