#include "stats/linalg.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace autosens::stats {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m.at(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m.at(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
}

TEST(MatrixTest, RejectsZeroDimensions) {
  EXPECT_THROW(Matrix(0, 3), std::invalid_argument);
  EXPECT_THROW(Matrix(3, 0), std::invalid_argument);
}

TEST(MatrixTest, Transpose) {
  Matrix m(2, 3);
  m.at(0, 1) = 7.0;
  m.at(1, 2) = 3.0;
  const auto t = m.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.at(1, 0), 7.0);
  EXPECT_DOUBLE_EQ(t.at(2, 1), 3.0);
}

TEST(MatrixTest, MultiplyMatrices) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 3.0;
  a.at(1, 1) = 4.0;
  const auto b = a.multiply(a);
  EXPECT_DOUBLE_EQ(b.at(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(b.at(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(b.at(1, 0), 15.0);
  EXPECT_DOUBLE_EQ(b.at(1, 1), 22.0);
}

TEST(MatrixTest, MultiplyShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(a.multiply(b), std::invalid_argument);
}

TEST(MatrixTest, MultiplyVector) {
  Matrix a(2, 3);
  for (std::size_t c = 0; c < 3; ++c) {
    a.at(0, c) = static_cast<double>(c + 1);
    a.at(1, c) = 1.0;
  }
  const std::vector<double> v = {1.0, 1.0, 1.0};
  const auto out = a.multiply(v);
  EXPECT_DOUBLE_EQ(out[0], 6.0);
  EXPECT_DOUBLE_EQ(out[1], 3.0);
}

TEST(CholeskySolveTest, SolvesSpdSystem) {
  Matrix a(2, 2);
  a.at(0, 0) = 4.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 3.0;
  const std::vector<double> b = {10.0, 8.0};
  const auto x = cholesky_solve(a, b);
  // Verify A x = b.
  EXPECT_NEAR(4.0 * x[0] + 2.0 * x[1], 10.0, 1e-12);
  EXPECT_NEAR(2.0 * x[0] + 3.0 * x[1], 8.0, 1e-12);
}

TEST(CholeskySolveTest, IdentitySolvesToRhs) {
  Matrix eye(3, 3);
  for (std::size_t i = 0; i < 3; ++i) eye.at(i, i) = 1.0;
  const std::vector<double> b = {1.0, -2.0, 3.0};
  const auto x = cholesky_solve(eye, b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(x[i], b[i]);
}

TEST(CholeskySolveTest, RejectsNonPositiveDefinite) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 1.0;  // eigenvalues 3, -1
  const std::vector<double> b = {1.0, 1.0};
  EXPECT_THROW(cholesky_solve(a, b), std::runtime_error);
}

TEST(CholeskySolveTest, RejectsShapeMismatch) {
  Matrix a(2, 3);
  const std::vector<double> b = {1.0, 1.0};
  EXPECT_THROW(cholesky_solve(a, b), std::invalid_argument);
}

TEST(PolyfitTest, RecoversExactPolynomial) {
  // y = 2 - 3x + 0.5x^2
  std::vector<double> x;
  std::vector<double> y;
  for (int i = -5; i <= 5; ++i) {
    x.push_back(i);
    y.push_back(2.0 - 3.0 * i + 0.5 * i * i);
  }
  const auto c = polyfit(x, y, 2);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_NEAR(c[0], 2.0, 1e-9);
  EXPECT_NEAR(c[1], -3.0, 1e-9);
  EXPECT_NEAR(c[2], 0.5, 1e-9);
}

TEST(PolyfitTest, HigherDegreeStillExactOnLowerPolynomial) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 12; ++i) {
    x.push_back(i);
    y.push_back(1.0 + 2.0 * i);
  }
  const auto c = polyfit(x, y, 3);
  EXPECT_NEAR(c[0], 1.0, 1e-7);
  EXPECT_NEAR(c[1], 2.0, 1e-7);
  EXPECT_NEAR(c[2], 0.0, 1e-7);
  EXPECT_NEAR(c[3], 0.0, 1e-7);
}

TEST(PolyfitTest, Validation) {
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> y = {1.0};
  EXPECT_THROW(polyfit(x, y, 1), std::invalid_argument);
  const std::vector<double> both = {1.0, 2.0};
  EXPECT_THROW(polyfit(both, both, 2), std::invalid_argument);  // 3 coeffs, 2 pts
}

TEST(PolyvalTest, HornerEvaluation) {
  const std::vector<double> c = {1.0, -2.0, 3.0};  // 1 - 2x + 3x^2
  EXPECT_DOUBLE_EQ(polyval(c, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(polyval(c, 2.0), 9.0);
  EXPECT_DOUBLE_EQ(polyval(std::vector<double>{}, 5.0), 0.0);
}

/// Property: polyfit followed by polyval reproduces noise-free polynomials
/// of every degree it claims to support.
class PolyfitRoundtripProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PolyfitRoundtripProperty, Roundtrip) {
  const std::size_t degree = GetParam();
  std::vector<double> coeffs(degree + 1);
  for (std::size_t i = 0; i <= degree; ++i) {
    coeffs[i] = (i % 2 == 0 ? 1.0 : -1.0) / static_cast<double>(i + 1);
  }
  std::vector<double> x;
  std::vector<double> y;
  for (int i = -10; i <= 10; ++i) {
    x.push_back(i * 0.5);
    y.push_back(polyval(coeffs, i * 0.5));
  }
  const auto fitted = polyfit(x, y, degree);
  for (double t = -5.0; t <= 5.0; t += 0.37) {
    EXPECT_NEAR(polyval(fitted, t), polyval(coeffs, t), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, PolyfitRoundtripProperty, ::testing::Values(0, 1, 2, 3, 4, 5));

}  // namespace
}  // namespace autosens::stats
