#include "stats/timeseries.h"

#include <gtest/gtest.h>

#include <vector>

namespace autosens::stats {
namespace {

TEST(WindowAggregateTest, Validation) {
  const std::vector<std::int64_t> times = {1, 2};
  const std::vector<double> values = {1.0};
  EXPECT_THROW(window_aggregate(times, values, 0, 10, 5), std::invalid_argument);
  const std::vector<double> ok = {1.0, 2.0};
  EXPECT_THROW(window_aggregate(times, ok, 10, 10, 5), std::invalid_argument);
  EXPECT_THROW(window_aggregate(times, ok, 0, 10, 0), std::invalid_argument);
}

TEST(WindowAggregateTest, PartitionsIntoWindows) {
  const std::vector<std::int64_t> times = {0, 5, 10, 15, 25};
  const std::vector<double> values = {1.0, 3.0, 5.0, 7.0, 9.0};
  const auto windows = window_aggregate(times, values, 0, 30, 10);
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].count, 2u);
  EXPECT_DOUBLE_EQ(windows[0].mean, 2.0);
  EXPECT_EQ(windows[1].count, 2u);
  EXPECT_DOUBLE_EQ(windows[1].mean, 6.0);
  EXPECT_EQ(windows[2].count, 1u);
  EXPECT_DOUBLE_EQ(windows[2].mean, 9.0);
}

TEST(WindowAggregateTest, WindowBeginsAreAligned) {
  const std::vector<std::int64_t> times = {105};
  const std::vector<double> values = {1.0};
  const auto windows = window_aggregate(times, values, 100, 130, 10);
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].window_begin, 100);
  EXPECT_EQ(windows[1].window_begin, 110);
  EXPECT_EQ(windows[2].window_begin, 120);
}

TEST(WindowAggregateTest, IgnoresSamplesOutsideRange) {
  const std::vector<std::int64_t> times = {-5, 5, 15};
  const std::vector<double> values = {100.0, 1.0, 2.0};
  const auto windows = window_aggregate(times, values, 0, 10, 10);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].count, 1u);
  EXPECT_DOUBLE_EQ(windows[0].mean, 1.0);
}

TEST(WindowAggregateTest, EmptyWindowHasZeroMean) {
  const std::vector<std::int64_t> times = {25};
  const std::vector<double> values = {7.0};
  const auto windows = window_aggregate(times, values, 0, 30, 10);
  EXPECT_EQ(windows[0].count, 0u);
  EXPECT_DOUBLE_EQ(windows[0].mean, 0.0);
}

TEST(WindowAggregateTest, LastPartialWindowIncluded) {
  const std::vector<std::int64_t> times = {29};
  const std::vector<double> values = {7.0};
  const auto windows = window_aggregate(times, values, 0, 30, 20);
  ASSERT_EQ(windows.size(), 2u);  // [0,20) and [20,40) covering up to 30
  EXPECT_EQ(windows[1].count, 1u);
}

TEST(WindowHelpersTest, CountsAndMeans) {
  const std::vector<WindowAggregate> windows = {
      {.window_begin = 0, .count = 2, .mean = 1.5},
      {.window_begin = 10, .count = 0, .mean = 0.0},
      {.window_begin = 20, .count = 5, .mean = 3.0}};
  const auto counts = window_counts(windows);
  const auto means = window_means(windows);
  EXPECT_EQ(counts, (std::vector<double>{2.0, 0.0, 5.0}));
  EXPECT_EQ(means, (std::vector<double>{1.5, 0.0, 3.0}));
}

TEST(WindowHelpersTest, NonemptyFilters) {
  const std::vector<WindowAggregate> windows = {
      {.window_begin = 0, .count = 2, .mean = 1.0},
      {.window_begin = 10, .count = 0, .mean = 0.0},
      {.window_begin = 20, .count = 5, .mean = 2.0}};
  EXPECT_EQ(nonempty_windows(windows).size(), 2u);
  EXPECT_EQ(nonempty_windows(windows, 3).size(), 1u);
  EXPECT_EQ(nonempty_windows(windows, 6).size(), 0u);
}

}  // namespace
}  // namespace autosens::stats
