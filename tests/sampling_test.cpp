#include "stats/sampling.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace autosens::stats {
namespace {

TEST(NearestSampleIndexTest, Validation) {
  Random random(1);
  EXPECT_THROW(nearest_sample_index({}, 5, random), std::invalid_argument);
}

TEST(NearestSampleIndexTest, PicksNearest) {
  Random random(1);
  const std::vector<std::int64_t> times = {10, 20, 30};
  EXPECT_EQ(nearest_sample_index(times, 12, random), 0u);
  EXPECT_EQ(nearest_sample_index(times, 18, random), 1u);
  EXPECT_EQ(nearest_sample_index(times, 29, random), 2u);
}

TEST(NearestSampleIndexTest, ClampsOutsideRange) {
  Random random(1);
  const std::vector<std::int64_t> times = {10, 20};
  EXPECT_EQ(nearest_sample_index(times, -100, random), 0u);
  EXPECT_EQ(nearest_sample_index(times, 500, random), 1u);
}

TEST(NearestSampleIndexTest, EquidistantTieIsRandomized) {
  Random random(2);
  const std::vector<std::int64_t> times = {10, 20};
  int left = 0;
  constexpr int kTrials = 2000;
  for (int i = 0; i < kTrials; ++i) {
    if (nearest_sample_index(times, 15, random) == 0) ++left;
  }
  EXPECT_NEAR(static_cast<double>(left) / kTrials, 0.5, 0.05);
}

TEST(NearestSampleIndexTest, DuplicateTimesShareUniformly) {
  Random random(3);
  const std::vector<std::int64_t> times = {10, 10, 10, 50};
  std::vector<int> counts(4, 0);
  constexpr int kTrials = 6000;
  for (int i = 0; i < kTrials; ++i) {
    ++counts[nearest_sample_index(times, 11, random)];
  }
  EXPECT_EQ(counts[3], 0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / kTrials, 1.0 / 3.0, 0.05);
  }
}

TEST(NearestSampleDrawsTest, Validation) {
  Random random(4);
  const std::vector<std::int64_t> times = {10};
  EXPECT_THROW(nearest_sample_draws({}, 0, 10, 5, random), std::invalid_argument);
  EXPECT_THROW(nearest_sample_draws(times, 10, 10, 5, random), std::invalid_argument);
}

TEST(NearestSampleDrawsTest, ReturnsRequestedCount) {
  Random random(5);
  const std::vector<std::int64_t> times = {10, 20, 30};
  const auto draws = nearest_sample_draws(times, 0, 40, 1000, random);
  EXPECT_EQ(draws.size(), 1000u);
  for (const auto idx : draws) EXPECT_LT(idx, times.size());
}

TEST(VoronoiWeightsTest, Validation) {
  EXPECT_THROW(voronoi_weights({}, 0, 10), std::invalid_argument);
  const std::vector<std::int64_t> times = {5};
  EXPECT_THROW(voronoi_weights(times, 10, 10), std::invalid_argument);
}

TEST(VoronoiWeightsTest, SingleSampleGetsAllWeight) {
  const std::vector<std::int64_t> times = {5};
  const auto w = voronoi_weights(times, 0, 10);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
}

TEST(VoronoiWeightsTest, WeightsSumToOne) {
  const std::vector<std::int64_t> times = {10, 15, 40, 90};
  const auto w = voronoi_weights(times, 0, 100);
  double sum = 0.0;
  for (const double x : w) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(VoronoiWeightsTest, CellBoundariesAtMidpoints) {
  // Window [0, 100): midpoint between 20 and 60 is 40.
  const std::vector<std::int64_t> times = {20, 60};
  const auto w = voronoi_weights(times, 0, 100);
  EXPECT_NEAR(w[0], 0.4, 1e-12);  // [0, 40)
  EXPECT_NEAR(w[1], 0.6, 1e-12);  // [40, 100)
}

TEST(VoronoiWeightsTest, DuplicatesShareCellEqually) {
  const std::vector<std::int64_t> times = {20, 20, 80};
  const auto w = voronoi_weights(times, 0, 100);
  EXPECT_NEAR(w[0], 0.25, 1e-12);  // cell [0,50) = 0.5, split in two
  EXPECT_NEAR(w[1], 0.25, 1e-12);
  EXPECT_NEAR(w[2], 0.5, 1e-12);
}

TEST(VoronoiWeightsTest, SampleOutsideWindowGetsClippedCell) {
  // Sample at 200 lies past the window; its cell within [0,100) is empty
  // only if another sample is closer everywhere.
  const std::vector<std::int64_t> times = {50, 200};
  const auto w = voronoi_weights(times, 0, 100);
  // Midpoint is 125 → within [0,100) sample 0 owns everything.
  EXPECT_NEAR(w[0], 1.0, 1e-12);
  EXPECT_NEAR(w[1], 0.0, 1e-12);
}

TEST(VoronoiWeightsTest, MonteCarloConvergesToVoronoi) {
  // The defining relationship: the MC nearest-sample procedure's selection
  // frequencies converge to the Voronoi weights.
  Random random(7);
  const std::vector<std::int64_t> times = {100, 130, 500, 510, 900};
  const auto expected = voronoi_weights(times, 0, 1000);
  std::vector<double> freq(times.size(), 0.0);
  constexpr int kDraws = 200'000;
  const auto draws = nearest_sample_draws(times, 0, 1000, kDraws, random);
  for (const auto idx : draws) freq[idx] += 1.0 / kDraws;
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_NEAR(freq[i], expected[i], 0.01) << "sample " << i;
  }
}

/// Property: weights are a probability vector for varied sample layouts.
class VoronoiProperty : public ::testing::TestWithParam<int> {};

TEST_P(VoronoiProperty, WeightsFormProbabilityVector) {
  Random random(100 + GetParam());
  std::vector<std::int64_t> times;
  std::int64_t t = 0;
  const int n = 50 + GetParam() * 37;
  for (int i = 0; i < n; ++i) {
    t += static_cast<std::int64_t>(random.exponential(0.01));
    times.push_back(t);
    if (random.bernoulli(0.2)) times.push_back(t);  // inject duplicates
  }
  const auto w = voronoi_weights(times, -100, t + 100);
  double sum = 0.0;
  for (const double x : w) {
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Layouts, VoronoiProperty, ::testing::Values(0, 1, 2, 3, 4));

}  // namespace
}  // namespace autosens::stats
