#include "core/confidence.h"

#include <gtest/gtest.h>

#include <set>

#include "simulate/generator.h"
#include "simulate/presets.h"
#include "telemetry/clock.h"
#include "telemetry/filter.h"
#include "telemetry/validate.h"

namespace autosens::core {
namespace {

telemetry::Dataset small_slice(std::uint64_t seed) {
  auto generated =
      simulate::WorkloadGenerator(simulate::paper_config(simulate::Scale::kSmall, seed))
          .generate();
  return telemetry::validate(generated.dataset)
      .dataset.filtered(telemetry::by_action(telemetry::ActionType::kSelectMail));
}

TEST(DayBlockResampleTest, EmptyDatasetThrows) {
  stats::Random random(1);
  EXPECT_THROW(day_block_resample(telemetry::Dataset{}, random), std::invalid_argument);
}

TEST(DayBlockResampleTest, PreservesSizeOrderAndTimeOfDay) {
  const auto slice = small_slice(61);
  stats::Random random(2);
  const auto resampled = day_block_resample(slice, random);
  // Same day count → similar (not necessarily equal) record count; sorted.
  EXPECT_TRUE(resampled.is_sorted());
  EXPECT_GT(resampled.size(), slice.size() / 2);
  EXPECT_LT(resampled.size(), slice.size() * 2);
  // Every record keeps a valid hour-of-day distribution: daytime-heavy.
  std::size_t day = 0;
  std::size_t night = 0;
  for (const auto& r : resampled.records()) {
    const int hour = telemetry::hour_of_day(r.time_ms);
    if (hour >= 9 && hour < 15) ++day;
    if (hour >= 1 && hour < 7) ++night;
  }
  EXPECT_GT(day, night);
}

TEST(DayBlockResampleTest, SpansSameDayRange) {
  const auto slice = small_slice(62);
  stats::Random random(3);
  const auto resampled = day_block_resample(slice, random);
  EXPECT_EQ(telemetry::day_index(resampled.begin_time()),
            telemetry::day_index(slice.begin_time()));
  EXPECT_LE(telemetry::day_index(resampled.end_time() - 1),
            telemetry::day_index(slice.end_time() - 1));
}

TEST(DayBlockResampleTest, ActuallyResamples) {
  const auto slice = small_slice(63);
  stats::Random random(4);
  const auto a = day_block_resample(slice, random);
  const auto b = day_block_resample(slice, random);
  EXPECT_NE(a.size(), b.size());  // overwhelmingly likely with 14 days
}

TEST(AnalyzeWithConfidenceTest, Validation) {
  const auto slice = small_slice(64);
  stats::Random random(5);
  EXPECT_THROW(analyze_with_confidence(slice, AutoSensOptions{}, {500.0},
                                       {.replicates = 0, .confidence = 0.9}, random),
               std::invalid_argument);
  EXPECT_THROW(analyze_with_confidence(slice, AutoSensOptions{}, {500.0},
                                       {.replicates = 5, .confidence = 1.0}, random),
               std::invalid_argument);
}

TEST(AnalyzeWithConfidenceTest, IntervalsCoverPointEstimate) {
  const auto slice = small_slice(65);
  stats::Random random(6);
  const auto result = analyze_with_confidence(slice, AutoSensOptions{},
                                              {500.0, 1000.0}, {.replicates = 12}, random);
  EXPECT_EQ(result.usable_replicates, 12u);
  ASSERT_EQ(result.intervals.size(), 2u);
  for (std::size_t p = 0; p < 2; ++p) {
    const double point = result.point.at(result.probe_latency_ms[p]);
    EXPECT_LE(result.intervals[p].lo, result.intervals[p].hi);
    // The point estimate should be near the interval (bootstrap noise can
    // push it slightly outside for few replicates; allow slack).
    EXPECT_GT(point, result.intervals[p].lo - 0.1);
    EXPECT_LT(point, result.intervals[p].hi + 0.1);
    // A real interval, not degenerate.
    EXPECT_GT(result.intervals[p].hi - result.intervals[p].lo, 1e-6);
  }
}

TEST(AnalyzeWithConfidenceTest, IntervalsContainPlantedValueMostOfTheTime) {
  const auto config = simulate::paper_config(simulate::Scale::kSmall, 66);
  auto generated = simulate::WorkloadGenerator(config).generate();
  const auto slice = telemetry::validate(generated.dataset)
                         .dataset.filtered(telemetry::all_of(
                             {telemetry::by_action(telemetry::ActionType::kSelectMail),
                              telemetry::by_user_class(telemetry::UserClass::kBusiness)}));
  stats::Random random(7);
  const auto result = analyze_with_confidence(slice, AutoSensOptions{}, {500.0},
                                              {.replicates = 16, .confidence = 0.95}, random);
  // The point estimate itself lies in the interval; the planted value sits
  // within the interval widened by the known attenuation bias.
  const auto planted = simulate::expected_pooled_curve(
      config, telemetry::ActionType::kSelectMail, telemetry::UserClass::kBusiness, 300.0);
  EXPECT_GT(planted(500.0), result.intervals[0].lo - 0.08);
  EXPECT_LT(planted(500.0), result.intervals[0].hi + 0.08);
}

}  // namespace
}  // namespace autosens::core
