#include "core/confidence.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "simulate/generator.h"
#include "simulate/presets.h"
#include "telemetry/clock.h"
#include "telemetry/filter.h"
#include "telemetry/validate.h"

namespace autosens::core {
namespace {

telemetry::Dataset small_slice(std::uint64_t seed) {
  auto generated =
      simulate::WorkloadGenerator(simulate::paper_config(simulate::Scale::kSmall, seed))
          .generate();
  return telemetry::validate(generated.dataset)
      .dataset.filtered(telemetry::by_action(telemetry::ActionType::kSelectMail));
}

TEST(DayBlockResampleTest, EmptyDatasetThrows) {
  stats::Random random(1);
  EXPECT_THROW(day_block_resample(telemetry::Dataset{}, random), std::invalid_argument);
}

TEST(DayBlockResampleTest, PreservesSizeOrderAndTimeOfDay) {
  const auto slice = small_slice(61);
  stats::Random random(2);
  const auto resampled = day_block_resample(slice, random);
  // Same day count → similar (not necessarily equal) record count; the
  // view's slot-major order is globally time-sorted.
  const auto times = resampled.times();
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  EXPECT_GT(resampled.size(), slice.size() / 2);
  EXPECT_LT(resampled.size(), slice.size() * 2);
  // Every record keeps a valid hour-of-day distribution: daytime-heavy.
  std::size_t day = 0;
  std::size_t night = 0;
  for (const std::int64_t t : times) {
    const int hour = telemetry::hour_of_day(t);
    if (hour >= 9 && hour < 15) ++day;
    if (hour >= 1 && hour < 7) ++night;
  }
  EXPECT_GT(day, night);
}

TEST(DayBlockResampleTest, SpansSameDayRange) {
  const auto slice = small_slice(62);
  stats::Random random(3);
  const auto resampled = day_block_resample(slice, random);
  EXPECT_EQ(telemetry::day_index(resampled.begin_time()),
            telemetry::day_index(slice.begin_time()));
  EXPECT_LE(telemetry::day_index(resampled.end_time() - 1),
            telemetry::day_index(slice.end_time() - 1));
}

TEST(DayBlockResampleTest, ActuallyResamples) {
  const auto slice = small_slice(63);
  stats::Random random(4);
  const auto a = day_block_resample(slice, random);
  const auto b = day_block_resample(slice, random);
  EXPECT_NE(a.size(), b.size());  // overwhelmingly likely with 14 days
}

TEST(DayBlockResampleTest, ViewMatchesLegacyCopyExactly) {
  // Golden determinism check: with equal generator state the index view and
  // the deep-copying resampler describe byte-identical datasets.
  const auto slice = small_slice(68);
  stats::Random view_rng(9);
  stats::Random copy_rng(9);
  const auto view = day_block_resample(slice, view_rng);
  const auto copy = day_block_resample_copy(slice, copy_rng);
  ASSERT_EQ(view.size(), copy.size());
  const auto view_times = view.times();
  const auto view_latencies = view.latencies();
  const auto copy_times = copy.times();
  const auto copy_latencies = copy.latencies();
  EXPECT_TRUE(std::equal(view_times.begin(), view_times.end(), copy_times.begin()));
  EXPECT_TRUE(std::equal(view_latencies.begin(), view_latencies.end(),
                         copy_latencies.begin()));
  // Spot-check the full record gather (ids, enums) and the materialization.
  for (const std::size_t i : {std::size_t{0}, view.size() / 2, view.size() - 1}) {
    const auto a = view[i];
    const auto b = copy[i];
    EXPECT_EQ(a.time_ms, b.time_ms);
    EXPECT_EQ(a.user_id, b.user_id);
    EXPECT_DOUBLE_EQ(a.latency_ms, b.latency_ms);
    EXPECT_EQ(a.action, b.action);
    EXPECT_EQ(a.user_class, b.user_class);
    EXPECT_EQ(a.status, b.status);
  }
  const auto materialized = view.materialize();
  ASSERT_EQ(materialized.size(), copy.size());
  EXPECT_TRUE(materialized.is_sorted());
  const auto mat_times = materialized.times();
  EXPECT_TRUE(std::equal(mat_times.begin(), mat_times.end(), copy_times.begin()));
}

TEST(DayBlockResampleTest, SingleDayDatasetResamplesToItself) {
  // One non-empty day → every draw picks it; the only effect is the rebase
  // onto day 0 (time-of-day preserved).
  telemetry::Dataset d;
  const std::int64_t day5 = 5 * telemetry::kMillisPerDay;
  for (int i = 0; i < 10; ++i) {
    d.add({.time_ms = day5 + i * 1000, .user_id = 1, .latency_ms = 100.0 + i,
           .action = telemetry::ActionType::kSelectMail,
           .user_class = telemetry::UserClass::kBusiness,
           .status = telemetry::ActionStatus::kSuccess});
  }
  stats::Random random(10);
  const auto view = day_block_resample(d, random);
  ASSERT_EQ(view.size(), d.size());
  EXPECT_EQ(view.block_count(), 1u);
  for (std::size_t i = 0; i < view.size(); ++i) {
    EXPECT_EQ(view[i].time_ms, static_cast<std::int64_t>(i) * 1000);
    EXPECT_DOUBLE_EQ(view[i].latency_ms, 100.0 + static_cast<double>(i));
  }
}

TEST(DayBlockResampleTest, EmptyMiddleDaysAreSqueezedOut) {
  // Records on days 0 and 3 only: two slots, re-based onto days 0 and 1 —
  // the empty middle days vanish, exactly as the copying resampler always
  // behaved.
  telemetry::Dataset d;
  for (const std::int64_t day : {std::int64_t{0}, std::int64_t{3}}) {
    for (int i = 0; i < 5; ++i) {
      d.add({.time_ms = day * telemetry::kMillisPerDay + i * 60'000, .user_id = 2,
             .latency_ms = 50.0,
             .action = telemetry::ActionType::kSelectMail,
             .user_class = telemetry::UserClass::kConsumer,
             .status = telemetry::ActionStatus::kSuccess});
    }
  }
  stats::Random random(11);
  const auto view = day_block_resample(d, random);
  EXPECT_EQ(view.block_count(), 2u);
  EXPECT_EQ(view.size(), 10u);
  EXPECT_LE(telemetry::day_index(view.end_time() - 1), 1);
  const auto times = view.times();
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  // And the copy path squeezes identically under the same draws.
  stats::Random copy_rng(11);
  const auto copy = day_block_resample_copy(d, copy_rng);
  const auto copy_times = copy.times();
  ASSERT_EQ(copy.size(), view.size());
  EXPECT_TRUE(std::equal(times.begin(), times.end(), copy_times.begin()));
}

TEST(AnalyzeWithConfidenceTest, Validation) {
  const auto slice = small_slice(64);
  stats::Random random(5);
  EXPECT_THROW(analyze_with_confidence(slice, AutoSensOptions{}, {500.0},
                                       {.replicates = 0, .confidence = 0.9}, random),
               std::invalid_argument);
  EXPECT_THROW(analyze_with_confidence(slice, AutoSensOptions{}, {500.0},
                                       {.replicates = 5, .confidence = 1.0}, random),
               std::invalid_argument);
}

TEST(AnalyzeWithConfidenceTest, IntervalsCoverPointEstimate) {
  const auto slice = small_slice(65);
  stats::Random random(6);
  const auto result = analyze_with_confidence(slice, AutoSensOptions{},
                                              {500.0, 1000.0}, {.replicates = 12}, random);
  EXPECT_EQ(result.usable_replicates, 12u);
  ASSERT_EQ(result.intervals.size(), 2u);
  for (std::size_t p = 0; p < 2; ++p) {
    const double point = result.point.at(result.probe_latency_ms[p]);
    EXPECT_LE(result.intervals[p].lo, result.intervals[p].hi);
    // The point estimate should be near the interval (bootstrap noise can
    // push it slightly outside for few replicates; allow slack).
    EXPECT_GT(point, result.intervals[p].lo - 0.1);
    EXPECT_LT(point, result.intervals[p].hi + 0.1);
    // A real interval, not degenerate.
    EXPECT_GT(result.intervals[p].hi - result.intervals[p].lo, 1e-6);
  }
}

TEST(AnalyzeWithConfidenceTest, ViewAndCopyPathsAreByteIdentical) {
  const auto slice = small_slice(67);
  stats::Random view_rng(8);
  stats::Random copy_rng(8);
  const auto via_view = analyze_with_confidence(
      slice, AutoSensOptions{}, {500.0, 1000.0},
      {.replicates = 8, .resample_by_view = true}, view_rng);
  const auto via_copy = analyze_with_confidence(
      slice, AutoSensOptions{}, {500.0, 1000.0},
      {.replicates = 8, .resample_by_view = false}, copy_rng);
  EXPECT_EQ(via_view.usable_replicates, via_copy.usable_replicates);
  ASSERT_EQ(via_view.intervals.size(), via_copy.intervals.size());
  for (std::size_t p = 0; p < via_view.intervals.size(); ++p) {
    // Bit-for-bit, not approximately: the view is the same resample.
    EXPECT_EQ(via_view.intervals[p].lo, via_copy.intervals[p].lo);
    EXPECT_EQ(via_view.intervals[p].hi, via_copy.intervals[p].hi);
  }
}

TEST(AnalyzeWithConfidenceTest, IntervalsContainPlantedValueMostOfTheTime) {
  const auto config = simulate::paper_config(simulate::Scale::kSmall, 66);
  auto generated = simulate::WorkloadGenerator(config).generate();
  const auto slice = telemetry::validate(generated.dataset)
                         .dataset.filtered(telemetry::all_of(
                             {telemetry::by_action(telemetry::ActionType::kSelectMail),
                              telemetry::by_user_class(telemetry::UserClass::kBusiness)}));
  stats::Random random(7);
  const auto result = analyze_with_confidence(slice, AutoSensOptions{}, {500.0},
                                              {.replicates = 16, .confidence = 0.95}, random);
  // The point estimate itself lies in the interval; the planted value sits
  // within the interval widened by the known attenuation bias.
  const auto planted = simulate::expected_pooled_curve(
      config, telemetry::ActionType::kSelectMail, telemetry::UserClass::kBusiness, 300.0);
  EXPECT_GT(planted(500.0), result.intervals[0].lo - 0.08);
  EXPECT_LT(planted(500.0), result.intervals[0].hi + 0.08);
}

}  // namespace
}  // namespace autosens::core
