#include "core/locality.h"

#include <gtest/gtest.h>

#include "simulate/generator.h"
#include "simulate/presets.h"
#include "telemetry/validate.h"

namespace autosens::core {
namespace {

TEST(LocalityTest, Validation) {
  stats::Random random(1);
  EXPECT_THROW(analyze_locality(telemetry::Dataset{}, LocalityOptions{}, random),
               std::invalid_argument);
  telemetry::Dataset d;
  d.add({.time_ms = 1, .user_id = 1, .latency_ms = 10.0});
  LocalityOptions bad;
  bad.window_ms = 0;
  EXPECT_THROW(analyze_locality(d, bad, random), std::invalid_argument);
}

TEST(LocalityTest, SimulatedWorkloadShowsPaperFig1Structure) {
  // Fig 1: actual MSD/MAD far below shuffled; sorted near zero.
  const auto config = simulate::paper_config(simulate::Scale::kTiny, 21);
  auto generated = simulate::WorkloadGenerator(config).generate();
  const auto validated = telemetry::validate(generated.dataset);
  stats::Random random(2);
  const auto report = analyze_locality(validated.dataset, LocalityOptions{}, random);
  EXPECT_GT(report.samples, 1000u);
  EXPECT_NEAR(report.msd_mad_shuffled, 1.0, 0.05);
  EXPECT_LT(report.msd_mad_actual, 0.75 * report.msd_mad_shuffled);
  EXPECT_LT(report.msd_mad_sorted, 0.01);
}

TEST(LocalityTest, DetrendedDensityLatencyCorrelationIsNegative) {
  // Fig 2 / §2.1: periods of low latency carry more samples. After removing
  // the hour-of-day trend (which pushes the raw correlation positive — busy
  // hours are both slow and active), transient slow spells must show fewer
  // actions: a clearly negative correlation.
  const auto config = simulate::paper_config(simulate::Scale::kSmall, 22);
  auto generated = simulate::WorkloadGenerator(config).generate();
  const auto validated = telemetry::validate(generated.dataset);
  stats::Random random(3);
  LocalityOptions options;
  options.window_ms = 10 * telemetry::kMillisPerMinute;
  options.min_window_samples = 3;
  const auto report = analyze_locality(validated.dataset, options, random);
  EXPECT_LT(report.detrended_density_latency_correlation, -0.05);
  // The detrended signal is more negative than the confounded raw one.
  EXPECT_LT(report.detrended_density_latency_correlation,
            report.density_latency_correlation);
  EXPECT_GT(report.windows_used, 100u);
}

TEST(LocalityTest, IndependentLatencySeriesShowsNoLocality) {
  // Counter-case: i.i.d. latencies at Poisson times — ratio ≈ shuffled.
  telemetry::Dataset d;
  stats::Random random(4);
  std::int64_t t = 0;
  for (int i = 0; i < 20'000; ++i) {
    t += static_cast<std::int64_t>(random.exponential(0.01)) + 1;
    d.add({.time_ms = t, .user_id = 1, .latency_ms = random.lognormal(5.0, 0.5)});
  }
  stats::Random analysis_random(5);
  const auto report = analyze_locality(d, LocalityOptions{}, analysis_random);
  EXPECT_NEAR(report.msd_mad_actual, report.msd_mad_shuffled, 0.05);
}

TEST(LocalityTest, ZeroShufflesSkipsBaseline) {
  telemetry::Dataset d;
  stats::Random random(6);
  for (int i = 0; i < 100; ++i) {
    d.add({.time_ms = i * 1000, .user_id = 1, .latency_ms = 100.0 + i});
  }
  LocalityOptions options;
  options.shuffles = 0;
  const auto report = analyze_locality(d, options, random);
  EXPECT_DOUBLE_EQ(report.msd_mad_shuffled, 0.0);
  EXPECT_GT(report.msd_mad_actual, 0.0);
}

TEST(ActivityLatencySeriesTest, NormalizedSeries) {
  telemetry::Dataset d;
  stats::Random random(7);
  for (int i = 0; i < 5000; ++i) {
    d.add({.time_ms = i * 100, .user_id = 1, .latency_ms = random.lognormal(5.0, 0.3)});
  }
  const auto series = activity_latency_series(d, telemetry::kMillisPerMinute);
  ASSERT_FALSE(series.activity.empty());
  EXPECT_EQ(series.activity.size(), series.latency.size());
  EXPECT_EQ(series.activity.size(), series.window_begin_ms.size());
  for (std::size_t i = 0; i < series.activity.size(); ++i) {
    EXPECT_GE(series.activity[i], 0.0);
    EXPECT_LE(series.activity[i], 1.0);
    EXPECT_GE(series.latency[i], 0.0);
    EXPECT_LE(series.latency[i], 1.0);
  }
}

TEST(ActivityLatencySeriesTest, EmptyDatasetThrows) {
  EXPECT_THROW(activity_latency_series(telemetry::Dataset{}, 1000), std::invalid_argument);
}

}  // namespace
}  // namespace autosens::core
