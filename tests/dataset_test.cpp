#include "telemetry/dataset.h"

#include <gtest/gtest.h>

#include <vector>

namespace autosens::telemetry {
namespace {

ActionRecord make_record(std::int64_t time_ms, double latency = 100.0,
                         std::uint64_t user = 1) {
  return ActionRecord{.time_ms = time_ms,
                      .user_id = user,
                      .latency_ms = latency,
                      .action = ActionType::kSelectMail,
                      .user_class = UserClass::kBusiness,
                      .status = ActionStatus::kSuccess};
}

TEST(DatasetTest, EmptyDatasetBasics) {
  const Dataset d;
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.size(), 0u);
  EXPECT_TRUE(d.is_sorted());
  EXPECT_THROW(d.begin_time(), std::runtime_error);
  EXPECT_THROW(d.end_time(), std::runtime_error);
}

TEST(DatasetTest, AddKeepsTrackOfSortedness) {
  Dataset d;
  d.add(make_record(10));
  d.add(make_record(20));
  EXPECT_TRUE(d.is_sorted());
  d.add(make_record(15));
  EXPECT_FALSE(d.is_sorted());
  d.sort_by_time();
  EXPECT_TRUE(d.is_sorted());
  EXPECT_EQ(d[1].time_ms, 15);
}

TEST(DatasetTest, ConstructorDetectsSortedness) {
  const Dataset sorted({make_record(1), make_record(2)});
  EXPECT_TRUE(sorted.is_sorted());
  const Dataset unsorted({make_record(2), make_record(1)});
  EXPECT_FALSE(unsorted.is_sorted());
}

TEST(DatasetTest, SortIsStableForEqualTimes) {
  Dataset d;
  d.add(make_record(10, 1.0));
  d.add(make_record(5, 2.0));
  d.add(make_record(10, 3.0));
  d.sort_by_time();
  EXPECT_DOUBLE_EQ(d[0].latency_ms, 2.0);
  EXPECT_DOUBLE_EQ(d[1].latency_ms, 1.0);
  EXPECT_DOUBLE_EQ(d[2].latency_ms, 3.0);
}

TEST(DatasetTest, TimeRangeIsHalfOpen) {
  Dataset d({make_record(10), make_record(50)});
  EXPECT_EQ(d.begin_time(), 10);
  EXPECT_EQ(d.end_time(), 51);  // one past the last record
}

TEST(DatasetTest, TimeRangeRequiresSorted) {
  Dataset d({make_record(50), make_record(10)});
  EXPECT_THROW(d.begin_time(), std::runtime_error);
}

TEST(DatasetTest, ColumnExtraction) {
  const Dataset d({make_record(1, 10.0), make_record(2, 20.0)});
  EXPECT_EQ(d.times(), (std::vector<std::int64_t>{1, 2}));
  EXPECT_EQ(d.latencies(), (std::vector<double>{10.0, 20.0}));
}

TEST(DatasetTest, FilteredKeepsMatchingRecords) {
  const Dataset d({make_record(1, 10.0), make_record(2, 200.0), make_record(3, 30.0)});
  const auto filtered =
      d.filtered([](const ActionRecord& r) { return r.latency_ms < 100.0; });
  EXPECT_EQ(filtered.size(), 2u);
  EXPECT_EQ(filtered[0].time_ms, 1);
  EXPECT_EQ(filtered[1].time_ms, 3);
  EXPECT_TRUE(filtered.is_sorted());
}

TEST(DatasetTest, FilteredCanBeEmpty) {
  const Dataset d({make_record(1)});
  const auto filtered = d.filtered([](const ActionRecord&) { return false; });
  EXPECT_TRUE(filtered.empty());
}

TEST(DatasetTest, PerUserMedianLatency) {
  Dataset d;
  d.add(make_record(1, 10.0, 100));
  d.add(make_record(2, 20.0, 100));
  d.add(make_record(3, 30.0, 100));
  d.add(make_record(4, 500.0, 200));
  const auto medians = d.per_user_median_latency();
  ASSERT_EQ(medians.size(), 2u);
  EXPECT_DOUBLE_EQ(medians.at(100), 20.0);
  EXPECT_DOUBLE_EQ(medians.at(200), 500.0);
}

TEST(DatasetTest, PerUserMedianOfEmptyIsEmpty) {
  const Dataset d;
  EXPECT_TRUE(d.per_user_median_latency().empty());
}

}  // namespace
}  // namespace autosens::telemetry
