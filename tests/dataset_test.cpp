#include "telemetry/dataset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace autosens::telemetry {
namespace {

ActionRecord make_record(std::int64_t time_ms, double latency = 100.0,
                         std::uint64_t user = 1) {
  return ActionRecord{.time_ms = time_ms,
                      .user_id = user,
                      .latency_ms = latency,
                      .action = ActionType::kSelectMail,
                      .user_class = UserClass::kBusiness,
                      .status = ActionStatus::kSuccess};
}

TEST(DatasetTest, EmptyDatasetBasics) {
  const Dataset d;
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.size(), 0u);
  EXPECT_TRUE(d.is_sorted());
  EXPECT_THROW(d.begin_time(), std::runtime_error);
  EXPECT_THROW(d.end_time(), std::runtime_error);
}

TEST(DatasetTest, AddKeepsTrackOfSortedness) {
  Dataset d;
  d.add(make_record(10));
  d.add(make_record(20));
  EXPECT_TRUE(d.is_sorted());
  d.add(make_record(15));
  EXPECT_FALSE(d.is_sorted());
  d.sort_by_time();
  EXPECT_TRUE(d.is_sorted());
  EXPECT_EQ(d[1].time_ms, 15);
}

TEST(DatasetTest, ConstructorDetectsSortedness) {
  const Dataset sorted({make_record(1), make_record(2)});
  EXPECT_TRUE(sorted.is_sorted());
  const Dataset unsorted({make_record(2), make_record(1)});
  EXPECT_FALSE(unsorted.is_sorted());
}

TEST(DatasetTest, SortIsStableForEqualTimes) {
  Dataset d;
  d.add(make_record(10, 1.0));
  d.add(make_record(5, 2.0));
  d.add(make_record(10, 3.0));
  d.sort_by_time();
  EXPECT_DOUBLE_EQ(d[0].latency_ms, 2.0);
  EXPECT_DOUBLE_EQ(d[1].latency_ms, 1.0);
  EXPECT_DOUBLE_EQ(d[2].latency_ms, 3.0);
}

TEST(DatasetTest, TimeRangeIsHalfOpen) {
  Dataset d({make_record(10), make_record(50)});
  EXPECT_EQ(d.begin_time(), 10);
  EXPECT_EQ(d.end_time(), 51);  // one past the last record
}

TEST(DatasetTest, TimeRangeRequiresSorted) {
  Dataset d({make_record(50), make_record(10)});
  EXPECT_THROW(d.begin_time(), std::runtime_error);
}

TEST(DatasetTest, ColumnExtraction) {
  const Dataset d({make_record(1, 10.0), make_record(2, 20.0)});
  const auto times = d.times();
  const auto latencies = d.latencies();
  EXPECT_TRUE(std::equal(times.begin(), times.end(),
                         std::vector<std::int64_t>{1, 2}.begin()));
  EXPECT_TRUE(std::equal(latencies.begin(), latencies.end(),
                         std::vector<double>{10.0, 20.0}.begin()));
  ASSERT_EQ(times.size(), 2u);
  ASSERT_EQ(latencies.size(), 2u);
}

TEST(DatasetTest, ColumnSpansAreZeroCopyAndStable) {
  Dataset d;
  for (int i = 0; i < 64; ++i) d.add(make_record(i, 10.0 * i));
  // times()/latencies() are views into the dataset's own storage: repeated
  // calls return the same pointers, no per-call allocation or copy.
  const auto t1 = d.times();
  const auto t2 = d.times();
  EXPECT_EQ(t1.data(), t2.data());
  EXPECT_EQ(d.latencies().data(), d.latencies().data());
  EXPECT_EQ(t1.size(), d.size());
  // Reads through old and new spans agree while the dataset is unmodified.
  const auto l1 = d.latencies();
  EXPECT_DOUBLE_EQ(l1[63], 630.0);
  EXPECT_EQ(t1[63], 63);
}

TEST(DatasetTest, ColumnsBundleMatchesAccessors) {
  const Dataset d({make_record(1, 10.0), make_record(2, 20.0)});
  const auto columns = d.columns();
  EXPECT_EQ(columns.times.data(), d.times().data());
  EXPECT_EQ(columns.latencies.data(), d.latencies().data());
  EXPECT_EQ(columns.size(), d.size());
  EXPECT_EQ(columns.begin_time(), d.begin_time());
  EXPECT_EQ(columns.end_time(), d.end_time());
}

TEST(DatasetTest, RecordsRoundTripsAllColumns) {
  Dataset d;
  d.add(make_record(7, 70.0, 42));
  const auto records = d.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].time_ms, 7);
  EXPECT_EQ(records[0].user_id, 42u);
  EXPECT_DOUBLE_EQ(records[0].latency_ms, 70.0);
  EXPECT_EQ(records[0].action, ActionType::kSelectMail);
  EXPECT_EQ(records[0].user_class, UserClass::kBusiness);
  EXPECT_EQ(records[0].status, ActionStatus::kSuccess);
}

TEST(DatasetTest, AppendFromCopiesWholeRows) {
  const Dataset source({make_record(1, 10.0, 5), make_record(2, 20.0, 6)});
  Dataset out;
  out.append_from(source, 1);
  out.append_from(source, 0);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].time_ms, 2);
  EXPECT_EQ(out[1].user_id, 5u);
  EXPECT_FALSE(out.is_sorted());
}

TEST(DatasetTest, FilteredKeepsMatchingRecords) {
  const Dataset d({make_record(1, 10.0), make_record(2, 200.0), make_record(3, 30.0)});
  const auto filtered =
      d.filtered([](const ActionRecord& r) { return r.latency_ms < 100.0; });
  EXPECT_EQ(filtered.size(), 2u);
  EXPECT_EQ(filtered[0].time_ms, 1);
  EXPECT_EQ(filtered[1].time_ms, 3);
  EXPECT_TRUE(filtered.is_sorted());
}

TEST(DatasetTest, FilteredCanBeEmpty) {
  const Dataset d({make_record(1)});
  const auto filtered = d.filtered([](const ActionRecord&) { return false; });
  EXPECT_TRUE(filtered.empty());
}

TEST(DatasetTest, PerUserMedianLatency) {
  Dataset d;
  d.add(make_record(1, 10.0, 100));
  d.add(make_record(2, 20.0, 100));
  d.add(make_record(3, 30.0, 100));
  d.add(make_record(4, 500.0, 200));
  const auto medians = d.per_user_median_latency();
  ASSERT_EQ(medians.size(), 2u);
  EXPECT_DOUBLE_EQ(medians.at(100), 20.0);
  EXPECT_DOUBLE_EQ(medians.at(200), 500.0);
}

TEST(DatasetTest, PerUserMedianOfEmptyIsEmpty) {
  const Dataset d;
  EXPECT_TRUE(d.per_user_median_latency().empty());
}

}  // namespace
}  // namespace autosens::telemetry
