#include "telemetry/jsonl.h"

#include <gtest/gtest.h>

#include <sstream>

namespace autosens::telemetry {
namespace {

Dataset sample_dataset() {
  Dataset d;
  d.add({.time_ms = 1000,
         .user_id = 42,
         .latency_ms = 123.45,
         .action = ActionType::kSelectMail,
         .user_class = UserClass::kBusiness,
         .status = ActionStatus::kSuccess});
  d.add({.time_ms = 2000,
         .user_id = 43,
         .latency_ms = 678.9,
         .action = ActionType::kSearch,
         .user_class = UserClass::kConsumer,
         .status = ActionStatus::kError});
  return d;
}

TEST(JsonlTest, WriteFormat) {
  std::ostringstream out;
  write_jsonl(out, sample_dataset());
  const std::string text = out.str();
  EXPECT_NE(text.find("{\"time_ms\":1000,\"user_id\":42,\"action\":\"SelectMail\","
                      "\"latency_ms\":123.45,\"user_class\":\"Business\","
                      "\"status\":\"Success\"}"),
            std::string::npos);
}

TEST(JsonlTest, Roundtrip) {
  const auto original = sample_dataset();
  std::stringstream stream;
  write_jsonl(stream, original);
  const auto result = read_jsonl(stream);
  EXPECT_TRUE(result.errors.empty());
  ASSERT_EQ(result.dataset.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(result.dataset[i], original[i]);
  }
}

TEST(JsonlTest, EmptyInputGivesEmptyDataset) {
  std::istringstream in("");
  const auto result = read_jsonl(in);
  EXPECT_TRUE(result.dataset.empty());
  EXPECT_TRUE(result.errors.empty());
}

TEST(JsonlTest, ToleratesWhitespaceAndBlankLines) {
  std::istringstream in(
      "\n  {\"time_ms\": 1, \"user_id\": 2, \"action\": \"Search\", "
      "\"latency_ms\": 3.5, \"user_class\": \"Consumer\", \"status\": \"Success\"}  \n\n");
  const auto result = read_jsonl(in);
  EXPECT_TRUE(result.errors.empty());
  ASSERT_EQ(result.dataset.size(), 1u);
  EXPECT_DOUBLE_EQ(result.dataset[0].latency_ms, 3.5);
}

TEST(JsonlTest, FieldOrderIsIrrelevant) {
  std::istringstream in(
      "{\"status\":\"Success\",\"latency_ms\":9,\"user_class\":\"Business\","
      "\"action\":\"ComposeSend\",\"user_id\":7,\"time_ms\":5}");
  const auto result = read_jsonl(in);
  EXPECT_TRUE(result.errors.empty());
  ASSERT_EQ(result.dataset.size(), 1u);
  EXPECT_EQ(result.dataset[0].action, ActionType::kComposeSend);
}

TEST(JsonlTest, MalformedLinesReportedWithReasons) {
  std::istringstream in(
      "not json\n"
      "{\"time_ms\":1}\n"
      "{\"time_ms\":1,\"user_id\":2,\"action\":\"Nope\",\"latency_ms\":3,"
      "\"user_class\":\"Business\",\"status\":\"Success\"}\n"
      "{\"time_ms\":1,\"user_id\":2,\"action\":\"Search\",\"latency_ms\":3,"
      "\"user_class\":\"Business\",\"status\":\"Success\",\"extra\":1}\n"
      "{\"time_ms\":1,\"user_id\":2,\"action\":\"Search\",\"latency_ms\":3,"
      "\"user_class\":\"Business\",\"status\":\"Success\"}\n");
  const auto result = read_jsonl(in);
  EXPECT_EQ(result.dataset.size(), 1u);
  ASSERT_EQ(result.errors.size(), 4u);
  EXPECT_EQ(result.errors[0].line, 1u);
  EXPECT_EQ(result.errors[1].message, "missing required field");
  EXPECT_EQ(result.errors[2].message, "unknown action type");
  EXPECT_EQ(result.errors[3].message, "unknown key: extra");
}

TEST(JsonlTest, RejectsTrailingGarbage) {
  std::istringstream in(
      "{\"time_ms\":1,\"user_id\":2,\"action\":\"Search\",\"latency_ms\":3,"
      "\"user_class\":\"Business\",\"status\":\"Success\"} extra");
  const auto result = read_jsonl(in);
  EXPECT_TRUE(result.dataset.empty());
  ASSERT_EQ(result.errors.size(), 1u);
}

TEST(JsonlTest, OutputIsSortedByTime) {
  std::istringstream in(
      "{\"time_ms\":200,\"user_id\":1,\"action\":\"Search\",\"latency_ms\":1,"
      "\"user_class\":\"Business\",\"status\":\"Success\"}\n"
      "{\"time_ms\":100,\"user_id\":1,\"action\":\"Search\",\"latency_ms\":1,"
      "\"user_class\":\"Business\",\"status\":\"Success\"}\n");
  const auto result = read_jsonl(in);
  ASSERT_EQ(result.dataset.size(), 2u);
  EXPECT_TRUE(result.dataset.is_sorted());
  EXPECT_EQ(result.dataset[0].time_ms, 100);
}

TEST(JsonlTest, FileRoundtrip) {
  const auto original = sample_dataset();
  const std::string path = ::testing::TempDir() + "/autosens_jsonl_test.jsonl";
  write_jsonl_file(path, original);
  const auto result = read_jsonl_file(path);
  EXPECT_TRUE(result.errors.empty());
  ASSERT_EQ(result.dataset.size(), original.size());
  EXPECT_EQ(result.dataset[0], original[0]);
  EXPECT_THROW(read_jsonl_file("/nonexistent/file.jsonl"), std::runtime_error);
}

}  // namespace
}  // namespace autosens::telemetry
