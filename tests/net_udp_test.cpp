// UDP transport: datagram framing, exact loss accounting, datagram-level
// dedup, reorder tolerance, multi-shard ingest.
//
// The contract under test (net/udp.h + the collector's datagram gap
// tracker): every datagram opens with a kHello whose seq is the per-session
// datagram number; the collector accepts each datagram exactly once, tracks
// gaps, and whatever is still missing when the session finalizes is
// exported as udp_lost — *exact* loss, not an estimate. The emitter's
// close-time retransmit pass means datagram loss shows up in the loss
// counter but (single losses) not in the Dataset.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "net/collector.h"
#include "net/socket.h"
#include "net/udp.h"
#include "net/wire.h"
#include "telemetry/binlog.h"
#include "telemetry/record.h"

namespace autosens::net {
namespace {

using telemetry::ActionRecord;

std::vector<ActionRecord> striped_records(std::size_t per_emitter, std::size_t emitters,
                                          std::size_t t) {
  std::vector<ActionRecord> records;
  records.reserve(per_emitter);
  for (std::size_t i = 0; i < per_emitter; ++i) {
    const auto k = i * emitters + t;
    records.push_back({.time_ms = static_cast<std::int64_t>(k + 1),
                       .user_id = 1 + k % 7,
                       .latency_ms = 1.0 + 0.01 * static_cast<double>(k % 1000),
                       .action = telemetry::ActionType::kSearch,
                       .user_class = telemetry::UserClass::kConsumer,
                       .status = telemetry::ActionStatus::kSuccess});
  }
  return records;
}

CollectorOptions udp_options(std::size_t shards = 1) {
  CollectorOptions options;
  options.transport = Transport::kUdp;
  options.shards = shards;
  options.rcvbuf_bytes = 1 << 20;  // Loopback bursts overflow default buffers.
  return options;
}

TEST(NetUdpTest, HappyPathDeliversEveryRecord) {
  constexpr std::size_t kEmitters = 3;
  constexpr std::size_t kPerEmitter = 400;
  CollectorThread collector(kEmitters, udp_options(), /*timeout_ms=*/10'000);

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kEmitters; ++t) {
    threads.emplace_back([&, t] {
      UdpEmitterOptions options;
      options.batch_size = 64;
      options.session_id = 0xbeef00 + t;
      UdpEmitter emitter(collector.port(), options);
      for (const auto& r : striped_records(kPerEmitter, kEmitters, t)) emitter.record(r);
      emitter.close();
    });
  }
  for (auto& thread : threads) thread.join();
  const auto dataset = collector.join();
  EXPECT_TRUE(collector.complete());
  EXPECT_EQ(dataset.size(), kEmitters * kPerEmitter);

  const auto stats = collector.stats();
  EXPECT_EQ(stats.sessions, kEmitters);
  EXPECT_EQ(stats.sessions_active, 0u);
  EXPECT_GT(stats.udp_datagrams, 0u);
  EXPECT_EQ(stats.udp_lost, 0u) << "loopback with tuned rcvbuf must not lose";
  // Dataset order is canonical time-sort: striped time_ms means strictly
  // increasing across the whole dataset.
  for (std::size_t i = 1; i < dataset.size(); ++i) {
    ASSERT_LT(dataset[i - 1].time_ms, dataset[i].time_ms);
  }
}

TEST(NetUdpTest, SeededDropPlanIsAccountedExactly) {
  // drop_datagrams silently withholds listed datagram numbers from the
  // kernel: deterministic loss. The collector owes us exactly that many in
  // udp_lost — and the close-time retransmit pass (fresh datagrams, same
  // frame seqs) still delivers every record.
  constexpr std::size_t kPerEmitter = 300;
  const std::vector<std::uint32_t> plan{2, 3, 5};

  CollectorThread collector(1, udp_options(), /*timeout_ms=*/10'000);
  UdpEmitterOptions options;
  options.batch_size = 25;
  options.max_datagram_bytes = 256;  // One frame per datagram: the plan's
                                     // numbers all land in the first pass, and
                                     // each retransmit copy rides a distinct
                                     // datagram outside the plan.
  options.session_id = 0xd70b;
  options.drop_datagrams = plan;
  UdpEmitter emitter(collector.port(), options);
  for (const auto& r : striped_records(kPerEmitter, 1, 0)) emitter.record(r);
  emitter.close();
  EXPECT_EQ(emitter.planned_drops(), plan.size())
      << "every planned datagram number must have been consumed";

  const auto dataset = collector.join();
  EXPECT_TRUE(collector.complete());
  const auto stats = collector.stats();
  EXPECT_EQ(stats.udp_lost, plan.size())
      << "gap accounting must equal the seeded drop plan exactly";
  EXPECT_EQ(dataset.size(), kPerEmitter)
      << "the retransmit pass must cover single-copy losses";
  EXPECT_GT(stats.duplicate_frames, 0u)
      << "retransmitted frames that did arrive twice dedup by seq";
}

TEST(NetUdpTest, DropPlanWithoutRetransmitLosesDataButAccountsIt) {
  // With the reliability pass off, planned drops become real record loss —
  // but the accounting still knows exactly how many datagrams died.
  constexpr std::size_t kPerEmitter = 300;
  const std::vector<std::uint32_t> plan{2, 4};

  CollectorThread collector(1, udp_options(), /*timeout_ms=*/10'000);
  UdpEmitterOptions options;
  options.batch_size = 25;
  options.max_datagram_bytes = 256;  // One frame per datagram (see above); the
                                     // goodbye's datagram number stays clear of
                                     // the plan.
  options.session_id = 0xd70c;
  options.drop_datagrams = plan;
  options.final_retransmit = false;
  UdpEmitter emitter(collector.port(), options);
  for (const auto& r : striped_records(kPerEmitter, 1, 0)) emitter.record(r);
  emitter.close();
  EXPECT_EQ(emitter.planned_drops(), plan.size());

  const auto dataset = collector.join();
  EXPECT_TRUE(collector.complete());
  EXPECT_EQ(collector.stats().udp_lost, plan.size());
  EXPECT_LT(dataset.size(), kPerEmitter) << "without retransmit the records die";
}

TEST(NetUdpTest, DuplicateGoodbyeDatagramsCollapse) {
  // goodbye_copies ships the same goodbye datagram bytes N times (same
  // datagram seq): the datagram dedup must collapse the extras, crediting
  // the session's goodbye exactly once.
  CollectorThread collector(1, udp_options(), /*timeout_ms=*/10'000);
  UdpEmitterOptions options;
  options.batch_size = 16;
  options.session_id = 0xd0b1e;
  options.goodbye_copies = 3;
  options.final_retransmit = false;
  UdpEmitter emitter(collector.port(), options);
  for (const auto& r : striped_records(64, 1, 0)) emitter.record(r);
  emitter.close();

  const auto dataset = collector.join();
  EXPECT_TRUE(collector.complete());
  const auto stats = collector.stats();
  EXPECT_EQ(dataset.size(), 64u);
  EXPECT_EQ(stats.udp_duplicate_datagrams, options.goodbye_copies - 1)
      << "extra goodbye copies must dedup at datagram level";
  EXPECT_EQ(stats.sessions, 1u);
  EXPECT_EQ(stats.sessions_active, 0u) << "goodbye credited exactly once";
}

TEST(NetUdpTest, ReorderedDatagramsAssembleExactlyWithNoFalseLoss) {
  // Hand-built datagrams sent out of order: the gap tracker must hold the
  // early arrivals' gaps open, fill them when the stragglers land, and end
  // with zero loss and a complete, time-sorted dataset.
  constexpr std::uint64_t kSession = 0x0e0de4;
  const auto records = striped_records(40, 1, 0);

  // Datagram i (1-based) carries records [10*(i-1), 10*i) as one data frame.
  std::vector<std::vector<std::uint8_t>> datagrams;
  for (std::uint32_t i = 1; i <= 4; ++i) {
    Frame hello = make_hello(kSession);
    hello.seq = i;
    auto bytes = encode_frame(hello);
    const std::vector<ActionRecord> slice(records.begin() + 10 * (i - 1),
                                          records.begin() + 10 * i);
    const auto data = encode_frame(Frame{.type = FrameType::kData,
                                         .seq = i,
                                         .payload = telemetry::codec::encode_batch(slice)});
    bytes.insert(bytes.end(), data.begin(), data.end());
    datagrams.push_back(std::move(bytes));
  }
  Frame goodbye_hello = make_hello(kSession);
  goodbye_hello.seq = 5;
  auto goodbye_datagram = encode_frame(goodbye_hello);
  const auto goodbye =
      encode_frame(Frame{.type = FrameType::kGoodbye, .seq = 5, .payload = {}});
  goodbye_datagram.insert(goodbye_datagram.end(), goodbye.begin(), goodbye.end());

  CollectorThread collector(1, udp_options(), /*timeout_ms=*/10'000);
  {
    auto socket = connect_udp(collector.port());
    auto& ops = real_socket_ops();
    // Worst-case shuffle: the highest data datagram first, then the rest,
    // goodbye last (goodbye-last is the emitter's contract too).
    for (const std::uint32_t i : {3u, 1u, 4u, 2u}) {
      const auto& d = datagrams[i - 1];
      ASSERT_EQ(ops.send(socket.fd(), d.data(), d.size()),
                static_cast<std::int64_t>(d.size()));
    }
    ASSERT_EQ(ops.send(socket.fd(), goodbye_datagram.data(), goodbye_datagram.size()),
              static_cast<std::int64_t>(goodbye_datagram.size()));
  }

  const auto dataset = collector.join();
  EXPECT_TRUE(collector.complete());
  const auto stats = collector.stats();
  EXPECT_EQ(dataset.size(), records.size()) << "every reordered datagram applied";
  EXPECT_EQ(stats.udp_lost, 0u) << "filled gaps must not be counted as loss";
  EXPECT_EQ(stats.udp_duplicate_datagrams, 0u);
  for (std::size_t i = 1; i < dataset.size(); ++i) {
    ASSERT_LT(dataset[i - 1].time_ms, dataset[i].time_ms);
  }
}

TEST(NetUdpTest, MultiShardIngestStaysExact) {
  // SO_REUSEPORT UDP sharding: each connected emitter socket hashes to one
  // shard socket, so per-session datagram order is preserved per source.
  constexpr std::size_t kShards = 2;
  constexpr std::size_t kEmitters = 4;
  constexpr std::size_t kPerEmitter = 300;
  CollectorThread collector(kEmitters, udp_options(kShards), /*timeout_ms=*/10'000);

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kEmitters; ++t) {
    threads.emplace_back([&, t] {
      UdpEmitterOptions options;
      options.batch_size = 50;
      options.session_id = 0xabba00 + t;
      UdpEmitter emitter(collector.port(), options);
      for (const auto& r : striped_records(kPerEmitter, kEmitters, t)) emitter.record(r);
      emitter.close();
    });
  }
  for (auto& thread : threads) thread.join();
  const auto dataset = collector.join();
  EXPECT_TRUE(collector.complete());
  EXPECT_EQ(dataset.size(), kEmitters * kPerEmitter);
  const auto stats = collector.stats();
  EXPECT_EQ(stats.sessions, kEmitters);
  EXPECT_EQ(stats.udp_lost, 0u);
}

}  // namespace
}  // namespace autosens::net
