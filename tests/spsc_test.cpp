// core::SpscQueue — the shard→spine handoff primitive. Single-threaded
// boundary behaviour (full/empty, wraparound, move semantics) plus a
// two-thread ordered-transfer stress that must also come out clean under the
// TSan harness build (obs_tsan_harness links the same header).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/spsc.h"

namespace autosens::core {
namespace {

TEST(SpscQueueTest, StartsEmptyAndRejectsPopOnEmpty) {
  SpscQueue<int> queue(4);
  EXPECT_TRUE(queue.empty_approx());
  EXPECT_EQ(queue.size_approx(), 0u);
  int out = 0;
  EXPECT_FALSE(queue.try_pop(out));
}

TEST(SpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscQueue<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscQueue<int>(4).capacity(), 4u);
  EXPECT_EQ(SpscQueue<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscQueue<int>(1000).capacity(), 1024u);
}

TEST(SpscQueueTest, FillRejectsPushThenDrainsFifo) {
  SpscQueue<int> queue(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.try_push(int{i}));
  EXPECT_EQ(queue.size_approx(), 4u);
  EXPECT_FALSE(queue.try_push(99));  // full: producer must back off
  for (int i = 0; i < 4; ++i) {
    int out = -1;
    ASSERT_TRUE(queue.try_pop(out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(queue.try_pop(out));
}

TEST(SpscQueueTest, WraparoundPreservesFifoAcrossManyCycles) {
  // Free-running indices wrap via masking: push/pop far more elements than
  // the capacity and the order must survive every wrap.
  SpscQueue<std::uint64_t> queue(8);
  std::uint64_t next_push = 0;
  std::uint64_t next_pop = 0;
  // Irregular push/pop bursts so head/tail cross the wrap point at varying
  // offsets.
  for (int round = 0; round < 1000; ++round) {
    const int pushes = 1 + round % 7;
    for (int i = 0; i < pushes; ++i) {
      if (queue.try_push(std::uint64_t{next_push})) ++next_push;
    }
    const int pops = 1 + (round * 3) % 6;
    for (int i = 0; i < pops; ++i) {
      std::uint64_t out = ~0ULL;
      if (!queue.try_pop(out)) break;
      ASSERT_EQ(out, next_pop);
      ++next_pop;
    }
  }
  while (next_pop < next_push) {
    std::uint64_t out = ~0ULL;
    ASSERT_TRUE(queue.try_pop(out));
    ASSERT_EQ(out, next_pop);
    ++next_pop;
  }
  EXPECT_TRUE(queue.empty_approx());
}

TEST(SpscQueueTest, MovesValuesThrough) {
  // Move-only payloads transfer ownership; the slot must not retain the
  // moved-from value.
  SpscQueue<std::unique_ptr<std::string>> queue(2);
  ASSERT_TRUE(queue.try_push(std::make_unique<std::string>("frame")));
  std::unique_ptr<std::string> out;
  ASSERT_TRUE(queue.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, "frame");
}

TEST(SpscQueueTest, TwoThreadOrderedTransfer) {
  // One producer, one consumer, a queue much smaller than the element
  // count: every value arrives exactly once, in order, despite constant
  // full/empty contention. The same shape runs under -fsanitize=thread in
  // obs_tsan_harness.
  constexpr std::uint64_t kCount = 200'000;
  SpscQueue<std::uint64_t> queue(64);
  std::vector<std::uint64_t> received;
  received.reserve(kCount);

  std::thread consumer([&] {
    std::uint64_t out = 0;
    while (received.size() < kCount) {
      if (queue.try_pop(out)) {
        received.push_back(out);
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (std::uint64_t i = 0; i < kCount; ++i) {
    while (!queue.try_push(std::uint64_t{i})) std::this_thread::yield();
  }
  consumer.join();

  ASSERT_EQ(received.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(received[i], i) << "FIFO order broken at " << i;
  }
  EXPECT_TRUE(queue.empty_approx());
}

TEST(SpscQueueTest, SizeApproxTracksOccupancyFromThirdThread) {
  SpscQueue<int> queue(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(queue.try_push(int{i}));
  std::size_t observed = 0;
  std::thread observer([&] { observed = queue.size_approx(); });
  observer.join();
  EXPECT_EQ(observed, 10u);
}

}  // namespace
}  // namespace autosens::core
