// Wire-level trace propagation: the kFrameTraceFlag span-id extension, the
// extended kHello trace context, and the end-to-end emitter → collector
// stitch that turns two processes' spans into one connected trace tree.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "net/collector.h"
#include "net/emitter.h"
#include "net/wire.h"
#include "obs/trace.h"
#include "stats/rng.h"
#include "telemetry/record.h"

namespace autosens::net {
namespace {

using telemetry::ActionRecord;

std::vector<ActionRecord> make_records(std::size_t n, std::uint64_t seed) {
  stats::Random random(seed);
  std::vector<ActionRecord> records;
  std::int64_t t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    t += static_cast<std::int64_t>(random.exponential(0.01)) + 1;
    records.push_back({.time_ms = t,
                       .user_id = 1 + random.uniform_index(10),
                       .latency_ms = std::round(random.lognormal(5.0, 0.4) * 100.0) / 100.0,
                       .action = telemetry::ActionType::kSelectMail,
                       .user_class = telemetry::UserClass::kBusiness,
                       .status = telemetry::ActionStatus::kSuccess});
  }
  return records;
}

Frame data_frame(std::uint32_t seq, std::uint64_t span_id) {
  return Frame{.type = FrameType::kData,
               .seq = seq,
               .span_id = span_id,
               .payload = {1, 2, 3, 4}};
}

TEST(NetTraceTest, SpanIdRoundTripsThroughDecoder) {
  constexpr std::uint64_t kSpan = (1ULL << 56) | 0xABCDEF;
  const auto bytes = encode_frame(data_frame(7, kSpan));
  // The flag rides bit 7 of the type byte; the 8-byte id sits between the
  // header and the payload.
  EXPECT_EQ(bytes[2], static_cast<std::uint8_t>(FrameType::kData) | kFrameTraceFlag);
  EXPECT_EQ(bytes.size(),
            kFrameOverheadBytes + kFrameSpanIdBytes + 4 /* payload */);

  FrameDecoder decoder;
  decoder.feed(bytes);
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kData);
  EXPECT_EQ(frame->seq, 7u);
  EXPECT_EQ(frame->span_id, kSpan);
  EXPECT_EQ(frame->payload, (std::vector<std::uint8_t>{1, 2, 3, 4}));
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.resyncs(), 0u);
}

TEST(NetTraceTest, PlainFramesStayByteIdenticalWithoutSpanId) {
  const auto plain = encode_frame(data_frame(3, 0));
  EXPECT_EQ(plain[2], static_cast<std::uint8_t>(FrameType::kData));
  EXPECT_EQ(plain.size(), kFrameOverheadBytes + 4);
  const auto flagged = encode_frame(data_frame(3, 1));
  EXPECT_EQ(flagged.size(), plain.size() + kFrameSpanIdBytes);
}

TEST(NetTraceTest, CorruptSpanIdFailsCrc) {
  auto bytes = encode_frame(data_frame(9, 0x1122334455667788ULL));
  bytes[kFrameHeaderBytes + 2] ^= 0xFF;  // inside the span id
  FrameDecoder decoder;
  decoder.feed(bytes);
  EXPECT_FALSE(decoder.next().has_value());
  // Append a clean frame: the decoder resyncs past the damaged one.
  decoder.feed(encode_frame(data_frame(10, 0)));
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->seq, 10u);
  EXPECT_EQ(decoder.resyncs(), 1u);
  EXPECT_GT(decoder.skipped_bytes(), 0u);
}

TEST(NetTraceTest, DecoderResyncsAcrossMixedFlaggedFrames) {
  std::vector<std::uint8_t> stream = {0xDE, 0xAD, 0xBE, 0xEF, kFrameMagic0};
  const auto flagged = encode_frame(data_frame(1, 42));
  const auto plain = encode_frame(data_frame(2, 0));
  stream.insert(stream.end(), flagged.begin(), flagged.end());
  stream.insert(stream.end(), plain.begin(), plain.end());
  FrameDecoder decoder;
  decoder.feed(stream);
  const auto first = decoder.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->seq, 1u);
  EXPECT_EQ(first->span_id, 42u);
  const auto second = decoder.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->seq, 2u);
  EXPECT_EQ(second->span_id, 0u);
  EXPECT_EQ(decoder.resyncs(), 1u);
  EXPECT_EQ(decoder.skipped_bytes(), 5u);
}

TEST(NetTraceTest, HelloTraceContextRoundTrips) {
  const auto plain = make_hello(0x1234);
  EXPECT_EQ(plain.payload.size(), 8u);
  ASSERT_TRUE(parse_hello(plain.payload).has_value());
  EXPECT_EQ(*parse_hello(plain.payload), 0x1234u);
  EXPECT_FALSE(parse_hello_trace(plain.payload).has_value());

  const WireTraceContext context{.trace_id = 0xAABBCCDD, .span_id = (1ULL << 56) | 5};
  const auto extended = make_hello(0x1234, context);
  EXPECT_EQ(extended.payload.size(), 24u);
  ASSERT_TRUE(parse_hello(extended.payload).has_value());
  EXPECT_EQ(*parse_hello(extended.payload), 0x1234u);
  const auto parsed = parse_hello_trace(extended.payload);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->trace_id, context.trace_id);
  EXPECT_EQ(parsed->span_id, context.span_id);

  EXPECT_FALSE(parse_hello(std::vector<std::uint8_t>(5)).has_value());
  EXPECT_FALSE(parse_hello_trace(std::vector<std::uint8_t>(16)).has_value());
}

TEST(NetTraceTest, TracingOffKeepsTheWirePlain) {
  CollectorThread collector(1);
  {
    Emitter emitter(collector.port(), {.batch_size = 64});
    for (const auto& r : make_records(100, 11)) emitter.record(r);
    emitter.close();
  }
  EXPECT_EQ(collector.join().size(), 100u);
  EXPECT_TRUE(obs::Tracer::global().snapshot().empty());
}

TEST(NetTraceTest, EmitterCollectorSpansStitchIntoOneTree) {
  auto& tracer = obs::Tracer::global();
  tracer.set_enabled(true);
  tracer.clear();
  tracer.set_trace_id(0);

  CollectorThread collector(1);
  const auto records = make_records(500, 12);
  {
    // The CLI's replay command wraps the emit loop in one root span; mirror
    // that so the whole trace hangs off a single root.
    obs::Span root("replay");
    Emitter emitter(collector.port(), {.batch_size = 100});
    for (const auto& r : records) emitter.record(r);
    emitter.close();
  }
  EXPECT_EQ(collector.join().size(), records.size());

  const auto spans = tracer.snapshot();
  tracer.set_enabled(false);
  tracer.clear();
  const auto found_trace_id = tracer.trace_id();
  tracer.set_trace_id(0);
  EXPECT_NE(found_trace_id, 0u) << "emitter must mint a trace id for the hello";

  std::map<std::uint64_t, const obs::SpanRecord*> by_id;
  std::size_t connects = 0, sends = 0, hellos = 0, decodes = 0;
  for (const auto& span : spans) by_id.emplace(span.id, &span);
  for (const auto& span : spans) {
    if (span.name == "net.connect") ++connects;
    if (span.name == "net.send_frame") ++sends;
    if (span.name == "net.hello") ++hellos;
    if (span.name == "net.decode_frame") ++decodes;
  }
  EXPECT_EQ(connects, 1u);
  // 5 data frames + goodbye (the hello is sent inside connect, not as a
  // send_frame span; close() finds the pending buffer already flushed).
  EXPECT_GE(sends, 6u);
  EXPECT_EQ(hellos, 1u);
  EXPECT_GE(decodes, 5u);

  // Single connected tree: every span's parent resolves to another recorded
  // span, except exactly one root ("replay"). In particular the collector's
  // hello span hangs off the emitter's connect span and every decode span
  // off the send span that produced its frame — the cross-process links.
  std::size_t roots = 0;
  for (const auto& span : spans) {
    if (span.parent == 0) {
      ++roots;
      EXPECT_EQ(span.name, "replay");
      continue;
    }
    EXPECT_TRUE(by_id.count(span.parent))
        << span.name << " parent " << span.parent << " not in trace";
  }
  EXPECT_EQ(roots, 1u);
  for (const auto& span : spans) {
    if (span.name == "net.hello") {
      EXPECT_EQ(by_id.at(span.parent)->name, "net.connect");
    }
    if (span.name == "net.decode_frame" || span.name == "net.dedup_drop") {
      EXPECT_EQ(by_id.at(span.parent)->name, "net.send_frame");
    }
  }
}

}  // namespace
}  // namespace autosens::net
