#include "core/biased.h"

#include <gtest/gtest.h>

#include <vector>

namespace autosens::core {
namespace {

TEST(BiasedTest, GeometryFollowsOptions) {
  AutoSensOptions options;
  options.bin_width_ms = 10.0;
  options.max_latency_ms = 3000.0;
  const auto h = make_latency_histogram(options);
  EXPECT_EQ(h.size(), 300u);
  EXPECT_DOUBLE_EQ(h.bin_width(), 10.0);
  EXPECT_DOUBLE_EQ(h.lo(), 0.0);
}

TEST(BiasedTest, CountsLatencies) {
  AutoSensOptions options;
  const std::vector<double> latencies = {5.0, 15.0, 15.5, 2995.0};
  const auto h = biased_histogram(latencies, options);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 2.0);
  EXPECT_DOUBLE_EQ(h.count(299), 1.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 4.0);
}

TEST(BiasedTest, DatasetOverloadMatchesSpanOverload) {
  AutoSensOptions options;
  telemetry::Dataset dataset;
  const std::vector<double> latencies = {100.0, 200.0, 100.0};
  for (std::size_t i = 0; i < latencies.size(); ++i) {
    dataset.add({.time_ms = static_cast<std::int64_t>(i), .user_id = 1,
                 .latency_ms = latencies[i]});
  }
  const auto from_dataset = biased_histogram(dataset, options);
  const auto from_span = biased_histogram(latencies, options);
  for (std::size_t i = 0; i < from_dataset.size(); ++i) {
    EXPECT_DOUBLE_EQ(from_dataset.count(i), from_span.count(i));
  }
}

TEST(BiasedTest, OverflowLatenciesClampIntoLastBin) {
  AutoSensOptions options;
  const std::vector<double> latencies = {50'000.0};
  const auto h = biased_histogram(latencies, options);
  EXPECT_DOUBLE_EQ(h.count(h.size() - 1), 1.0);
}

}  // namespace
}  // namespace autosens::core
