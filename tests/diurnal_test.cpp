#include "simulate/diurnal.h"

#include <gtest/gtest.h>

#include "telemetry/clock.h"

namespace autosens::simulate {
namespace {

TEST(DiurnalCurveTest, HourCentersReturnExactValues) {
  std::array<double, 24> values{};
  for (std::size_t h = 0; h < 24; ++h) values[h] = static_cast<double>(h);
  const DiurnalCurve curve(values);
  for (int h = 0; h < 24; ++h) {
    EXPECT_NEAR(curve.at_hour(h + 0.5), static_cast<double>(h), 1e-12);
  }
}

TEST(DiurnalCurveTest, InterpolatesBetweenHourCenters) {
  std::array<double, 24> values{};
  values[10] = 1.0;
  values[11] = 3.0;
  const DiurnalCurve curve(values);
  EXPECT_NEAR(curve.at_hour(11.0), 2.0, 1e-12);
}

TEST(DiurnalCurveTest, WrapsAroundMidnight) {
  std::array<double, 24> values{};
  values[23] = 2.0;
  values[0] = 4.0;
  const DiurnalCurve curve(values);
  EXPECT_NEAR(curve.at_hour(0.0), 3.0, 1e-12);  // midpoint of 23.5 and 0.5
  EXPECT_NEAR(curve.at_hour(23.75), 2.5, 1e-12);
}

TEST(DiurnalCurveTest, AtTimeMatchesAtHour) {
  const auto curve = default_activity_curve();
  const std::int64_t t = 3 * telemetry::kMillisPerDay + 10 * telemetry::kMillisPerHour +
                         30 * telemetry::kMillisPerMinute;
  EXPECT_NEAR(curve.at_time(t), curve.at_hour(10.5), 1e-12);
}

TEST(DiurnalCurveTest, AtTimeHandlesNegativeTimes) {
  const auto curve = default_activity_curve();
  EXPECT_NEAR(curve.at_time(-telemetry::kMillisPerHour),
              curve.at_hour(23.0), 1e-12);
}

TEST(DiurnalCurveTest, MinMax) {
  const auto curve = default_activity_curve();
  EXPECT_DOUBLE_EQ(curve.max_value(), 1.0);
  EXPECT_DOUBLE_EQ(curve.min_value(), 0.10);
}

TEST(DiurnalCurveTest, MeanOverHoursSimpleRange) {
  std::array<double, 24> values{};
  values[8] = 1.0;
  values[9] = 3.0;
  const DiurnalCurve curve(values);
  EXPECT_NEAR(curve.mean_over_hours(8, 10), 2.0, 1e-12);
}

TEST(DiurnalCurveTest, MeanOverHoursWraps) {
  std::array<double, 24> values{};
  values[23] = 1.0;
  values[0] = 3.0;
  const DiurnalCurve curve(values);
  EXPECT_NEAR(curve.mean_over_hours(23, 1), 2.0, 1e-12);
}

TEST(DefaultCurvesTest, ActivityPeaksDuringBusinessHours) {
  const auto curve = default_activity_curve();
  // Daytime (8–14) must be far more active than deep night (2–8):
  // this is the planted α ground truth of Fig 8.
  EXPECT_GT(curve.mean_over_hours(8, 14), 3.0 * curve.mean_over_hours(2, 8));
  // Ordering of the four paper periods.
  EXPECT_GT(curve.mean_over_hours(8, 14), curve.mean_over_hours(14, 20));
  EXPECT_GT(curve.mean_over_hours(14, 20), curve.mean_over_hours(20, 2));
  EXPECT_GT(curve.mean_over_hours(20, 2), curve.mean_over_hours(2, 8));
}

TEST(DefaultCurvesTest, LoadIsHigherDuringDaytime) {
  const auto curve = default_load_curve();
  EXPECT_GT(curve.mean_over_hours(8, 20), 0.0);
  EXPECT_LT(curve.mean_over_hours(0, 6), 0.0);
}

TEST(WeekendMultiplierTest, AppliesOnSaturdayAndSunday) {
  // Epoch day 0 is Thursday; Saturday is day 2, Sunday day 3.
  EXPECT_DOUBLE_EQ(weekend_multiplier(2 * telemetry::kMillisPerDay, 0.7), 0.7);
  EXPECT_DOUBLE_EQ(weekend_multiplier(3 * telemetry::kMillisPerDay, 0.7), 0.7);
  EXPECT_DOUBLE_EQ(weekend_multiplier(0, 0.7), 1.0);
  EXPECT_DOUBLE_EQ(weekend_multiplier(4 * telemetry::kMillisPerDay, 0.7), 1.0);
  EXPECT_DOUBLE_EQ(weekend_multiplier(9 * telemetry::kMillisPerDay, 0.7), 0.7);
}

}  // namespace
}  // namespace autosens::simulate
