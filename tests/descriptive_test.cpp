#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "stats/rng.h"

namespace autosens::stats {
namespace {

TEST(RunningStatsTest, EmptyStats) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, MeanAndVariance) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i * 0.7) * 10.0;
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(MsdTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(mean_successive_difference({}), 0.0);
  const std::vector<double> one = {5.0};
  EXPECT_DOUBLE_EQ(mean_successive_difference(one), 0.0);
}

TEST(MsdTest, KnownSeries) {
  const std::vector<double> v = {1.0, 3.0, 2.0, 6.0};
  // |2| + |-1| + |4| over 3 steps.
  EXPECT_DOUBLE_EQ(mean_successive_difference(v), 7.0 / 3.0);
}

TEST(MadTest, KnownSeries) {
  const std::vector<double> v = {1.0, 2.0, 4.0};
  // pairs: |1-2| + |1-4| + |2-4| = 6 over 3 pairs.
  EXPECT_DOUBLE_EQ(mean_absolute_difference(v), 2.0);
}

TEST(MadTest, OrderInvariant) {
  const std::vector<double> a = {5.0, 1.0, 3.0, 2.0};
  std::vector<double> b = a;
  std::sort(b.begin(), b.end());
  EXPECT_DOUBLE_EQ(mean_absolute_difference(a), mean_absolute_difference(b));
}

TEST(MsdMadRatioTest, ConstantSeriesIsZero) {
  const std::vector<double> v(10, 3.0);
  EXPECT_DOUBLE_EQ(msd_mad_ratio(v), 0.0);
}

TEST(MsdMadRatioTest, SortedSeriesIsSmall) {
  std::vector<double> v(1000);
  std::iota(v.begin(), v.end(), 0.0);
  // Sorted: MSD = 1, MAD = (n+1)/3 → ratio ≈ 3/n.
  EXPECT_NEAR(msd_mad_ratio(v), 3.0 / 1000.0, 1e-3);
}

TEST(MsdMadRatioTest, ShuffledSeriesNearOne) {
  Random random(5);
  std::vector<double> v(5000);
  for (auto& x : v) x = random.uniform();
  // For i.i.d. samples E[MSD] = E[MAD], so the ratio ≈ 1.
  EXPECT_NEAR(msd_mad_ratio(v), 1.0, 0.05);
}

TEST(MsdMadRatioTest, LocalSeriesIsMuchSmallerThanShuffled) {
  // Slowly drifting series: strong temporal locality (paper Fig 1's point).
  Random random(6);
  std::vector<double> v;
  double x = 0.0;
  for (int i = 0; i < 5000; ++i) {
    x = 0.995 * x + 0.1 * random.normal();
    v.push_back(x);
  }
  const double actual = msd_mad_ratio(v);
  auto shuffled = v;
  random.shuffle(std::span<double>(shuffled));
  const double shuffled_ratio = msd_mad_ratio(shuffled);
  EXPECT_LT(actual, 0.4 * shuffled_ratio);
}

TEST(QuantileTest, Validation) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  const std::vector<double> v = {1.0};
  EXPECT_THROW(quantile(v, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(v, 1.0001), std::invalid_argument);
}

TEST(QuantileTest, Endpoints) {
  const std::vector<double> v = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 3.0);
}

TEST(QuantileTest, Type7Interpolation) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 1.75);
}

TEST(MedianTest, OddAndEven) {
  const std::vector<double> odd = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
  const std::vector<double> even = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(AutocorrelationTest, LagZeroIsOne) {
  const std::vector<double> v = {1.0, 5.0, 2.0, 8.0, 3.0};
  EXPECT_NEAR(autocorrelation(v, 0), 1.0, 1e-12);
}

TEST(AutocorrelationTest, WhiteNoiseNearZero) {
  Random random(7);
  std::vector<double> v(20'000);
  for (auto& x : v) x = random.normal();
  EXPECT_NEAR(autocorrelation(v, 1), 0.0, 0.03);
}

TEST(AutocorrelationTest, Ar1MatchesRho) {
  Random random(8);
  std::vector<double> v;
  double x = 0.0;
  const double rho = 0.8;
  for (int i = 0; i < 50'000; ++i) {
    x = rho * x + random.normal();
    v.push_back(x);
  }
  EXPECT_NEAR(autocorrelation(v, 1), rho, 0.02);
}

TEST(AutocorrelationTest, DegenerateInputs) {
  const std::vector<double> constant(10, 2.0);
  EXPECT_DOUBLE_EQ(autocorrelation(constant, 1), 0.0);
  const std::vector<double> v = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(autocorrelation(v, 5), 0.0);
}

TEST(MinMaxNormalizeTest, MapsToUnitInterval) {
  const std::vector<double> v = {10.0, 20.0, 15.0};
  const auto out = minmax_normalize(v);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
  EXPECT_DOUBLE_EQ(out[2], 0.5);
}

TEST(MinMaxNormalizeTest, ConstantInputMapsToZero) {
  const std::vector<double> v = {3.0, 3.0};
  const auto out = minmax_normalize(v);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
}

/// Property: MSD/MAD of an i.i.d. series is ~1 regardless of distribution.
class MsdMadDistributionProperty : public ::testing::TestWithParam<int> {};

TEST_P(MsdMadDistributionProperty, IidRatioNearOne) {
  Random random(100 + GetParam());
  std::vector<double> v(4000);
  switch (GetParam()) {
    case 0:
      for (auto& x : v) x = random.uniform();
      break;
    case 1:
      for (auto& x : v) x = random.normal();
      break;
    case 2:
      for (auto& x : v) x = random.exponential(1.0);
      break;
    case 3:
      for (auto& x : v) x = random.lognormal(0.0, 1.0);
      break;
  }
  EXPECT_NEAR(msd_mad_ratio(v), 1.0, 0.08);
}

INSTANTIATE_TEST_SUITE_P(Distributions, MsdMadDistributionProperty,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace autosens::stats
