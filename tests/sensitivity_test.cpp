#include "core/sensitivity.h"

#include <gtest/gtest.h>

#include "core/biased.h"
#include "core/pipeline.h"
#include "simulate/generator.h"
#include "simulate/presets.h"
#include "telemetry/filter.h"
#include "telemetry/validate.h"

namespace autosens::core {
namespace {

/// A synthetic PreferenceResult with a linear NLP over [100, 2900] ms.
PreferenceResult linear_preference(double slope_per_ms) {
  AutoSensOptions options;
  auto biased = make_latency_histogram(options);
  auto unbiased = make_latency_histogram(options);
  for (std::size_t i = 1; i + 1 < biased.size(); ++i) {
    const double latency = biased.bin_center(i);
    unbiased.set_count(i, 1000.0);
    biased.set_count(i, 1000.0 * (1.0 + slope_per_ms * (latency - 300.0)));
  }
  return compute_preference(biased, unbiased, options);
}

TEST(SummarizeTest, FlatCurveIsInsensitive) {
  const auto summary = summarize(linear_preference(0.0));
  EXPECT_NEAR(summary.drop_at_1000ms, 0.0, 1e-6);
  EXPECT_EQ(summary.classification, SensitivityClass::kInsensitive);
  EXPECT_DOUBLE_EQ(summary.latency_at_nlp_08, 0.0);
  EXPECT_NEAR(summary.slope_per_100ms, 0.0, 1e-6);
}

TEST(SummarizeTest, SteepCurveIsHighlySensitive) {
  // NLP(1000) = 1 - 3e-4 * 700 = 0.79 → drop 0.21.
  const auto summary = summarize(linear_preference(-3e-4));
  EXPECT_NEAR(summary.drop_at_1000ms, 0.21, 0.01);
  EXPECT_EQ(summary.classification, SensitivityClass::kHigh);
  EXPECT_LT(summary.slope_per_100ms, -0.02);
  // NLP crosses 0.8 around 967 ms.
  EXPECT_NEAR(summary.latency_at_nlp_08, 967.0, 20.0);
}

TEST(SummarizeTest, ModerateBand) {
  // drop at 1000 = 1e-4 * 700 = 0.07.
  const auto summary = summarize(linear_preference(-1e-4));
  EXPECT_EQ(summary.classification, SensitivityClass::kModerate);
}

TEST(SummarizeTest, ClassNames) {
  EXPECT_EQ(to_string(SensitivityClass::kInsensitive), "insensitive");
  EXPECT_EQ(to_string(SensitivityClass::kModerate), "moderately sensitive");
  EXPECT_EQ(to_string(SensitivityClass::kHigh), "highly sensitive");
}

class ScreenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Small scale: the TV distance has a sampling-noise floor ~ sqrt(bins/n),
    // so thin slices (ComposeSend at tiny scale) would read as divergent.
    auto generated =
        simulate::WorkloadGenerator(simulate::paper_config(simulate::Scale::kSmall, 71))
            .generate();
    dataset_ = new telemetry::Dataset(telemetry::validate(generated.dataset).dataset);
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static telemetry::Dataset* dataset_;
};

telemetry::Dataset* ScreenTest::dataset_ = nullptr;

TEST_F(ScreenTest, SensitiveSliceIsWorthAnalyzing) {
  const auto slice =
      dataset_->filtered(telemetry::by_action(telemetry::ActionType::kSelectMail));
  const auto report = screen(slice, AutoSensOptions{});
  EXPECT_TRUE(report.worth_analyzing);
  EXPECT_GT(report.total_variation, 0.01);
  EXPECT_GT(report.kolmogorov_smirnov, 0.0);
  // The biased distribution leans toward lower latency.
  EXPECT_LT(report.mean_shift_ms, 0.0);
}

TEST_F(ScreenTest, ThresholdControlsVerdict) {
  const auto slice =
      dataset_->filtered(telemetry::by_action(telemetry::ActionType::kSelectMail));
  const auto report = screen(slice, AutoSensOptions{}, /*min_distance=*/0.99);
  EXPECT_FALSE(report.worth_analyzing);
}

TEST(ScreenPlantedTest, PlantedPreferenceDivergesMoreThanFlatPreference) {
  // Same workload shape and record volume, but one run has the latency
  // preference switched off entirely (drop scales = 0) — the screening
  // distance must be clearly larger when a preference is planted. Comparing
  // at equal sample size keeps the TV sampling-noise floor identical.
  auto sensitive_config = simulate::paper_config(simulate::Scale::kSmall, 72);
  auto flat_config = sensitive_config;
  flat_config.preference.user_drop_at_fastest = 0.0;
  flat_config.preference.user_drop_at_slowest = 0.0;

  const auto slice_of = [](const simulate::WorkloadConfig& config) {
    auto generated = simulate::WorkloadGenerator(config).generate();
    return telemetry::validate(generated.dataset)
        .dataset.filtered(telemetry::by_action(telemetry::ActionType::kSelectMail));
  };
  const auto sensitive = screen(slice_of(sensitive_config), AutoSensOptions{});
  const auto flat = screen(slice_of(flat_config), AutoSensOptions{});
  EXPECT_GT(sensitive.total_variation, 1.5 * flat.total_variation);
  // With α-normalization the confounder is corrected, so the flat workload
  // shows no systematic shift; the planted one leans clearly fast.
  EXPECT_NEAR(flat.mean_shift_ms, 0.0, 10.0);
  EXPECT_LT(sensitive.mean_shift_ms, -10.0);
}

}  // namespace
}  // namespace autosens::core
