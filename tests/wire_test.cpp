#include "net/wire.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "telemetry/binlog.h"

namespace autosens::net {
namespace {

using telemetry::ActionRecord;

std::pair<Socket, Socket> socket_pair() {
  std::uint16_t port = 0;
  Socket listener = listen_tcp(0, port);
  Socket client = connect_tcp(port);
  auto server = accept_with_timeout(listener, 1000);
  EXPECT_TRUE(server.has_value());
  return {std::move(client), std::move(*server)};
}

TEST(WireTest, EncodeFrameLayout) {
  Frame frame{.type = FrameType::kData, .seq = 0x01020304, .payload = {1, 2, 3}};
  const auto bytes = encode_frame(frame);
  // 2 magic + 1 type + 4 seq + 4 length + 3 payload + 4 crc.
  ASSERT_EQ(bytes.size(), kFrameOverheadBytes + 3);
  EXPECT_EQ(bytes[0], kFrameMagic0);
  EXPECT_EQ(bytes[1], kFrameMagic1);
  EXPECT_EQ(bytes[2], 1u);     // type
  EXPECT_EQ(bytes[3], 0x04u);  // little-endian seq
  EXPECT_EQ(bytes[6], 0x01u);
  EXPECT_EQ(bytes[7], 3u);  // little-endian length
  EXPECT_EQ(bytes[8], 0u);
}

TEST(WireTest, HelloRoundtrip) {
  const std::uint64_t id = 0xdeadbeefcafe1234ULL;
  const Frame hello = make_hello(id);
  EXPECT_EQ(hello.type, FrameType::kHello);
  const auto parsed = parse_hello(hello.payload);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, id);
  EXPECT_EQ(parse_hello(std::vector<std::uint8_t>{1, 2, 3}), std::nullopt);
}

TEST(WireTest, SeqSurvivesRoundtrip) {
  auto [client, server] = socket_pair();
  send_frame(client, Frame{.type = FrameType::kData, .seq = 77, .payload = {5}});
  const auto received = recv_frame(server);
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->seq, 77u);
}

TEST(WireTest, FrameRoundtripOverLoopback) {
  auto [client, server] = socket_pair();
  Frame frame{.type = FrameType::kData, .payload = {9, 8, 7, 6}};
  send_frame(client, frame);
  const auto received = recv_frame(server);
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->type, FrameType::kData);
  EXPECT_EQ(received->payload, frame.payload);
}

TEST(WireTest, EmptyPayloadFrames) {
  auto [client, server] = socket_pair();
  send_frame(client, Frame{.type = FrameType::kFlush, .payload = {}});
  send_frame(client, Frame{.type = FrameType::kGoodbye, .payload = {}});
  auto f1 = recv_frame(server);
  ASSERT_TRUE(f1.has_value());
  EXPECT_EQ(f1->type, FrameType::kFlush);
  auto f2 = recv_frame(server);
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(f2->type, FrameType::kGoodbye);
}

TEST(WireTest, CleanEofReturnsNullopt) {
  auto [client, server] = socket_pair();
  client.close();
  EXPECT_EQ(recv_frame(server), std::nullopt);
}

TEST(WireTest, CorruptCrcThrows) {
  auto [client, server] = socket_pair();
  Frame frame{.type = FrameType::kData, .payload = {1, 2, 3, 4, 5}};
  auto bytes = encode_frame(frame);
  bytes[kFrameHeaderBytes + 1] ^= 0xff;  // corrupt payload byte
  write_all(client, bytes);
  EXPECT_THROW(recv_frame(server), std::runtime_error);
}

TEST(WireTest, CorruptLengthThrows) {
  auto [client, server] = socket_pair();
  auto bytes = encode_frame({.type = FrameType::kData, .payload = {1, 2, 3}});
  bytes[7] ^= 0x01;  // length no longer matches the CRC
  write_all(client, bytes);
  client.close();
  EXPECT_THROW(recv_frame(server), std::runtime_error);
}

TEST(WireTest, BadMagicThrows) {
  auto [client, server] = socket_pair();
  std::vector<std::uint8_t> bytes = {42, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  write_all(client, bytes);
  EXPECT_THROW(recv_frame(server), std::runtime_error);
}

TEST(WireTest, UnknownFrameTypeThrows) {
  auto [client, server] = socket_pair();
  std::vector<std::uint8_t> bytes = {kFrameMagic0, kFrameMagic1, 42,
                                     0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  write_all(client, bytes);
  EXPECT_THROW(recv_frame(server), std::runtime_error);
}

TEST(WireTest, OversizedPayloadRejected) {
  auto [client, server] = socket_pair();
  Frame frame{.type = FrameType::kData, .payload = std::vector<std::uint8_t>(1000, 1)};
  send_frame(client, frame);
  EXPECT_THROW(recv_frame(server, /*max_payload=*/100), std::runtime_error);
}

TEST(WireTest, SendRecordsRoundtrip) {
  auto [client, server] = socket_pair();
  std::vector<ActionRecord> records;
  for (int i = 0; i < 100; ++i) {
    records.push_back({.time_ms = 1000 + i,
                       .user_id = static_cast<std::uint64_t>(50 + i % 3),
                       .latency_ms = 100.0 + i,
                       .action = telemetry::ActionType::kSearch,
                       .user_class = telemetry::UserClass::kConsumer,
                       .status = telemetry::ActionStatus::kSuccess});
  }
  send_records(client, records);
  const auto frame = recv_frame(server);
  ASSERT_TRUE(frame.has_value());
  const auto decoded = telemetry::codec::decode_batch(frame->payload);
  ASSERT_EQ(decoded.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) EXPECT_EQ(decoded[i], records[i]);
}

TEST(FrameDecoderTest, DecodesWholeFrame) {
  FrameDecoder decoder;
  const Frame frame{.type = FrameType::kData, .payload = {1, 2, 3}};
  decoder.feed(encode_frame(frame));
  const auto out = decoder.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->payload, frame.payload);
  EXPECT_EQ(decoder.next(), std::nullopt);
  EXPECT_EQ(decoder.pending_bytes(), 0u);
}

TEST(FrameDecoderTest, DecodesByteByByte) {
  FrameDecoder decoder;
  const Frame frame{.type = FrameType::kFlush, .payload = {}};
  const auto bytes = encode_frame(frame);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    EXPECT_EQ(decoder.next(), std::nullopt) << "premature frame at byte " << i;
    decoder.feed(std::span<const std::uint8_t>(&bytes[i], 1));
  }
  const auto out = decoder.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->type, FrameType::kFlush);
}

TEST(FrameDecoderTest, DecodesMultipleFramesFromOneFeed) {
  FrameDecoder decoder;
  std::vector<std::uint8_t> bytes;
  for (int i = 0; i < 3; ++i) {
    const auto encoded = encode_frame(
        {.type = FrameType::kData, .payload = {static_cast<std::uint8_t>(i)}});
    bytes.insert(bytes.end(), encoded.begin(), encoded.end());
  }
  decoder.feed(bytes);
  for (std::uint8_t i = 0; i < 3; ++i) {
    const auto out = decoder.next();
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->payload[0], i);
  }
  EXPECT_EQ(decoder.next(), std::nullopt);
}

TEST(FrameDecoderTest, SkipsCorruptInputWithoutThrowing) {
  // A corrupted frame is scanned past, never thrown on; nothing valid means
  // nothing decoded, and skipped_bytes accounts for the damage.
  FrameDecoder decoder;
  auto bytes = encode_frame({.type = FrameType::kData, .payload = {1, 2, 3, 4}});
  bytes[kFrameHeaderBytes] ^= 0xff;  // corrupt payload
  decoder.feed(bytes);
  EXPECT_EQ(decoder.next(), std::nullopt);
  EXPECT_GT(decoder.skipped_bytes(), 0u);
  EXPECT_EQ(decoder.resyncs(), 0u);  // no valid frame followed

  FrameDecoder decoder2;
  decoder2.feed(std::vector<std::uint8_t>{99, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0});
  EXPECT_EQ(decoder2.next(), std::nullopt);
  // Scanning stops once fewer than a header's worth of bytes remain (they
  // could be the prefix of a frame still in flight).
  EXPECT_EQ(decoder2.skipped_bytes(), 2u);
  EXPECT_EQ(decoder2.pending_bytes(), 10u);

  FrameDecoder decoder3(/*max_payload=*/4);
  decoder3.feed(encode_frame({.type = FrameType::kData, .payload = {1, 2, 3, 4, 5}}));
  EXPECT_EQ(decoder3.next(), std::nullopt);
  EXPECT_GT(decoder3.skipped_bytes(), 0u);
}

TEST(FrameDecoderTest, ResyncsToNextValidFrame) {
  // garbage + corrupt frame + valid frame: the decoder recovers the valid
  // frame and reports exactly one resync covering the damaged run.
  FrameDecoder decoder;
  std::vector<std::uint8_t> stream = {0x00, 0xff, 0x17, 0xa5};  // noise w/ fake magic start
  auto corrupt = encode_frame({.type = FrameType::kData, .payload = {9, 9, 9}});
  corrupt[kFrameHeaderBytes + 1] ^= 0x40;
  stream.insert(stream.end(), corrupt.begin(), corrupt.end());
  const auto good = encode_frame({.type = FrameType::kData, .seq = 5, .payload = {1, 2}});
  stream.insert(stream.end(), good.begin(), good.end());

  decoder.feed(stream);
  const auto out = decoder.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->seq, 5u);
  EXPECT_EQ(out->payload, (std::vector<std::uint8_t>{1, 2}));
  EXPECT_EQ(decoder.resyncs(), 1u);
  EXPECT_EQ(decoder.skipped_bytes(), 4u + corrupt.size());
  EXPECT_EQ(decoder.next(), std::nullopt);
  EXPECT_EQ(decoder.pending_bytes(), 0u);
}

TEST(FrameDecoderTest, ResyncCountsDamagedRunsNotBytes) {
  // Two separate damaged runs, each followed by a valid frame -> 2 resyncs.
  FrameDecoder decoder;
  std::vector<std::uint8_t> stream(7, 0xee);
  const auto a = encode_frame({.type = FrameType::kFlush, .payload = {}});
  stream.insert(stream.end(), a.begin(), a.end());
  stream.insert(stream.end(), 13, 0xdd);
  const auto b = encode_frame({.type = FrameType::kGoodbye, .payload = {}});
  stream.insert(stream.end(), b.begin(), b.end());

  decoder.feed(stream);
  ASSERT_TRUE(decoder.next().has_value());
  ASSERT_TRUE(decoder.next().has_value());
  EXPECT_EQ(decoder.next(), std::nullopt);
  EXPECT_EQ(decoder.resyncs(), 2u);
  EXPECT_EQ(decoder.skipped_bytes(), 20u);
}

TEST(FrameDecoderTest, InterleavedFeedAndNext) {
  FrameDecoder decoder;
  const auto a = encode_frame({.type = FrameType::kData, .payload = {7}});
  const auto b = encode_frame({.type = FrameType::kGoodbye, .payload = {}});
  // Feed a + half of b, drain, then the rest.
  std::vector<std::uint8_t> first(a.begin(), a.end());
  first.insert(first.end(), b.begin(), b.begin() + 4);
  decoder.feed(first);
  ASSERT_TRUE(decoder.next().has_value());
  EXPECT_EQ(decoder.next(), std::nullopt);
  decoder.feed(std::span<const std::uint8_t>(b.data() + 4, b.size() - 4));
  const auto out = decoder.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->type, FrameType::kGoodbye);
}

TEST(SocketTest, MoveSemantics) {
  std::uint16_t port = 0;
  Socket listener = listen_tcp(0, port);
  const int fd = listener.fd();
  Socket moved = std::move(listener);
  EXPECT_EQ(moved.fd(), fd);
  EXPECT_FALSE(listener.valid());  // NOLINT(bugprone-use-after-move): testing move state
}

TEST(SocketTest, AcceptTimesOut) {
  std::uint16_t port = 0;
  Socket listener = listen_tcp(0, port);
  const auto client = accept_with_timeout(listener, 50);
  EXPECT_FALSE(client.has_value());
}

TEST(SocketTest, EphemeralPortAssigned) {
  std::uint16_t port = 0;
  Socket listener = listen_tcp(0, port);
  EXPECT_GT(port, 0u);
}

TEST(SocketTest, ConnectToClosedPortThrows) {
  // Bind then close a listener to find a (very likely) dead port.
  std::uint16_t port = 0;
  {
    Socket listener = listen_tcp(0, port);
  }
  EXPECT_THROW(connect_tcp(port), SocketError);
}

}  // namespace
}  // namespace autosens::net
