#include "core/unbiased.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace autosens::core {
namespace {

AutoSensOptions small_options() {
  AutoSensOptions options;
  options.bin_width_ms = 10.0;
  options.max_latency_ms = 1000.0;
  options.unbiased_draws = 50'000;
  return options;
}

TEST(UnbiasedTest, VoronoiWeightsByTimeCoverage) {
  // Two samples: one covers 25% of the window, the other 75%.
  const std::vector<std::int64_t> times = {250, 750};  // midpoint 500
  const std::vector<double> latencies = {100.0, 200.0};
  const auto h = unbiased_histogram_voronoi(times, latencies, {.begin_ms = 0, .end_ms = 1000},
                                            small_options());
  EXPECT_NEAR(h.count(h.bin_index(100.0)), 0.5, 1e-12);
  EXPECT_NEAR(h.count(h.bin_index(200.0)), 0.5, 1e-12);
  EXPECT_NEAR(h.total_weight(), 1.0, 1e-12);
}

TEST(UnbiasedTest, VoronoiAsymmetricCells) {
  const std::vector<std::int64_t> times = {100, 900};
  const std::vector<double> latencies = {10.0, 20.0};
  const auto h = unbiased_histogram_voronoi(times, latencies, {.begin_ms = 0, .end_ms = 1000},
                                            small_options());
  EXPECT_NEAR(h.count(h.bin_index(10.0)), 0.5, 1e-12);  // cell [0,500)
  EXPECT_NEAR(h.count(h.bin_index(20.0)), 0.5, 1e-12);  // cell [500,1000)
}

TEST(UnbiasedTest, MonteCarloMatchesVoronoi) {
  stats::Random env_random(3);
  std::vector<std::int64_t> times;
  std::vector<double> latencies;
  std::int64_t t = 0;
  for (int i = 0; i < 500; ++i) {
    t += static_cast<std::int64_t>(env_random.exponential(0.02)) + 1;
    times.push_back(t);
    latencies.push_back(env_random.lognormal(5.0, 0.4));
  }
  const TimeWindow window{.begin_ms = 0, .end_ms = t + 50};
  const auto options = small_options();
  const auto voronoi = unbiased_histogram_voronoi(times, latencies, window, options);
  stats::Random mc_random(4);
  const auto mc = unbiased_histogram_mc(times, latencies, window, options, mc_random);
  const auto pdf_v = voronoi.pdf();
  const auto pdf_mc = mc.pdf();
  double l1 = 0.0;
  for (std::size_t i = 0; i < pdf_v.size(); ++i) {
    l1 += std::abs(pdf_v[i] - pdf_mc[i]) * options.bin_width_ms;
  }
  EXPECT_LT(l1, 0.05);  // total variation distance small at 50k draws
}

TEST(UnbiasedTest, SizeMismatchThrows) {
  const std::vector<std::int64_t> times = {1, 2};
  const std::vector<double> latencies = {1.0};
  EXPECT_THROW(unbiased_histogram_voronoi(times, latencies, {.begin_ms = 0, .end_ms = 10},
                                          small_options()),
               std::invalid_argument);
  stats::Random random(1);
  EXPECT_THROW(unbiased_histogram_mc(times, latencies, {.begin_ms = 0, .end_ms = 10},
                                     small_options(), random),
               std::invalid_argument);
}

TEST(UnbiasedTest, OverWindowsWeightsByDuration) {
  // Window A (length 100) has latency 10; window B (length 300) latency 20.
  const std::vector<std::int64_t> times = {50, 450};
  const std::vector<double> latencies = {10.0, 20.0};
  const std::vector<TimeWindow> windows = {{.begin_ms = 0, .end_ms = 100},
                                           {.begin_ms = 300, .end_ms = 600}};
  const auto h = unbiased_histogram_over_windows(times, latencies, windows, 10.0, 1000.0);
  EXPECT_NEAR(h.count(h.bin_index(10.0)), 100.0, 1e-9);
  EXPECT_NEAR(h.count(h.bin_index(20.0)), 300.0, 1e-9);
}

TEST(UnbiasedTest, OverWindowsSkipsEmptyWindows) {
  const std::vector<std::int64_t> times = {50};
  const std::vector<double> latencies = {10.0};
  const std::vector<TimeWindow> windows = {{.begin_ms = 0, .end_ms = 100},
                                           {.begin_ms = 200, .end_ms = 300}};
  const auto h = unbiased_histogram_over_windows(times, latencies, windows, 10.0, 1000.0);
  EXPECT_NEAR(h.total_weight(), 100.0, 1e-9);  // only the populated window
}

TEST(UnbiasedTest, OverWindowsValidatesWindows) {
  const std::vector<std::int64_t> times = {50};
  const std::vector<double> latencies = {10.0};
  const std::vector<TimeWindow> bad = {{.begin_ms = 100, .end_ms = 100}};
  EXPECT_THROW(unbiased_histogram_over_windows(times, latencies, bad, 10.0, 1000.0),
               std::invalid_argument);
}

TEST(UnbiasedTest, OverWindowsRejectsUnsortedTimes) {
  // The duration weights come from lower_bound scans over `times`; unsorted
  // input would silently misattribute mass, so the public entry point
  // validates sortedness up front.
  const std::vector<std::int64_t> times = {500, 100};
  const std::vector<double> latencies = {100.0, 200.0};
  const std::vector<TimeWindow> windows = {{0, 1000}};
  EXPECT_THROW(unbiased_histogram_over_windows(times, latencies, windows, 10.0, 1000.0),
               std::invalid_argument);
  // Sorted input with identical content is accepted.
  const std::vector<std::int64_t> ok = {100, 500};
  EXPECT_NO_THROW(unbiased_histogram_over_windows(ok, latencies, windows, 10.0, 1000.0));
}

TEST(UnbiasedTest, SampleOnlyAffectsItsOwnWindow) {
  // A sample in window A must not soak up time from window B.
  const std::vector<std::int64_t> times = {50, 260};
  const std::vector<double> latencies = {10.0, 20.0};
  const std::vector<TimeWindow> windows = {{.begin_ms = 0, .end_ms = 100},
                                           {.begin_ms = 250, .end_ms = 350}};
  const auto h = unbiased_histogram_over_windows(times, latencies, windows, 10.0, 1000.0);
  EXPECT_NEAR(h.count(h.bin_index(10.0)), 100.0, 1e-9);
  EXPECT_NEAR(h.count(h.bin_index(20.0)), 100.0, 1e-9);
}

TEST(UnbiasedTest, DatasetConvenienceHonorsMethod) {
  telemetry::Dataset dataset;
  stats::Random random(5);
  std::int64_t t = 0;
  for (int i = 0; i < 300; ++i) {
    t += 100 + static_cast<std::int64_t>(random.exponential(0.05));
    dataset.add({.time_ms = t, .user_id = 1, .latency_ms = random.lognormal(5.0, 0.3)});
  }
  auto options = small_options();
  options.unbiased_method = UnbiasedMethod::kVoronoi;
  const auto voronoi = unbiased_histogram(dataset, options);
  options.unbiased_method = UnbiasedMethod::kMonteCarlo;
  const auto mc = unbiased_histogram(dataset, options);
  // Voronoi mass is 1 (probability); MC mass equals the draw count.
  EXPECT_NEAR(voronoi.total_weight(), 1.0, 1e-9);
  EXPECT_NEAR(mc.total_weight(), static_cast<double>(options.unbiased_draws), 0.5);
}

TEST(UnbiasedTest, EmptyDatasetThrows) {
  EXPECT_THROW(unbiased_histogram(telemetry::Dataset{}, small_options()),
               std::invalid_argument);
}

TEST(UnbiasedTest, BiasedSamplingIsCorrected) {
  // Construct a series where low-latency periods have 10x the sampling rate.
  // The biased histogram then over-represents low latency, but the unbiased
  // estimate must recover the 50/50 time split. This is the core mechanism
  // of the whole method (§2.2).
  std::vector<std::int64_t> times;
  std::vector<double> latencies;
  std::int64_t t = 0;
  bool low_phase = true;
  while (t < 1'000'000) {
    const std::int64_t phase_end = t + 50'000;  // 50 s phases
    const std::int64_t gap = low_phase ? 100 : 1000;
    const double latency = low_phase ? 100.0 : 500.0;
    for (; t < phase_end; t += gap) {
      times.push_back(t);
      latencies.push_back(latency);
    }
    low_phase = !low_phase;
  }
  const auto options = small_options();
  const auto u =
      unbiased_histogram_voronoi(times, latencies, {.begin_ms = 0, .end_ms = 1'000'000},
                                 options);
  const double low_mass = u.count(u.bin_index(100.0)) / u.total_weight();
  const double high_mass = u.count(u.bin_index(500.0)) / u.total_weight();
  EXPECT_NEAR(low_mass, 0.5, 0.02);
  EXPECT_NEAR(high_mass, 0.5, 0.02);
}

}  // namespace
}  // namespace autosens::core
