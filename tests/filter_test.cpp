#include "telemetry/filter.h"

#include <gtest/gtest.h>

namespace autosens::telemetry {
namespace {

ActionRecord make_record(std::int64_t time_ms, std::uint64_t user, double latency,
                         ActionType action = ActionType::kSelectMail,
                         UserClass user_class = UserClass::kBusiness,
                         ActionStatus status = ActionStatus::kSuccess) {
  return {time_ms, user, latency, action, user_class, status};
}

TEST(FilterTest, ByAction) {
  const auto p = by_action(ActionType::kSearch);
  EXPECT_TRUE(p(make_record(0, 1, 1.0, ActionType::kSearch)));
  EXPECT_FALSE(p(make_record(0, 1, 1.0, ActionType::kSelectMail)));
}

TEST(FilterTest, ByUserClass) {
  const auto p = by_user_class(UserClass::kConsumer);
  EXPECT_TRUE(p(make_record(0, 1, 1.0, ActionType::kSearch, UserClass::kConsumer)));
  EXPECT_FALSE(p(make_record(0, 1, 1.0, ActionType::kSearch, UserClass::kBusiness)));
}

TEST(FilterTest, ByStatus) {
  const auto p = by_status(ActionStatus::kError);
  EXPECT_TRUE(p(make_record(0, 1, 1.0, ActionType::kSearch, UserClass::kBusiness,
                            ActionStatus::kError)));
  EXPECT_FALSE(p(make_record(0, 1, 1.0)));
}

TEST(FilterTest, ByPeriod) {
  const auto p = by_period(DayPeriod::kMorning);
  EXPECT_TRUE(p(make_record(9 * kMillisPerHour, 1, 1.0)));
  EXPECT_FALSE(p(make_record(15 * kMillisPerHour, 1, 1.0)));
}

TEST(FilterTest, ByMonth) {
  const auto p = by_month(1);
  EXPECT_FALSE(p(make_record(29 * kMillisPerDay, 1, 1.0)));
  EXPECT_TRUE(p(make_record(30 * kMillisPerDay, 1, 1.0)));
  EXPECT_TRUE(p(make_record(59 * kMillisPerDay, 1, 1.0)));
  EXPECT_FALSE(p(make_record(60 * kMillisPerDay, 1, 1.0)));
}

TEST(FilterTest, ByTimeRangeIsHalfOpen) {
  const auto p = by_time_range(100, 200);
  EXPECT_FALSE(p(make_record(99, 1, 1.0)));
  EXPECT_TRUE(p(make_record(100, 1, 1.0)));
  EXPECT_TRUE(p(make_record(199, 1, 1.0)));
  EXPECT_FALSE(p(make_record(200, 1, 1.0)));
}

TEST(FilterTest, AllOfCombines) {
  const auto p = all_of({by_action(ActionType::kSearch), by_user_class(UserClass::kConsumer)});
  EXPECT_TRUE(p(make_record(0, 1, 1.0, ActionType::kSearch, UserClass::kConsumer)));
  EXPECT_FALSE(p(make_record(0, 1, 1.0, ActionType::kSearch, UserClass::kBusiness)));
  EXPECT_FALSE(p(make_record(0, 1, 1.0, ActionType::kSelectMail, UserClass::kConsumer)));
}

TEST(FilterTest, AllOfEmptyMatchesEverything) {
  const auto p = all_of({});
  EXPECT_TRUE(p(make_record(0, 1, 1.0)));
}

Dataset quartile_dataset() {
  // 8 users whose median latencies are 10, 20, ..., 80.
  Dataset d;
  for (std::uint64_t u = 1; u <= 8; ++u) {
    for (int k = 0; k < 3; ++k) {
      d.add(make_record(static_cast<std::int64_t>(u * 10 + k), u,
                        static_cast<double>(u) * 10.0));
    }
  }
  d.sort_by_time();
  return d;
}

TEST(UserQuartilesTest, ThrowsOnEmptyDataset) {
  EXPECT_THROW(UserQuartiles(Dataset{}), std::invalid_argument);
}

TEST(UserQuartilesTest, AssignsBalancedQuartiles) {
  const UserQuartiles quartiles(quartile_dataset());
  EXPECT_EQ(quartiles.user_count(), 8u);
  // Users 1,2 → Q1; 3,4 → Q2; 5,6 → Q3; 7,8 → Q4.
  EXPECT_EQ(quartiles.quartile_of(1), 0);
  EXPECT_EQ(quartiles.quartile_of(2), 0);
  EXPECT_EQ(quartiles.quartile_of(3), 1);
  EXPECT_EQ(quartiles.quartile_of(4), 1);
  EXPECT_EQ(quartiles.quartile_of(5), 2);
  EXPECT_EQ(quartiles.quartile_of(6), 2);
  EXPECT_EQ(quartiles.quartile_of(7), 3);
  EXPECT_EQ(quartiles.quartile_of(8), 3);
}

TEST(UserQuartilesTest, BoundariesAreMonotone) {
  const UserQuartiles quartiles(quartile_dataset());
  const auto& b = quartiles.boundaries();
  EXPECT_LT(b[0], b[1]);
  EXPECT_LT(b[1], b[2]);
}

TEST(UserQuartilesTest, UnknownUserThrows) {
  const UserQuartiles quartiles(quartile_dataset());
  EXPECT_FALSE(quartiles.contains(999));
  EXPECT_THROW(quartiles.quartile_of(999), std::invalid_argument);
}

TEST(UserQuartilesTest, InQuartilePredicate) {
  const UserQuartiles quartiles(quartile_dataset());
  const auto q1 = quartiles.in_quartile(0);
  EXPECT_TRUE(q1(make_record(0, 1, 1.0)));
  EXPECT_FALSE(q1(make_record(0, 8, 1.0)));
  EXPECT_FALSE(q1(make_record(0, 999, 1.0)));  // unknown users match nothing
}

TEST(UserQuartilesTest, InQuartileValidatesRange) {
  const UserQuartiles quartiles(quartile_dataset());
  EXPECT_THROW(quartiles.in_quartile(-1), std::invalid_argument);
  EXPECT_THROW(quartiles.in_quartile(4), std::invalid_argument);
}

TEST(UserQuartilesTest, QuartilePartitionCoversAllUsers) {
  const auto data = quartile_dataset();
  const UserQuartiles quartiles(data);
  std::size_t total = 0;
  for (int q = 0; q < UserQuartiles::kQuartileCount; ++q) {
    total += data.filtered(quartiles.in_quartile(q)).size();
  }
  EXPECT_EQ(total, data.size());
}

}  // namespace
}  // namespace autosens::telemetry
