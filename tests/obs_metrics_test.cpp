#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

namespace autosens::obs {
namespace {

/// Instrumentation is globally gated; these tests need it on (and must not
/// leave it on for other tests in the binary).
class ObsMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { set_enabled(true); }
  void TearDown() override { set_enabled(false); }
};

TEST_F(ObsMetricsTest, CounterCountsAndGateDropsUpdatesWhenDisabled) {
  Registry registry;
  auto& counter = registry.counter("requests_total", "Requests");
  counter.inc();
  counter.inc(4);
  EXPECT_EQ(counter.value(), 5u);
  set_enabled(false);
  counter.inc(100);
  EXPECT_EQ(counter.value(), 5u);
}

TEST_F(ObsMetricsTest, RawCounterIgnoresTheGate) {
  set_enabled(false);
  RawCounter raw;
  raw.add(3);
  EXPECT_EQ(raw.get(), 3u);
  raw.reset();
  EXPECT_EQ(raw.get(), 0u);
}

TEST_F(ObsMetricsTest, SameFullNameReturnsSameHandle) {
  Registry registry;
  auto& a = registry.counter("x_total");
  auto& b = registry.counter("x_total");
  EXPECT_EQ(&a, &b);
  auto& labeled = registry.counter("x_total{reason=\"a\"}");
  auto& labeled_again = registry.counter("x_total{reason=\"a\"}");
  EXPECT_EQ(&labeled, &labeled_again);
  EXPECT_NE(&a, &labeled);
}

TEST_F(ObsMetricsTest, TypeConflictThrows) {
  Registry registry;
  registry.counter("m");
  EXPECT_THROW(registry.gauge("m"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("m"), std::invalid_argument);
}

TEST_F(ObsMetricsTest, MalformedLabelSetThrows) {
  Registry registry;
  EXPECT_THROW(registry.counter("bad{"), std::invalid_argument);
  EXPECT_THROW(registry.counter("bad{}"), std::invalid_argument);
}

TEST_F(ObsMetricsTest, ConcurrentIncrementsAreExact) {
  Registry registry;
  auto& counter = registry.counter("c_total");
  auto& gauge = registry.gauge("g");
  auto& histogram = registry.histogram("h_ms", "", {1.0, 10.0});
  constexpr int kThreads = 8;
  constexpr int kIterations = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &gauge, &histogram] {
      for (int i = 0; i < kIterations; ++i) {
        counter.inc();
        gauge.add(1.0);
        histogram.observe(0.5);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kIterations);
  EXPECT_DOUBLE_EQ(gauge.value(), static_cast<double>(kThreads) * kIterations);
  EXPECT_EQ(histogram.count(), static_cast<std::uint64_t>(kThreads) * kIterations);
}

TEST_F(ObsMetricsTest, HistogramBucketBoundariesAreInclusive) {
  Registry registry;
  auto& histogram = registry.histogram("lat_ms", "", {1.0, 5.0, 10.0});
  histogram.observe(0.5);    // <= 1
  histogram.observe(1.0);    // le="1" is inclusive, Prometheus-style
  histogram.observe(1.001);  // <= 5
  histogram.observe(5.0);    // <= 5
  histogram.observe(7.0);    // <= 10
  histogram.observe(100.0);  // +Inf
  const std::vector<std::uint64_t> expected{2, 2, 1, 1};
  EXPECT_EQ(histogram.bucket_counts(), expected);
  EXPECT_EQ(histogram.count(), 6u);
  EXPECT_NEAR(histogram.sum(), 0.5 + 1.0 + 1.001 + 5.0 + 7.0 + 100.0, 1e-2);
}

TEST_F(ObsMetricsTest, HistogramRejectsBadBounds) {
  Registry registry;
  EXPECT_THROW(registry.histogram("empty_ms", "", {}), std::invalid_argument);
  EXPECT_THROW(registry.histogram("unsorted_ms", "", {5.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(registry.histogram("dup_ms", "", {1.0, 1.0}), std::invalid_argument);
}

TEST_F(ObsMetricsTest, DefaultBucketLadder) {
  const auto bounds = default_latency_buckets_ms();
  ASSERT_FALSE(bounds.empty());
  EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
  EXPECT_DOUBLE_EQ(bounds.front(), 0.1);
  EXPECT_DOUBLE_EQ(bounds.back(), 10'000.0);
}

TEST_F(ObsMetricsTest, GaugeSetAndAdd) {
  Registry registry;
  auto& gauge = registry.gauge("queue_depth");
  gauge.set(4.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 4.0);
  gauge.add(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 6.5);
  gauge.add(-6.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST_F(ObsMetricsTest, PrometheusGolden) {
  Registry registry;
  auto& counter = registry.counter("autosens_demo_total{reason=\"x\"}", "Demo counter");
  auto& gauge = registry.gauge("autosens_depth", "Queue depth");
  auto& histogram = registry.histogram("autosens_lat_ms", "Latency", {1.0, 10.0});
  counter.inc(3);
  gauge.set(2.0);
  histogram.observe(0.5);
  histogram.observe(3.0);
  histogram.observe(30.0);

  std::ostringstream out;
  registry.write_prometheus(out);
  EXPECT_EQ(out.str(),
            "# HELP autosens_demo_total Demo counter\n"
            "# TYPE autosens_demo_total counter\n"
            "autosens_demo_total{reason=\"x\"} 3\n"
            "# HELP autosens_depth Queue depth\n"
            "# TYPE autosens_depth gauge\n"
            "autosens_depth 2\n"
            "# HELP autosens_lat_ms Latency\n"
            "# TYPE autosens_lat_ms histogram\n"
            "autosens_lat_ms_bucket{le=\"1\"} 1\n"
            "autosens_lat_ms_bucket{le=\"10\"} 2\n"
            "autosens_lat_ms_bucket{le=\"+Inf\"} 3\n"
            "autosens_lat_ms_sum 33.5\n"
            "autosens_lat_ms_count 3\n");
}

TEST_F(ObsMetricsTest, LabeledSeriesShareOneTypeHeader) {
  Registry registry;
  registry.counter("dropped_total{reason=\"a\"}", "Drops").inc();
  registry.counter("dropped_total{reason=\"b\"}", "Drops").inc(2);
  std::ostringstream out;
  registry.write_prometheus(out);
  EXPECT_EQ(out.str(),
            "# HELP dropped_total Drops\n"
            "# TYPE dropped_total counter\n"
            "dropped_total{reason=\"a\"} 1\n"
            "dropped_total{reason=\"b\"} 2\n");
}

TEST_F(ObsMetricsTest, JsonGolden) {
  Registry registry;
  registry.counter("a_total", "A").inc(2);
  registry.histogram("h_ms", "", {1.0}).observe(0.5);
  std::ostringstream out;
  registry.write_json(out);
  EXPECT_EQ(out.str(),
            "[\n"
            "  {\"name\": \"a_total\", \"help\": \"A\", \"type\": \"counter\", "
            "\"value\": 2},\n"
            "  {\"name\": \"h_ms\", \"help\": \"\", \"type\": \"histogram\", "
            "\"sum\": 0.5, \"count\": 1, \"buckets\": "
            "[{\"le\": 1, \"count\": 1}, {\"le\": \"+Inf\", \"count\": 0}]}\n"
            "]\n");
}

TEST_F(ObsMetricsTest, PrometheusRoundTripsThroughParser) {
  Registry registry;
  registry.counter("autosens_demo_total{reason=\"x\"}", "Demo").inc(7);
  registry.gauge("autosens_alpha{class=\"Business\"}").set(1.25);
  auto& histogram = registry.histogram("autosens_lat_ms", "", {1.0, 10.0});
  histogram.observe(0.25);
  histogram.observe(4.0);

  std::stringstream text;
  registry.write_prometheus(text);
  const auto parsed = parse_prometheus(text);
  const auto samples = registry.samples();
  ASSERT_EQ(parsed.size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(parsed[i].name, samples[i].name) << "sample " << i;
    EXPECT_DOUBLE_EQ(parsed[i].value, samples[i].value) << "sample " << i;
  }
}

TEST_F(ObsMetricsTest, ParseSkipsCommentsAndRejectsMalformedLines) {
  std::istringstream good("# HELP x y\n# TYPE x counter\n\nx 4\n");
  const auto samples = parse_prometheus(good);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].name, "x");
  EXPECT_DOUBLE_EQ(samples[0].value, 4.0);

  std::istringstream no_value("just_a_name\n");
  EXPECT_THROW(parse_prometheus(no_value), std::invalid_argument);
  std::istringstream bad_value("x not-a-number\n");
  EXPECT_THROW(parse_prometheus(bad_value), std::invalid_argument);
}

TEST_F(ObsMetricsTest, ExportOrderIsSortedRegardlessOfRegistrationOrder) {
  Registry registry;
  // Deliberately register out of lexical order, interleaving label sets.
  registry.counter("zeta_total").inc(1);
  registry.gauge("alpha{slot=\"9\"}").set(9.0);
  registry.counter("mid_total{reason=\"b\"}").inc(2);
  registry.gauge("alpha{slot=\"2\"}").set(2.0);
  registry.counter("mid_total{reason=\"a\"}").inc(3);

  const auto samples = registry.samples();
  ASSERT_EQ(samples.size(), 5u);
  EXPECT_EQ(samples[0].name, "alpha{slot=\"2\"}");
  EXPECT_EQ(samples[1].name, "alpha{slot=\"9\"}");
  EXPECT_EQ(samples[2].name, "mid_total{reason=\"a\"}");
  EXPECT_EQ(samples[3].name, "mid_total{reason=\"b\"}");
  EXPECT_EQ(samples[4].name, "zeta_total");

  // The text exposition follows the same order, so families stay contiguous
  // (one HELP/TYPE header each) and scrapes diff cleanly.
  std::stringstream text;
  registry.write_prometheus(text);
  const auto parsed = parse_prometheus(text);
  ASSERT_EQ(parsed.size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(parsed[i].name, samples[i].name) << "sample " << i;
    EXPECT_DOUBLE_EQ(parsed[i].value, samples[i].value) << "sample " << i;
  }
}

TEST_F(ObsMetricsTest, HistogramBucketsStayInBoundOrderWithinSortedExport) {
  Registry registry;
  // A ladder whose lexical label order (le="10" < le="2" < le="+Inf" is
  // wrong two ways) differs from bound order; the sort is per-entry, so
  // buckets must keep cumulative bound order within the family.
  auto& histogram = registry.histogram("big_ms", "", {2.0, 10.0});
  histogram.observe(1.0);
  histogram.observe(5.0);
  const auto samples = registry.samples();
  ASSERT_EQ(samples.size(), 5u);
  EXPECT_EQ(samples[0].name, "big_ms_bucket{le=\"2\"}");
  EXPECT_EQ(samples[1].name, "big_ms_bucket{le=\"10\"}");
  EXPECT_EQ(samples[2].name, "big_ms_bucket{le=\"+Inf\"}");
}

TEST_F(ObsMetricsTest, ParseHandlesExponentsInfinityAndTimestamps) {
  std::istringstream in(
      "big_ms_bucket{le=\"1e+06\"} 2\n"
      "rate 1.5e-3\n"
      "ceiling +Inf\n"
      "stamped 4 1712345678901\n");
  const auto samples = parse_prometheus(in);
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples[0].name, "big_ms_bucket{le=\"1e+06\"}");
  EXPECT_DOUBLE_EQ(samples[0].value, 2.0);
  EXPECT_DOUBLE_EQ(samples[1].value, 1.5e-3);
  EXPECT_TRUE(std::isinf(samples[2].value));
  EXPECT_EQ(samples[3].name, "stamped");
  EXPECT_DOUBLE_EQ(samples[3].value, 4.0);
}

TEST_F(ObsMetricsTest, ParseHandlesEscapedLabelValues) {
  std::istringstream in(
      "odd{path=\"C:\\\\logs\",note=\"say \\\"hi\\\"\"} 1\n");
  const auto samples = parse_prometheus(in);
  ASSERT_EQ(samples.size(), 1u);
  // The name is kept verbatim (escapes intact) so it round-trips; the
  // crucial part is that the brace scan did not end at the quoted '}'-free
  // escapes or split on the quoted comma.
  EXPECT_EQ(samples[0].name, "odd{path=\"C:\\\\logs\",note=\"say \\\"hi\\\"\"}");
  EXPECT_DOUBLE_EQ(samples[0].value, 1.0);
}

TEST_F(ObsMetricsTest, ParseRejectsDuplicateAndTruncatedRows) {
  std::istringstream duplicate("x_total 1\nx_total 2\n");
  EXPECT_THROW(parse_prometheus(duplicate), std::invalid_argument);
  // Same family, different labels: not a duplicate.
  std::istringstream labeled("x_total{a=\"1\"} 1\nx_total{a=\"2\"} 2\n");
  EXPECT_EQ(parse_prometheus(labeled).size(), 2u);

  std::istringstream unterminated("bad{label=\"oops 1\n");
  EXPECT_THROW(parse_prometheus(unterminated), std::invalid_argument);
  std::istringstream dangling_escape("bad{label=\"oops\\\n");
  EXPECT_THROW(parse_prometheus(dangling_escape), std::invalid_argument);
  std::istringstream trailing_junk("x 1 2 3\n");
  EXPECT_THROW(parse_prometheus(trailing_junk), std::invalid_argument);
}

TEST_F(ObsMetricsTest, JsonHistogramTotalsAreSnapshotConsistent) {
  Registry registry;
  auto& histogram = registry.histogram("h_ms", "", {1.0, 10.0});
  histogram.observe(0.5);
  histogram.observe(5.0);
  histogram.observe(50.0);
  std::ostringstream out;
  registry.write_json(out);
  // The +Inf bucket and the count come from one bucket read, so the JSON
  // never shows count != sum-of-buckets even under concurrent writers.
  EXPECT_NE(out.str().find("\"count\": 3"), std::string::npos);
  EXPECT_NE(out.str().find("{\"le\": \"+Inf\", \"count\": 1}"), std::string::npos);
}

TEST_F(ObsMetricsTest, SamplesExpandHistogramsCumulatively) {
  Registry registry;
  auto& histogram = registry.histogram("h_ms", "", {1.0, 10.0});
  histogram.observe(0.5);
  histogram.observe(5.0);
  histogram.observe(50.0);
  const auto samples = registry.samples();
  ASSERT_EQ(samples.size(), 5u);  // 3 buckets + _sum + _count.
  EXPECT_EQ(samples[0].name, "h_ms_bucket{le=\"1\"}");
  EXPECT_DOUBLE_EQ(samples[0].value, 1.0);
  EXPECT_EQ(samples[1].name, "h_ms_bucket{le=\"10\"}");
  EXPECT_DOUBLE_EQ(samples[1].value, 2.0);
  EXPECT_EQ(samples[2].name, "h_ms_bucket{le=\"+Inf\"}");
  EXPECT_DOUBLE_EQ(samples[2].value, 3.0);
  EXPECT_EQ(samples[3].name, "h_ms_sum");
  EXPECT_EQ(samples[4].name, "h_ms_count");
  EXPECT_DOUBLE_EQ(samples[4].value, 3.0);
}

}  // namespace
}  // namespace autosens::obs
