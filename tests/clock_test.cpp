#include "telemetry/clock.h"

#include <gtest/gtest.h>

namespace autosens::telemetry {
namespace {

TEST(ClockTest, HourOfDay) {
  EXPECT_EQ(hour_of_day(0), 0);
  EXPECT_EQ(hour_of_day(kMillisPerHour - 1), 0);
  EXPECT_EQ(hour_of_day(kMillisPerHour), 1);
  EXPECT_EQ(hour_of_day(23 * kMillisPerHour + 59 * kMillisPerMinute), 23);
  EXPECT_EQ(hour_of_day(kMillisPerDay), 0);
  EXPECT_EQ(hour_of_day(5 * kMillisPerDay + 7 * kMillisPerHour), 7);
}

TEST(ClockTest, HourOfDayNegativeTimes) {
  // -1 ms is 23:59:59.999 of the previous day.
  EXPECT_EQ(hour_of_day(-1), 23);
  EXPECT_EQ(hour_of_day(-kMillisPerDay), 0);
}

TEST(ClockTest, DayIndex) {
  EXPECT_EQ(day_index(0), 0);
  EXPECT_EQ(day_index(kMillisPerDay - 1), 0);
  EXPECT_EQ(day_index(kMillisPerDay), 1);
  EXPECT_EQ(day_index(-1), -1);
}

TEST(ClockTest, DayOfWeekEpochIsThursday) {
  EXPECT_EQ(day_of_week(0), 0);                    // Thursday
  EXPECT_EQ(day_of_week(2 * kMillisPerDay), 2);    // Saturday
  EXPECT_EQ(day_of_week(7 * kMillisPerDay), 0);    // wraps
  EXPECT_EQ(day_of_week(9 * kMillisPerDay), 2);
}

TEST(ClockTest, HourSlot) {
  EXPECT_EQ(hour_slot(0), 0);
  EXPECT_EQ(hour_slot(kMillisPerHour), 1);
  EXPECT_EQ(hour_slot(kMillisPerDay), 24);
}

TEST(ClockTest, DayPeriodBoundaries) {
  EXPECT_EQ(day_period(8 * kMillisPerHour), DayPeriod::kMorning);
  EXPECT_EQ(day_period(13 * kMillisPerHour + 59 * kMillisPerMinute), DayPeriod::kMorning);
  EXPECT_EQ(day_period(14 * kMillisPerHour), DayPeriod::kAfternoon);
  EXPECT_EQ(day_period(19 * kMillisPerHour), DayPeriod::kAfternoon);
  EXPECT_EQ(day_period(20 * kMillisPerHour), DayPeriod::kEvening);
  EXPECT_EQ(day_period(23 * kMillisPerHour), DayPeriod::kEvening);
  EXPECT_EQ(day_period(0), DayPeriod::kEvening);  // midnight–2am belongs to 8pm–2am
  EXPECT_EQ(day_period(1 * kMillisPerHour), DayPeriod::kEvening);
  EXPECT_EQ(day_period(2 * kMillisPerHour), DayPeriod::kNight);
  EXPECT_EQ(day_period(7 * kMillisPerHour), DayPeriod::kNight);
}

TEST(ClockTest, DayPeriodNames) {
  EXPECT_EQ(to_string(DayPeriod::kMorning), "8am-2pm");
  EXPECT_EQ(to_string(DayPeriod::kAfternoon), "2pm-8pm");
  EXPECT_EQ(to_string(DayPeriod::kEvening), "8pm-2am");
  EXPECT_EQ(to_string(DayPeriod::kNight), "2am-8am");
}

TEST(ClockTest, MonthIndexUses30DayMonths) {
  EXPECT_EQ(month_index(0), 0);
  EXPECT_EQ(month_index(29 * kMillisPerDay), 0);
  EXPECT_EQ(month_index(30 * kMillisPerDay), 1);
  EXPECT_EQ(month_index(59 * kMillisPerDay), 1);
  EXPECT_EQ(month_index(60 * kMillisPerDay), 2);
}

/// Property: every millisecond belongs to exactly one period and periods
/// partition the day into four 6-hour spans.
class DayPeriodPartitionProperty : public ::testing::TestWithParam<int> {};

TEST_P(DayPeriodPartitionProperty, HourMapsToExpectedPeriod) {
  const int hour = GetParam();
  const auto period = day_period(hour * kMillisPerHour);
  if (hour >= 8 && hour < 14) {
    EXPECT_EQ(period, DayPeriod::kMorning);
  } else if (hour >= 14 && hour < 20) {
    EXPECT_EQ(period, DayPeriod::kAfternoon);
  } else if (hour >= 20 || hour < 2) {
    EXPECT_EQ(period, DayPeriod::kEvening);
  } else {
    EXPECT_EQ(period, DayPeriod::kNight);
  }
}

INSTANTIATE_TEST_SUITE_P(AllHours, DayPeriodPartitionProperty, ::testing::Range(0, 24));

}  // namespace
}  // namespace autosens::telemetry
