#include "stats/streaming_quantile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "stats/descriptive.h"
#include "stats/rng.h"

namespace autosens::stats {
namespace {

TEST(P2QuantileTest, Validation) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(-0.5), std::invalid_argument);
}

TEST(P2QuantileTest, EmptyThrows) {
  const P2Median median;
  EXPECT_THROW(median.value(), std::logic_error);
}

TEST(P2QuantileTest, ExactForSmallSamples) {
  P2Median median;
  median.add(5.0);
  EXPECT_DOUBLE_EQ(median.value(), 5.0);
  median.add(1.0);
  EXPECT_DOUBLE_EQ(median.value(), 3.0);
  median.add(9.0);
  EXPECT_DOUBLE_EQ(median.value(), 5.0);
  median.add(2.0);
  EXPECT_DOUBLE_EQ(median.value(), 3.5);
}

TEST(P2QuantileTest, MedianOfUniformStream) {
  Random random(1);
  P2Median median;
  for (int i = 0; i < 100'000; ++i) median.add(random.uniform());
  EXPECT_NEAR(median.value(), 0.5, 0.01);
  EXPECT_EQ(median.count(), 100'000u);
}

TEST(P2QuantileTest, TailQuantilesOfNormalStream) {
  Random random(2);
  P2Quantile p95(0.95);
  P2Quantile p05(0.05);
  for (int i = 0; i < 200'000; ++i) {
    const double v = random.normal();
    p95.add(v);
    p05.add(v);
  }
  EXPECT_NEAR(p95.value(), 1.6449, 0.05);
  EXPECT_NEAR(p05.value(), -1.6449, 0.05);
}

TEST(P2QuantileTest, MatchesExactQuantileOnLognormal) {
  // Latency-shaped (heavy-tailed) data: the case the library actually needs.
  Random random(3);
  std::vector<double> values;
  P2Median streaming;
  for (int i = 0; i < 50'000; ++i) {
    const double v = random.lognormal(5.8, 0.5);
    values.push_back(v);
    streaming.add(v);
  }
  const double exact = median(values);
  EXPECT_NEAR(streaming.value() / exact, 1.0, 0.02);
}

TEST(P2QuantileTest, SortedInputDoesNotBreakEstimate) {
  // Adversarial ordering (monotone stream).
  P2Median streaming;
  std::vector<double> values;
  for (int i = 0; i < 10'000; ++i) {
    streaming.add(i);
    values.push_back(i);
  }
  EXPECT_NEAR(streaming.value() / median(values), 1.0, 0.05);
}

TEST(P2QuantileTest, ConstantStream) {
  P2Median streaming;
  for (int i = 0; i < 1000; ++i) streaming.add(7.0);
  EXPECT_DOUBLE_EQ(streaming.value(), 7.0);
}

/// Property: P2 stays within a few percent of the exact quantile across q
/// values on i.i.d. data.
class P2AccuracyProperty : public ::testing::TestWithParam<double> {};

TEST_P(P2AccuracyProperty, TracksExactQuantile) {
  const double q = GetParam();
  Random random(100 + static_cast<std::uint64_t>(q * 1000));
  P2Quantile streaming(q);
  std::vector<double> values;
  for (int i = 0; i < 60'000; ++i) {
    const double v = random.exponential(0.01);
    streaming.add(v);
    values.push_back(v);
  }
  const double exact = quantile(values, q);
  EXPECT_NEAR(streaming.value() / exact, 1.0, 0.05) << "q=" << q;
}

INSTANTIATE_TEST_SUITE_P(Quantiles, P2AccuracyProperty,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9, 0.99));

}  // namespace
}  // namespace autosens::stats
