#include "stats/bootstrap.h"

#include <gtest/gtest.h>

#include <vector>

#include "stats/descriptive.h"

namespace autosens::stats {
namespace {

double sample_mean(std::span<const double> values) {
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

TEST(BootstrapIntervalTest, Validation) {
  Random random(1);
  const auto stat = [](std::span<const double> v) { return sample_mean(v); };
  EXPECT_THROW(bootstrap_interval({}, stat, 10, 0.95, random), std::invalid_argument);
  const std::vector<double> v = {1.0, 2.0};
  EXPECT_THROW(bootstrap_interval(v, stat, 0, 0.95, random), std::invalid_argument);
  EXPECT_THROW(bootstrap_interval(v, stat, 10, 0.0, random), std::invalid_argument);
  EXPECT_THROW(bootstrap_interval(v, stat, 10, 1.0, random), std::invalid_argument);
}

TEST(BootstrapIntervalTest, CoversTrueMeanOfNormalSample) {
  Random random(2);
  std::vector<double> sample(400);
  for (auto& v : sample) v = random.normal(10.0, 2.0);
  const auto interval = bootstrap_interval(
      sample, [](std::span<const double> v) { return sample_mean(v); }, 500, 0.99, random);
  EXPECT_TRUE(interval.contains(10.0))
      << "interval [" << interval.lo << ", " << interval.hi << "]";
  EXPECT_LT(interval.hi - interval.lo, 1.5);
}

TEST(BootstrapIntervalTest, IntervalWidensWithConfidence) {
  Random random(3);
  std::vector<double> sample(100);
  for (auto& v : sample) v = random.uniform();
  const auto stat = [](std::span<const double> v) { return sample_mean(v); };
  Random r1 = random.split();
  Random r2 = random.split();
  const auto narrow = bootstrap_interval(sample, stat, 400, 0.5, r1);
  const auto wide = bootstrap_interval(sample, stat, 400, 0.99, r2);
  EXPECT_LT(narrow.hi - narrow.lo, wide.hi - wide.lo);
}

TEST(BootstrapIntervalTest, DegenerateSampleGivesPointInterval) {
  Random random(4);
  const std::vector<double> sample(50, 7.0);
  const auto interval = bootstrap_interval(
      sample, [](std::span<const double> v) { return sample_mean(v); }, 100, 0.9, random);
  EXPECT_DOUBLE_EQ(interval.lo, 7.0);
  EXPECT_DOUBLE_EQ(interval.hi, 7.0);
}

TEST(BootstrapCurveTest, Validation) {
  Random random(5);
  const auto stat = [](std::span<const std::size_t>) { return std::vector<double>{1.0}; };
  EXPECT_THROW(bootstrap_curve_interval(0, stat, 10, 0.9, random), std::invalid_argument);
}

TEST(BootstrapCurveTest, RejectsVaryingLengths) {
  Random random(6);
  std::size_t call = 0;
  const auto stat = [&call](std::span<const std::size_t>) {
    return std::vector<double>(1 + (call++ % 2), 0.0);
  };
  EXPECT_THROW(bootstrap_curve_interval(5, stat, 10, 0.9, random), std::runtime_error);
}

TEST(BootstrapCurveTest, PerPointIntervalsCoverDeterministicCurve) {
  Random random(7);
  // Statistic ignores the resample: intervals must collapse to the curve.
  const std::vector<double> curve = {1.0, 2.0, 3.0};
  const auto intervals = bootstrap_curve_interval(
      10, [&curve](std::span<const std::size_t>) { return curve; }, 50, 0.9, random);
  ASSERT_EQ(intervals.size(), curve.size());
  for (std::size_t i = 0; i < curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(intervals[i].lo, curve[i]);
    EXPECT_DOUBLE_EQ(intervals[i].hi, curve[i]);
  }
}

TEST(BootstrapCurveTest, ResampledMeanCurveCoversTruth) {
  Random random(8);
  std::vector<double> data(300);
  for (auto& v : data) v = random.normal(5.0, 1.0);
  const auto stat = [&data](std::span<const std::size_t> idx) {
    double sum = 0.0;
    for (const auto i : idx) sum += data[i];
    return std::vector<double>{sum / static_cast<double>(idx.size())};
  };
  const auto intervals = bootstrap_curve_interval(data.size(), stat, 400, 0.99, random);
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_TRUE(intervals[0].contains(5.0));
}

TEST(IntervalTest, ContainsIsInclusive) {
  const Interval i{.lo = 1.0, .hi = 2.0};
  EXPECT_TRUE(i.contains(1.0));
  EXPECT_TRUE(i.contains(2.0));
  EXPECT_FALSE(i.contains(0.999));
  EXPECT_FALSE(i.contains(2.001));
}

}  // namespace
}  // namespace autosens::stats
