// Sharded-collector correctness against the poll-era oracle.
//
// The sharded epoll collector (net/collector.h) must be *observationally
// identical* to the preserved single-threaded PollCollector under every
// injected failure class, at every shard count: same Dataset bytes, all
// goodbyes credited. The spine's ordering contract makes this exact, not
// approximate — per-session frame order is preserved through any shard
// placement, and the Dataset is canonically time-sorted.
//
// Also covered here: the kEagainStorm class (edge-triggered loops that
// trust one EAGAIN as "drained" lose the edge — the shard's bounded re-poll
// list is the defense), read deadlines enforced by the event-loop timer
// against fully silent connections, and the shared-accept fallback
// (reuseport_accept = false: shard 0 deals fds round-robin).
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "net/collector.h"
#include "net/collector_poll.h"
#include "net/emitter.h"
#include "net/fault.h"
#include "net/wire.h"
#include "telemetry/binlog.h"
#include "telemetry/record.h"

namespace autosens::net {
namespace {

using telemetry::ActionRecord;

/// Records for emitter `t` of `emitters`, with globally unique time_ms
/// (striped across emitters) so the time-sorted Dataset has one
/// deterministic order regardless of arrival interleaving or shard
/// placement.
std::vector<ActionRecord> striped_records(std::size_t per_emitter, std::size_t emitters,
                                          std::size_t t) {
  std::vector<ActionRecord> records;
  records.reserve(per_emitter);
  for (std::size_t i = 0; i < per_emitter; ++i) {
    const auto k = i * emitters + t;
    records.push_back({.time_ms = static_cast<std::int64_t>(k + 1),
                       .user_id = 1 + k % 7,
                       .latency_ms = 1.0 + 0.01 * static_cast<double>(k % 1000),
                       .action = telemetry::ActionType::kSearch,
                       .user_class = telemetry::UserClass::kConsumer,
                       .status = telemetry::ActionStatus::kSuccess});
  }
  return records;
}

std::vector<std::uint8_t> dataset_bytes(const telemetry::Dataset& dataset) {
  std::vector<ActionRecord> records;
  records.reserve(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) records.push_back(dataset[i]);
  return telemetry::codec::encode_batch(records);
}

struct MatrixCase {
  const char* name;
  FaultSpec spec;
  bool collector_side = false;  ///< Inject on the collector's ingest path.
};

/// The same seven fault classes as net_fault_matrix_test, now pointed at
/// the sharded collector. kEagainStorm gets its own dedicated test below.
const MatrixCase kMatrix[] = {
    {"connect_refused",
     {.fault = FaultClass::kConnectRefused, .probability = 1.0, .max_injections = 2}},
    {"disconnect_mid_frame",
     {.fault = FaultClass::kDisconnect,
      .probability = 0.2,
      .skip_ops = 1,
      .max_injections = 6}},
    {"short_write", {.fault = FaultClass::kShortWrite, .probability = 0.5}},
    {"short_read",
     {.fault = FaultClass::kShortRead, .probability = 0.5},
     /*collector_side=*/true},
    {"eagain_stall", {.fault = FaultClass::kEagain, .probability = 0.4}},
    {"latency",
     {.fault = FaultClass::kLatency,
      .probability = 0.2,
      .max_injections = 3,
      .latency_ms = 1}},
    {"corrupt_frame",
     {.fault = FaultClass::kCorrupt,
      .probability = 0.1,
      .skip_ops = 1,
      .max_injections = 4}},
};

/// One sharded-collector pipeline run: `emitters` threads against a
/// Collector with `shards` ingest loops, optional fault injection on either
/// side. Returns the collected dataset.
telemetry::Dataset run_sharded(std::size_t shards, std::size_t emitters,
                               std::size_t per_emitter,
                               const std::optional<MatrixCase>& fault,
                               std::uint64_t seed_base) {
  std::unique_ptr<FaultySocketOps> collector_ops;
  CollectorOptions collector_options;
  collector_options.shards = shards;
  if (fault && fault->collector_side) {
    collector_ops = std::make_unique<FaultySocketOps>(
        FaultPlan(seed_base, {fault->spec}), real_socket_ops(), 0.0);
    collector_options.ops = collector_ops.get();
  }
  CollectorThread collector(emitters, collector_options, /*timeout_ms=*/10'000);

  std::vector<std::thread> threads;
  threads.reserve(emitters);
  for (std::size_t t = 0; t < emitters; ++t) {
    threads.emplace_back([&, t] {
      std::unique_ptr<FaultySocketOps> faulty;
      EmitterOptions options{
          .batch_size = 32,
          .retry = {.max_attempts = 10, .backoff_initial_ms = 1, .seed = seed_base + t},
          .on_give_up = EmitterOptions::GiveUp::kThrow,
      };
      if (fault && !fault->collector_side) {
        faulty = std::make_unique<FaultySocketOps>(
            FaultPlan(seed_base + 100 * (t + 1), {fault->spec}), real_socket_ops(), 0.0);
        options.ops = faulty.get();
      }
      Emitter emitter(collector.port(), options);
      for (const auto& r : striped_records(per_emitter, emitters, t)) emitter.record(r);
      emitter.close();
    });
  }
  for (auto& thread : threads) thread.join();
  auto dataset = collector.join();
  EXPECT_TRUE(collector.complete());
  return dataset;
}

/// The oracle: the preserved poll() collector on the identical clean
/// workload.
std::vector<std::uint8_t> oracle_bytes(std::size_t emitters, std::size_t per_emitter) {
  PollCollectorThread collector(emitters, CollectorOptions{}, /*timeout_ms=*/10'000);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < emitters; ++t) {
    threads.emplace_back([&, t] {
      Emitter emitter(collector.port(), {.batch_size = 32});
      for (const auto& r : striped_records(per_emitter, emitters, t)) emitter.record(r);
      emitter.close();
    });
  }
  for (auto& thread : threads) thread.join();
  auto dataset = collector.join();
  EXPECT_TRUE(collector.complete());
  return dataset_bytes(dataset);
}

TEST(NetShardTest, FaultMatrixByteIdenticalToPollOracleAcrossShardCounts) {
  constexpr std::size_t kPerEmitter = 240;
  constexpr std::size_t kEmitters = 4;
  const auto oracle = oracle_bytes(kEmitters, kPerEmitter);
  ASSERT_FALSE(oracle.empty());

  for (const std::size_t shards : {1u, 2u, 4u}) {
    SCOPED_TRACE(testing::Message() << "shards=" << shards);
    // Clean sharded run first: the refactor itself must be invisible.
    const auto clean =
        run_sharded(shards, kEmitters, kPerEmitter, std::nullopt, 0x5a4d);
    EXPECT_EQ(dataset_bytes(clean), oracle);

    for (const auto& matrix_case : kMatrix) {
      SCOPED_TRACE(matrix_case.name);
      const auto dataset =
          run_sharded(shards, kEmitters, kPerEmitter, matrix_case, 0x5a4d);
      EXPECT_EQ(dataset.size(), kEmitters * kPerEmitter);
      EXPECT_EQ(dataset_bytes(dataset), oracle)
          << "sharded recovery must be byte-identical to the poll oracle";
    }
  }
}

TEST(NetShardTest, EagainStormDoesNotLoseTheEdge) {
  // Bursts of consecutive injected EAGAINs from recv/epoll_wait while the
  // kernel still holds bytes: an edge-triggered loop that believes the
  // first EAGAIN would stall forever. The bounded retry list must keep
  // re-reading until real progress resumes — dataset still byte-identical.
  constexpr std::size_t kPerEmitter = 240;
  constexpr std::size_t kEmitters = 4;
  const auto oracle = oracle_bytes(kEmitters, kPerEmitter);

  for (const std::size_t shards : {1u, 2u, 4u}) {
    SCOPED_TRACE(testing::Message() << "shards=" << shards);
    const MatrixCase storm{
        "eagain_storm",
        {.fault = FaultClass::kEagainStorm, .probability = 0.25, .storm_len = 5},
        /*collector_side=*/true};
    const auto dataset = run_sharded(shards, kEmitters, kPerEmitter, storm, 0x570c);
    EXPECT_EQ(dataset.size(), kEmitters * kPerEmitter);
    EXPECT_EQ(dataset_bytes(dataset), oracle);
  }
}

TEST(NetShardTest, EventLoopTimerCutsFullySilentConnection) {
  // A connection that sends a hello + one data frame and then nothing —
  // ever — produces no read return for the deadline to piggyback on. Only
  // the event-loop timer can cut it. The frames delivered before the cut
  // stay in the dataset; the drop is classified as a deadline drop (not an
  // interrupted session — that classification is for clean EOFs), matching
  // the poll-era semantics.
  CollectorOptions options;
  options.shards = 2;
  options.read_deadline_ms = 100;
  Collector collector(options);

  const auto records = striped_records(8, 1, 0);
  const auto payload = telemetry::codec::encode_batch(records);
  auto silent = connect_tcp(collector.port());
  write_all(silent, encode_frame(make_hello(0x51137ULL)));
  write_all(silent, encode_frame(Frame{.type = FrameType::kData, .seq = 1, .payload = payload}));
  // Keep the fd open and silent; a parallel well-behaved emitter supplies
  // the goodbye that ends the serve loop after the deadline has passed.
  std::thread good([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    Emitter emitter(collector.port(), {.batch_size = 8});
    for (const auto& r : striped_records(8, 2, 1)) emitter.record(r);
    emitter.close();
  });
  const bool complete = collector.serve_until_goodbye(1, /*timeout_ms=*/10'000);
  good.join();

  EXPECT_TRUE(complete);
  const auto stats = collector.stats();
  EXPECT_EQ(stats.deadline_drops, 1u);
  EXPECT_EQ(stats.dropped_connections, 1u);
  EXPECT_EQ(stats.interrupted_connections, 0u);
  EXPECT_EQ(collector.dataset().size(), 16u)
      << "frames delivered before the deadline cut must be kept";
}

TEST(NetShardTest, SharedAcceptFallbackDealsConnectionsRoundRobin) {
  // reuseport_accept = false: shard 0 owns the only listener and hands
  // accepted fds round-robin across the fleet. Every shard must end up
  // owning connections, and the collected dataset is still exact.
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kEmitters = 8;
  constexpr std::size_t kPerEmitter = 120;

  CollectorOptions options;
  options.shards = kShards;
  options.reuseport_accept = false;
  Collector collector(options);

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kEmitters; ++t) {
    threads.emplace_back([&, t] {
      Emitter emitter(collector.port(), {.batch_size = 32});
      for (const auto& r : striped_records(kPerEmitter, kEmitters, t)) emitter.record(r);
      emitter.close();
    });
  }
  const bool complete = collector.serve_until_goodbye(kEmitters, /*timeout_ms=*/10'000);
  for (auto& thread : threads) thread.join();

  EXPECT_TRUE(complete);
  EXPECT_EQ(collector.dataset().size(), kEmitters * kPerEmitter);

  const auto shard_stats = collector.shard_stats();
  ASSERT_EQ(shard_stats.size(), kShards);
  std::size_t total_connections = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    SCOPED_TRACE(testing::Message() << "shard=" << s);
    // Round-robin dealing: 8 emitters over 4 shards = 2 each (emitters
    // connect once and never reconnect in this clean run).
    EXPECT_EQ(shard_stats[s].connections, kEmitters / kShards);
    total_connections += shard_stats[s].connections;
  }
  EXPECT_EQ(total_connections, kEmitters);
  EXPECT_EQ(collector.stats().connections, kEmitters);
}

TEST(NetShardTest, ReuseportShardsAccountAllConnections) {
  // Kernel accept sharding (the default): placement is the kernel's
  // 4-tuple hash, so per-shard counts are not asserted — only that every
  // connection is owned by exactly one shard and nothing is double-counted.
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kEmitters = 8;
  constexpr std::size_t kPerEmitter = 120;

  CollectorOptions options;
  options.shards = kShards;
  Collector collector(options);

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kEmitters; ++t) {
    threads.emplace_back([&, t] {
      Emitter emitter(collector.port(), {.batch_size = 32});
      for (const auto& r : striped_records(kPerEmitter, kEmitters, t)) emitter.record(r);
      emitter.close();
    });
  }
  const bool complete = collector.serve_until_goodbye(kEmitters, /*timeout_ms=*/10'000);
  for (auto& thread : threads) thread.join();

  EXPECT_TRUE(complete);
  EXPECT_EQ(collector.dataset().size(), kEmitters * kPerEmitter);
  const auto shard_stats = collector.shard_stats();
  ASSERT_EQ(shard_stats.size(), kShards);
  std::size_t total_connections = 0;
  for (const auto& s : shard_stats) total_connections += s.connections;
  EXPECT_EQ(total_connections, kEmitters);
}

}  // namespace
}  // namespace autosens::net
