// The fault matrix: every injectable failure class, crossed with 1/2/8
// concurrent emitter threads, must leave the collected Dataset byte-identical
// to a no-fault run — the paper's pipeline treats telemetry loss as bias
// (PAPER.md §3), so recovery has to be exact, not approximate. When retries
// are exhausted instead, the loss must be *declared*: the emitters'
// dropped-record counters account for every missing record exactly.
//
// Determinism: every fault schedule is a FaultPlan seeded per emitter;
// backoff sleeps are compressed to zero wall clock (sleep_scale = 0), so the
// matrix runs fast and identically every time.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "net/collector.h"
#include "net/emitter.h"
#include "net/fault.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "telemetry/binlog.h"
#include "telemetry/record.h"

namespace autosens::net {
namespace {

using telemetry::ActionRecord;

/// Records for emitter `t` of `emitters`, with globally unique time_ms
/// (striped across emitters) so the time-sorted Dataset has one
/// deterministic order regardless of arrival interleaving.
std::vector<ActionRecord> striped_records(std::size_t per_emitter, std::size_t emitters,
                                          std::size_t t) {
  std::vector<ActionRecord> records;
  records.reserve(per_emitter);
  for (std::size_t i = 0; i < per_emitter; ++i) {
    const auto k = i * emitters + t;
    records.push_back({.time_ms = static_cast<std::int64_t>(k + 1),
                       .user_id = 1 + k % 7,
                       .latency_ms = 1.0 + 0.01 * static_cast<double>(k % 1000),
                       .action = telemetry::ActionType::kSearch,
                       .user_class = telemetry::UserClass::kConsumer,
                       .status = telemetry::ActionStatus::kSuccess});
  }
  return records;
}

std::vector<std::uint8_t> dataset_bytes(const telemetry::Dataset& dataset) {
  std::vector<ActionRecord> records;
  records.reserve(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) records.push_back(dataset[i]);
  return telemetry::codec::encode_batch(records);
}

struct MatrixCase {
  const char* name;
  FaultSpec spec;
  bool collector_side = false;  ///< Inject on the collector's recv path.
};

/// One full pipeline run: `emitters` threads, each shipping `per_emitter`
/// striped records through its own seeded FaultySocketOps (or a clean one
/// when `spec` is empty). Returns the collected dataset.
telemetry::Dataset run_pipeline(std::size_t emitters, std::size_t per_emitter,
                                const std::optional<MatrixCase>& fault,
                                std::uint64_t seed_base) {
  std::unique_ptr<FaultySocketOps> collector_ops;
  CollectorOptions collector_options;
  if (fault && fault->collector_side) {
    collector_ops = std::make_unique<FaultySocketOps>(
        FaultPlan(seed_base, {fault->spec}), real_socket_ops(), 0.0);
    collector_options.ops = collector_ops.get();
  }
  CollectorThread collector(emitters, collector_options, /*timeout_ms=*/10'000);

  std::vector<std::thread> threads;
  threads.reserve(emitters);
  for (std::size_t t = 0; t < emitters; ++t) {
    threads.emplace_back([&, t] {
      std::unique_ptr<FaultySocketOps> faulty;
      EmitterOptions options{
          .batch_size = 32,
          .retry = {.max_attempts = 10, .backoff_initial_ms = 1, .seed = seed_base + t},
          .on_give_up = EmitterOptions::GiveUp::kThrow,
      };
      if (fault && !fault->collector_side) {
        faulty = std::make_unique<FaultySocketOps>(
            FaultPlan(seed_base + 100 * (t + 1), {fault->spec}), real_socket_ops(), 0.0);
        options.ops = faulty.get();
      }
      Emitter emitter(collector.port(), options);
      for (const auto& r : striped_records(per_emitter, emitters, t)) emitter.record(r);
      emitter.close();
    });
  }
  for (auto& thread : threads) thread.join();
  auto dataset = collector.join();
  EXPECT_TRUE(collector.complete());
  return dataset;
}

const MatrixCase kMatrix[] = {
    {"connect_refused",
     {.fault = FaultClass::kConnectRefused, .probability = 1.0, .max_injections = 2}},
    {"disconnect_mid_frame",
     {.fault = FaultClass::kDisconnect,
      .probability = 0.2,
      .skip_ops = 1,
      .max_injections = 6}},
    {"short_write", {.fault = FaultClass::kShortWrite, .probability = 0.5}},
    {"short_read",
     {.fault = FaultClass::kShortRead, .probability = 0.5},
     /*collector_side=*/true},
    {"eagain_stall", {.fault = FaultClass::kEagain, .probability = 0.4}},
    {"latency",
     {.fault = FaultClass::kLatency,
      .probability = 0.2,
      .max_injections = 3,
      .latency_ms = 1}},
    {"corrupt_frame",
     {.fault = FaultClass::kCorrupt,
      .probability = 0.1,
      .skip_ops = 1,
      .max_injections = 4}},
};

TEST(NetFaultMatrixTest, EveryFaultClassRecoversByteIdentical) {
  constexpr std::size_t kPerEmitter = 240;
  for (const std::size_t emitters : {1u, 2u, 8u}) {
    SCOPED_TRACE(testing::Message() << "emitters=" << emitters);
    const auto baseline =
        dataset_bytes(run_pipeline(emitters, kPerEmitter, std::nullopt, 0x5eed0));
    ASSERT_FALSE(baseline.empty());
    for (const auto& matrix_case : kMatrix) {
      SCOPED_TRACE(matrix_case.name);
      const auto dataset = run_pipeline(emitters, kPerEmitter, matrix_case, 0x5eed0);
      EXPECT_EQ(dataset.size(), emitters * kPerEmitter);
      EXPECT_EQ(dataset_bytes(dataset), baseline)
          << "recovered dataset must be byte-identical to the fault-free run";
    }
  }
}

TEST(NetFaultMatrixTest, ExhaustedRetriesAccountLossExactly) {
  // Retries all but disabled, kDropFrame: the run degrades instead of
  // throwing, and emitters declare every lost record.
  constexpr std::size_t kPerEmitter = 200;
  for (const std::size_t emitters : {1u, 2u}) {
    SCOPED_TRACE(testing::Message() << "emitters=" << emitters);
    CollectorThread collector(emitters, CollectorOptions{}, /*timeout_ms=*/5'000);
    std::vector<std::size_t> dropped(emitters, 0);
    std::vector<std::size_t> delivered(emitters, 0);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < emitters; ++t) {
      threads.emplace_back([&, t] {
        FaultySocketOps faulty(
            FaultPlan(0xdead + t, {{.fault = FaultClass::kDisconnect,
                                    .probability = 1.0,
                                    .skip_ops = 1,
                                    .max_injections = 6}}),
            real_socket_ops(), 0.0);
        Emitter emitter(collector.port(),
                        {.batch_size = 16,
                         .retry = {.max_attempts = 2, .backoff_initial_ms = 1, .seed = t},
                         .on_give_up = EmitterOptions::GiveUp::kDropFrame,
                         .ops = &faulty});
        for (const auto& r : striped_records(kPerEmitter, emitters, t)) emitter.record(r);
        emitter.close();
        dropped[t] = emitter.dropped_records();
        delivered[t] = emitter.sent_records();
      });
    }
    for (auto& thread : threads) thread.join();
    const auto dataset = collector.join();

    std::size_t total_dropped = 0;
    std::size_t total_delivered = 0;
    for (std::size_t t = 0; t < emitters; ++t) {
      EXPECT_GT(dropped[t], 0u) << "emitter " << t << " should have exhausted retries";
      total_dropped += dropped[t];
      total_delivered += delivered[t];
    }
    // The degradation contract: collected + declared-lost == offered, per
    // record, with nothing double-counted (dedup) and nothing silent.
    EXPECT_EQ(dataset.size(), total_delivered);
    EXPECT_EQ(emitters * kPerEmitter - dataset.size(), total_dropped);
  }
}

TEST(NetFaultMatrixTest, TraceContextKeepsRecoveryByteIdenticalAndExportsGapMetrics) {
  // The wire trace extension (span-id frames, 24-byte hellos) must be
  // invisible to recovery: with tracing ON, every fault class still yields a
  // dataset byte-identical to the fault-free tracing-OFF baseline. Along the
  // way the gap metrics the introspection plane exposes must move.
  constexpr std::size_t kPerEmitter = 240;
  constexpr std::size_t kEmitters = 2;
  const auto baseline =
      dataset_bytes(run_pipeline(kEmitters, kPerEmitter, std::nullopt, 0x7ace));

  obs::set_enabled(true);
  obs::Tracer::global().set_enabled(true);
  auto& dedup_hits = obs::registry().counter("autosens_net_dedup_hits_total");
  auto& resync_bytes = obs::registry().counter("autosens_net_resync_bytes_total");
  auto& sessions_active = obs::registry().gauge("autosens_net_sessions_active");
  const auto dedup_before = dedup_hits.value();
  const auto resync_before = resync_bytes.value();

  for (const auto& matrix_case : kMatrix) {
    SCOPED_TRACE(matrix_case.name);
    const auto dataset = run_pipeline(kEmitters, kPerEmitter, matrix_case, 0x7ace);
    EXPECT_EQ(dataset_bytes(dataset), baseline)
        << "trace context on the wire must not perturb recovery";
  }

  // corrupt_frame leaves garbage on the stream: the resync counter must
  // have moved. Every session said goodbye, so none stays active.
  EXPECT_GT(resync_bytes.value(), resync_before);
  EXPECT_DOUBLE_EQ(sessions_active.value(), 0.0);

  // Torn frames never complete, so emitter-side faults alone cannot produce
  // a duplicate at the decoder. Drive the dedup metric with the exact
  // double-delivery it guards against: a frame fully delivered on one
  // connection, then retransmitted verbatim after a reconnect by an emitter
  // that could not know it had arrived.
  {
    const auto records = striped_records(4, 1, 0);
    const std::vector<ActionRecord> first(records.begin(), records.begin() + 2);
    const std::vector<ActionRecord> second(records.begin() + 2, records.end());
    constexpr std::uint64_t kSession = 0xd0dec;
    const auto frame1 = encode_frame(Frame{.type = FrameType::kData,
                                           .seq = 1,
                                           .payload = telemetry::codec::encode_batch(first)});
    const auto frame2 = encode_frame(Frame{.type = FrameType::kData,
                                           .seq = 2,
                                           .payload = telemetry::codec::encode_batch(second)});
    const auto goodbye =
        encode_frame(Frame{.type = FrameType::kGoodbye, .seq = 3, .payload = {}});
    CollectorThread collector(1, CollectorOptions{}, /*timeout_ms=*/5'000);
    {
      auto connection = connect_tcp(collector.port());
      write_all(connection, encode_frame(make_hello(kSession)));
      write_all(connection, frame1);
    }  // dies without goodbye: the sender never learns frame1 landed.
    {
      auto connection = connect_tcp(collector.port());
      write_all(connection, encode_frame(make_hello(kSession)));
      write_all(connection, frame1);  // retransmit — already delivered
      write_all(connection, frame2);
      write_all(connection, goodbye);
    }
    const auto dataset = collector.join();
    EXPECT_EQ(dataset.size(), records.size()) << "dedup must drop the duplicate";
    EXPECT_EQ(collector.stats().duplicate_frames, 1u);
  }
  EXPECT_EQ(dedup_hits.value(), dedup_before + 1);

  obs::Tracer::global().set_enabled(false);
  obs::Tracer::global().clear();
  obs::Tracer::global().set_trace_id(0);
  obs::set_enabled(false);
}

TEST(NetFaultMatrixTest, SoakCombinedFaults) {
  // Opt-in soak (ctest -L slow / AUTOSENS_SOAK=1): a longer run with several
  // fault classes active at once per emitter.
  if (std::getenv("AUTOSENS_SOAK") == nullptr) {
    GTEST_SKIP() << "set AUTOSENS_SOAK=1 to run the soak fault matrix";
  }
  constexpr std::size_t kPerEmitter = 4000;
  constexpr std::size_t kEmitters = 4;
  const auto baseline =
      dataset_bytes(run_pipeline(kEmitters, kPerEmitter, std::nullopt, 0x50a4));

  CollectorThread collector(kEmitters, CollectorOptions{}, /*timeout_ms=*/30'000);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kEmitters; ++t) {
    threads.emplace_back([&, t] {
      FaultySocketOps faulty(
          FaultPlan(0x50a4 + 31 * t,
                    {{.fault = FaultClass::kDisconnect,
                      .probability = 0.02,
                      .skip_ops = 1,
                      .max_injections = 20},
                     {.fault = FaultClass::kEagain, .probability = 0.2},
                     {.fault = FaultClass::kShortWrite, .probability = 0.3},
                     {.fault = FaultClass::kCorrupt,
                      .probability = 0.01,
                      .skip_ops = 1,
                      .max_injections = 10}}),
          real_socket_ops(), 0.0);
      Emitter emitter(collector.port(),
                      {.batch_size = 64,
                       .retry = {.max_attempts = 12, .backoff_initial_ms = 1, .seed = t},
                       .on_give_up = EmitterOptions::GiveUp::kThrow,
                       .ops = &faulty});
      for (const auto& r : striped_records(kPerEmitter, kEmitters, t)) emitter.record(r);
      emitter.close();
    });
  }
  for (auto& thread : threads) thread.join();
  const auto dataset = collector.join();
  EXPECT_TRUE(collector.complete());
  EXPECT_EQ(dataset_bytes(dataset), baseline);
}

}  // namespace
}  // namespace autosens::net
