// Opt-in soak proving the out-of-core contract end to end: build an ASL3
// store whose raw footprint is at least 10× an RSS budget, stream the
// windowed analysis over the whole range, and assert the process peak RSS
// (VmHWM, via RuntimeSampler::peak_rss_bytes) stayed inside the budget.
// Gated on AUTOSENS_SOAK=1 like the net fault-matrix soak; the budget is
// tunable through AUTOSENS_STORE_SOAK_BUDGET_MB (default 512).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "core/store_analyze.h"
#include "obs/sampler.h"
#include "telemetry/clock.h"
#include "telemetry/record.h"
#include "telemetry/store/store.h"
#include "telemetry/store/writer.h"

namespace autosens {
namespace {

using telemetry::kMillisPerDay;

bool soak_enabled() {
  const char* value = std::getenv("AUTOSENS_SOAK");
  return value != nullptr && std::string_view(value) == "1";
}

std::uint64_t budget_mb_from_env() {
  if (const char* value = std::getenv("AUTOSENS_STORE_SOAK_BUDGET_MB")) {
    const std::uint64_t parsed = std::strtoull(value, nullptr, 10);
    if (parsed > 0) return parsed;
  }
  return 512;
}

TEST(StoreSoakTest, BoundedRssOverTenfoldBudget) {
  if (!soak_enabled()) GTEST_SKIP() << "set AUTOSENS_SOAK=1 to run the store soak";
  const std::uint64_t baseline = obs::RuntimeSampler::peak_rss_bytes();
  if (baseline == 0) GTEST_SKIP() << "VmHWM not available on this platform";

  std::uint64_t budget = budget_mb_from_env() << 20;
  if (baseline > budget / 2) {
    // The runtime already ate most of the budget before any store work
    // (sanitizer builds, generous allocators). Rebase so the bound still
    // measures the streaming path, and say so.
    budget = baseline * 4;
    std::fprintf(stderr, "store_soak: baseline peak RSS %.1f MiB, raising budget to %.1f MiB\n",
                 static_cast<double>(baseline) / 1048576.0,
                 static_cast<double>(budget) / 1048576.0);
  }

  // Size the dataset off the final budget: raw bytes >= 10x budget.
  const std::uint64_t target_raw = 10 * budget;
  const std::uint64_t total_rows =
      (target_raw + telemetry::store::kRowBytes - 1) / telemetry::store::kRowBytes;

  const auto dir = std::filesystem::path(::testing::TempDir()) / "store_soak";
  std::filesystem::remove_all(dir);

  // Synthetic arithmetic rows (the simulator is far too slow at this scale):
  // one record every 100 ms, ~864k rows/day, appended in 1M-row batches so
  // the generator itself stays O(batch).
  constexpr std::int64_t kGapMs = 100;
  constexpr std::size_t kBatch = std::size_t{1} << 20;
  {
    telemetry::store::StoreWriter writer(dir);
    std::vector<std::int64_t> times(kBatch);
    std::vector<double> latencies(kBatch);
    std::vector<std::uint64_t> users(kBatch);
    std::vector<telemetry::ActionType> actions(kBatch);
    std::vector<telemetry::UserClass> classes(kBatch);
    std::vector<telemetry::ActionStatus> statuses(kBatch);
    std::uint64_t row = 0;
    while (row < total_rows) {
      const std::size_t count = std::min<std::uint64_t>(kBatch, total_rows - row);
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t r = row + i;
        times[i] = static_cast<std::int64_t>(r) * kGapMs;
        latencies[i] = 100.0 + static_cast<double>((r * 97) % 2400);
        users[i] = r % 100'000;
        actions[i] = static_cast<telemetry::ActionType>(r % telemetry::kActionTypeCount);
        classes[i] = static_cast<telemetry::UserClass>(r % telemetry::kUserClassCount);
        statuses[i] = telemetry::ActionStatus::kSuccess;
      }
      writer.append_columns({times.data(), count}, {latencies.data(), count},
                            {users.data(), count}, {actions.data(), count},
                            {classes.data(), count}, {statuses.data(), count});
      row += count;
    }
    writer.finish();
  }

  const auto store = telemetry::store::StoredDataset::open(dir.string());
  ASSERT_EQ(store.rows(), total_rows);
  ASSERT_GE(store.raw_bytes(), target_raw);
  std::fprintf(stderr, "store_soak: %llu rows, %.1f GiB raw, %.1f GiB stored, %zu partitions\n",
               static_cast<unsigned long long>(store.rows()),
               static_cast<double>(store.raw_bytes()) / (1024.0 * 1024.0 * 1024.0),
               static_cast<double>(store.stored_bytes()) / (1024.0 * 1024.0 * 1024.0),
               store.partitions().size());

  core::AutoSensOptions options;
  options.threads = 1;
  core::StoreStreamOptions stream;
  stream.window_ms = 3 * kMillisPerDay;
  stream.scrub = false;  // Rows are synthetic and already clean.

  std::uint64_t analyzed_rows = 0;
  std::size_t windows = 0;
  std::size_t windows_with_curve = 0;
  core::analyze_store_windows(store, options, stream, [&](const core::StoreWindowResult& w) {
    analyzed_rows += w.records;
    ++windows;
    if (w.preference.has_value()) ++windows_with_curve;
  });
  EXPECT_EQ(analyzed_rows, total_rows);
  EXPECT_GT(windows, 1u);
  EXPECT_EQ(windows_with_curve, windows);

  const std::uint64_t peak = obs::RuntimeSampler::peak_rss_bytes();
  std::fprintf(stderr, "store_soak: peak RSS %.1f MiB (budget %.1f MiB, raw %.1fx budget)\n",
               static_cast<double>(peak) / 1048576.0, static_cast<double>(budget) / 1048576.0,
               static_cast<double>(store.raw_bytes()) / static_cast<double>(budget));
  EXPECT_LE(peak, budget) << "windowed analysis exceeded the RSS budget";

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace autosens
