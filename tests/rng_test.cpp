#include "stats/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace autosens::stats {
namespace {

TEST(SplitMix64Test, IsDeterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64Test, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256Test, IsDeterministic) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256Test, JumpChangesStream) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  b.jump();
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) any_diff |= (a() != b());
  EXPECT_TRUE(any_diff);
}

TEST(Xoshiro256Test, SplitStreamsAreDistinct) {
  Xoshiro256 parent(9);
  Xoshiro256 child1 = parent.split();
  Xoshiro256 child2 = parent.split();
  EXPECT_NE(child1(), child2());
}

TEST(RandomTest, UniformInUnitInterval) {
  Random random(11);
  for (int i = 0; i < 10'000; ++i) {
    const double u = random.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RandomTest, UniformMeanIsHalf) {
  Random random(12);
  double sum = 0.0;
  constexpr int kSamples = 100'000;
  for (int i = 0; i < kSamples; ++i) sum += random.uniform();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(RandomTest, UniformRangeRespectsBounds) {
  Random random(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = random.uniform(-5.0, 5.0);
    EXPECT_GE(v, -5.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RandomTest, UniformIndexCoversAllValues) {
  Random random(14);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 7000; ++i) ++counts[random.uniform_index(7)];
  for (const int c : counts) EXPECT_GT(c, 700);  // each ~1000 expected
}

TEST(RandomTest, NormalMomentsMatch) {
  Random random(15);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kSamples = 200'000;
  for (int i = 0; i < kSamples; ++i) {
    const double v = random.normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kSamples, 1.0, 0.02);
}

TEST(RandomTest, NormalShiftScale) {
  Random random(16);
  double sum = 0.0;
  constexpr int kSamples = 50'000;
  for (int i = 0; i < kSamples; ++i) sum += random.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kSamples, 10.0, 0.1);
}

TEST(RandomTest, LognormalMedianIsExpMu) {
  Random random(17);
  std::vector<double> samples;
  for (int i = 0; i < 50'000; ++i) samples.push_back(random.lognormal(2.0, 0.5));
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2, samples.end());
  EXPECT_NEAR(samples[samples.size() / 2], std::exp(2.0), 0.2);
}

TEST(RandomTest, ExponentialMeanIsInverseRate) {
  Random random(18);
  double sum = 0.0;
  constexpr int kSamples = 100'000;
  for (int i = 0; i < kSamples; ++i) sum += random.exponential(4.0);
  EXPECT_NEAR(sum / kSamples, 0.25, 0.01);
}

TEST(RandomTest, ExponentialIsPositive) {
  Random random(19);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(random.exponential(0.001), 0.0);
}

TEST(RandomTest, PoissonSmallMean) {
  Random random(20);
  double sum = 0.0;
  constexpr int kSamples = 50'000;
  for (int i = 0; i < kSamples; ++i) sum += static_cast<double>(random.poisson(3.5));
  EXPECT_NEAR(sum / kSamples, 3.5, 0.1);
}

TEST(RandomTest, PoissonLargeMeanUsesApproximation) {
  Random random(21);
  double sum = 0.0;
  constexpr int kSamples = 20'000;
  for (int i = 0; i < kSamples; ++i) sum += static_cast<double>(random.poisson(200.0));
  EXPECT_NEAR(sum / kSamples, 200.0, 2.0);
}

TEST(RandomTest, PoissonZeroMeanIsZero) {
  Random random(22);
  EXPECT_EQ(random.poisson(0.0), 0u);
  EXPECT_EQ(random.poisson(-1.0), 0u);
}

TEST(RandomTest, BernoulliExtremes) {
  Random random(23);
  EXPECT_FALSE(random.bernoulli(0.0));
  EXPECT_TRUE(random.bernoulli(1.0));
}

TEST(RandomTest, BernoulliFrequency) {
  Random random(24);
  int hits = 0;
  constexpr int kSamples = 100'000;
  for (int i = 0; i < kSamples; ++i) hits += random.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(RandomTest, ShufflePreservesElements) {
  Random random(25);
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  auto shuffled = values;
  random.shuffle(std::span<int>(shuffled));
  EXPECT_NE(shuffled, values);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RandomTest, ShuffleHandlesDegenerateSizes) {
  Random random(26);
  std::vector<int> empty;
  random.shuffle(std::span<int>(empty));
  std::vector<int> one = {42};
  random.shuffle(std::span<int>(one));
  EXPECT_EQ(one[0], 42);
}

TEST(RandomTest, SplitProducesIndependentStream) {
  Random parent(27);
  Random child = parent.split();
  // Child and parent should not generate the same sequence.
  bool any_diff = false;
  for (int i = 0; i < 8; ++i) any_diff |= (parent.uniform() != child.uniform());
  EXPECT_TRUE(any_diff);
}

/// Property: uniform_index(n) is unbiased across a range of n values.
class UniformIndexProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UniformIndexProperty, ChiSquareWithinBounds) {
  const std::uint64_t n = GetParam();
  Random random(1000 + n);
  const int draws_per_bucket = 200;
  const auto draws = static_cast<int>(n) * draws_per_bucket;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < draws; ++i) ++counts[random.uniform_index(n)];
  double chi2 = 0.0;
  for (const int c : counts) {
    const double d = c - draws_per_bucket;
    chi2 += d * d / draws_per_bucket;
  }
  // Very loose bound: chi2 ~ n - 1, allow 3x.
  EXPECT_LT(chi2, 3.0 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, UniformIndexProperty,
                         ::testing::Values(2, 3, 5, 10, 17, 64, 100));

}  // namespace
}  // namespace autosens::stats
