#include "simulate/population.h"

#include <gtest/gtest.h>

#include <set>

#include "stats/descriptive.h"

namespace autosens::simulate {
namespace {

Population make_population(PopulationOptions options, std::uint64_t seed = 1) {
  stats::Random random(seed);
  return Population(options, random);
}

TEST(PopulationTest, Validation) {
  stats::Random random(1);
  EXPECT_THROW(Population({.user_count = 0}, random), std::invalid_argument);
  EXPECT_THROW(Population({.business_fraction = 1.5}, random), std::invalid_argument);
  EXPECT_THROW(Population({.business_fraction = -0.1}, random), std::invalid_argument);
}

TEST(PopulationTest, UserIdsAreUniqueAndNonZero) {
  const auto pop = make_population({.user_count = 500});
  std::set<std::uint64_t> ids;
  for (const auto& user : pop.users()) {
    EXPECT_GT(user.id, 0u);
    ids.insert(user.id);
  }
  EXPECT_EQ(ids.size(), pop.size());
}

TEST(PopulationTest, BusinessFractionApproximatelyHonored) {
  const auto pop = make_population({.user_count = 5000, .business_fraction = 0.3});
  std::size_t business = 0;
  for (const auto& user : pop.users()) {
    if (user.user_class == telemetry::UserClass::kBusiness) ++business;
  }
  EXPECT_NEAR(static_cast<double>(business) / 5000.0, 0.3, 0.03);
}

TEST(PopulationTest, AllBusinessOrAllConsumerExtremes) {
  const auto all_business = make_population({.user_count = 50, .business_fraction = 1.0});
  for (const auto& user : all_business.users()) {
    EXPECT_EQ(user.user_class, telemetry::UserClass::kBusiness);
  }
  const auto all_consumer = make_population({.user_count = 50, .business_fraction = 0.0});
  for (const auto& user : all_consumer.users()) {
    EXPECT_EQ(user.user_class, telemetry::UserClass::kConsumer);
  }
}

TEST(PopulationTest, OffsetsMatchSigma) {
  const auto pop = make_population({.user_count = 5000, .offset_sigma = 0.2});
  stats::RunningStats stats;
  for (const auto& user : pop.users()) stats.add(user.latency_offset);
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 0.2, 0.02);
}

TEST(PopulationTest, PercentilesAreExactRanks) {
  const auto pop = make_population({.user_count = 101});
  // Percentiles must be the exact rank/(n-1) grid: uniform on [0,1].
  std::vector<double> percentiles;
  for (const auto& user : pop.users()) percentiles.push_back(user.speed_percentile);
  std::sort(percentiles.begin(), percentiles.end());
  for (std::size_t i = 0; i < percentiles.size(); ++i) {
    EXPECT_NEAR(percentiles[i], static_cast<double>(i) / 100.0, 1e-12);
  }
}

TEST(PopulationTest, PercentileOrderMatchesOffsetOrder) {
  const auto pop = make_population({.user_count = 200});
  for (const auto& a : pop.users()) {
    for (const auto& b : pop.users()) {
      if (a.latency_offset < b.latency_offset) {
        EXPECT_LT(a.speed_percentile, b.speed_percentile);
      }
    }
  }
}

TEST(PopulationTest, SingleUserPercentileIsZero) {
  const auto pop = make_population({.user_count = 1});
  EXPECT_DOUBLE_EQ(pop.users()[0].speed_percentile, 0.0);
}

TEST(PopulationTest, ActivityScalesArePositive) {
  const auto pop = make_population({.user_count = 1000});
  for (const auto& user : pop.users()) EXPECT_GT(user.activity_scale, 0.0);
}

TEST(PopulationTest, MeanPercentileNearHalfPerClass) {
  const auto pop = make_population({.user_count = 4000});
  EXPECT_NEAR(pop.mean_percentile(telemetry::UserClass::kBusiness), 0.5, 0.03);
  EXPECT_NEAR(pop.mean_percentile(telemetry::UserClass::kConsumer), 0.5, 0.03);
}

TEST(PopulationTest, DeterministicForFixedSeed) {
  const auto a = make_population({.user_count = 100}, 42);
  const auto b = make_population({.user_count = 100}, 42);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.users()[i].id, b.users()[i].id);
    EXPECT_DOUBLE_EQ(a.users()[i].latency_offset, b.users()[i].latency_offset);
  }
}

}  // namespace
}  // namespace autosens::simulate
