// Tests for the parallel zero-copy ingest engine: parser parity between the
// chunked and scalar paths, determinism across thread counts, text
// normalization (BOM / CRLF / missing trailing newline), the mmap fallback
// for non-regular files, and the bulk column APIs the engine feeds.
#include "telemetry/ingest.h"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "stats/rng.h"
#include "telemetry/binlog.h"
#include "telemetry/csv.h"
#include "telemetry/jsonl.h"
#include "telemetry/logdir.h"

namespace autosens::telemetry {
namespace {

void expect_same_dataset(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "record " << i << " differs";
  }
}

void expect_same_errors(const std::vector<IngestError>& a, const std::vector<IngestError>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].line, b[i].line) << "error " << i;
    EXPECT_EQ(a[i].message, b[i].message) << "error " << i;
  }
}

/// A random mix of valid rows, malformed rows of several shapes, blank
/// lines, and CRLF terminators — the property-test corpus.
std::string random_csv(std::size_t lines, std::uint64_t seed, bool trailing_newline) {
  stats::Random random(seed);
  std::string text = std::string(kCsvHeader) + "\n";
  std::int64_t t = 1'000'000;
  for (std::size_t i = 0; i < lines; ++i) {
    t += static_cast<std::int64_t>(random.uniform_index(5000));
    const std::size_t kind = random.uniform_index(10);
    if (kind == 0) {
      // blank / whitespace-only
      text += random.bernoulli(0.5) ? "" : "   ";
    } else if (kind == 1) {
      text += "not,enough,fields";
    } else if (kind == 2) {
      text += std::to_string(t) + ",abc,SelectMail,10.5,Business,Success";
    } else if (kind == 3) {
      text += std::to_string(t) + ",7,NoSuchAction,10.5,Business,Success";
    } else {
      text += std::to_string(t) + "," + std::to_string(random.uniform_index(100)) +
              ",SelectMail," + std::to_string(50 + random.uniform_index(900)) +
              (random.bernoulli(0.5) ? ".25" : ".5") +
              (random.bernoulli(0.5) ? ",Business," : ",Consumer,") +
              (random.bernoulli(0.9) ? "Success" : "Error");
    }
    if (i + 1 < lines || trailing_newline) {
      text += random.bernoulli(0.3) ? "\r\n" : "\n";
    }
  }
  return text;
}

std::string random_jsonl(std::size_t lines, std::uint64_t seed, bool trailing_newline) {
  stats::Random random(seed);
  std::string text;
  std::int64_t t = 1'000'000;
  for (std::size_t i = 0; i < lines; ++i) {
    t += static_cast<std::int64_t>(random.uniform_index(5000));
    const std::size_t kind = random.uniform_index(10);
    if (kind == 0) {
      text += "";
    } else if (kind == 1) {
      text += "{\"time_ms\":" + std::to_string(t) + "}";  // missing fields
    } else if (kind == 2) {
      text += "{\"time_ms\":oops}";
    } else {
      text += "{\"time_ms\":" + std::to_string(t) +
              ",\"user_id\":" + std::to_string(random.uniform_index(100)) +
              ",\"action\":\"Search\",\"latency_ms\":" +
              std::to_string(50 + random.uniform_index(900)) +
              ",\"user_class\":\"Consumer\",\"status\":\"Success\"}";
    }
    if (i + 1 < lines || trailing_newline) {
      text += random.bernoulli(0.3) ? "\r\n" : "\n";
    }
  }
  return text;
}

// ---------------------------------------------------------------------------
// Parser parity: the chunked parallel path must agree exactly — records AND
// error lists — with the scalar getline reference, for every thread count,
// even when tiny chunk_bytes forces many chunks.

TEST(IngestParityTest, CsvChunkedMatchesScalarAcrossThreads) {
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    for (const bool trailing : {true, false}) {
      const std::string text = random_csv(200, seed, trailing);
      std::istringstream in(text);
      const auto reference = read_csv_scalar(in);
      for (const std::size_t threads : {1u, 2u, 8u}) {
        const auto chunked =
            read_csv_buffer(text, {.threads = threads, .chunk_bytes = 64});
        expect_same_dataset(reference.dataset, chunked.dataset);
        expect_same_errors(reference.errors, chunked.errors);
      }
    }
  }
}

TEST(IngestParityTest, JsonlChunkedMatchesScalarAcrossThreads) {
  for (const std::uint64_t seed : {21u, 22u, 23u}) {
    for (const bool trailing : {true, false}) {
      const std::string text = random_jsonl(200, seed, trailing);
      std::istringstream in(text);
      const auto reference = read_jsonl_scalar(in);
      for (const std::size_t threads : {1u, 2u, 8u}) {
        const auto chunked =
            read_jsonl_buffer(text, {.threads = threads, .chunk_bytes = 64});
        expect_same_dataset(reference.dataset, chunked.dataset);
        expect_same_errors(reference.errors, chunked.errors);
      }
    }
  }
}

TEST(IngestParityTest, ErrorLinesMatchAcrossChunkBoundaries) {
  // A malformed row pinned mid-file: the chunked path must report the same
  // global line number no matter how many chunks precede it.
  std::string text = std::string(kCsvHeader) + "\n";
  for (int i = 0; i < 50; ++i) text += std::to_string(1000 + i) + ",1,Search,5.0,Consumer,Success\n";
  text += "garbage line\n";  // line 52
  for (int i = 0; i < 50; ++i) text += std::to_string(2000 + i) + ",1,Search,5.0,Consumer,Success\n";
  for (const std::size_t chunk_bytes : {16u, 64u, 1u << 20}) {
    const auto result = read_csv_buffer(text, {.threads = 4, .chunk_bytes = chunk_bytes});
    ASSERT_EQ(result.errors.size(), 1u);
    EXPECT_EQ(result.errors[0].line, 52u);
    EXPECT_EQ(result.errors[0].message, "expected 6 fields, got 1");
    EXPECT_EQ(result.dataset.size(), 100u);
  }
}

// ---------------------------------------------------------------------------
// Normalization: UTF-8 BOM, CRLF, and a missing trailing newline parse
// identically in the chunked and scalar paths.

TEST(IngestNormalizationTest, CsvUtf8BomBeforeHeader) {
  const std::string text =
      "\xef\xbb\xbf" + std::string(kCsvHeader) + "\n1000,1,Search,5.0,Consumer,Success\n";
  const auto chunked = read_csv_buffer(text);
  ASSERT_TRUE(chunked.errors.empty());
  ASSERT_EQ(chunked.dataset.size(), 1u);
  std::istringstream in(text);
  const auto scalar = read_csv_scalar(in);
  expect_same_dataset(chunked.dataset, scalar.dataset);
}

TEST(IngestNormalizationTest, JsonlUtf8Bom) {
  const std::string text =
      "\xef\xbb\xbf{\"time_ms\":1,\"user_id\":2,\"action\":\"Search\",\"latency_ms\":3.5,"
      "\"user_class\":\"Consumer\",\"status\":\"Success\"}\n";
  const auto chunked = read_jsonl_buffer(text);
  ASSERT_TRUE(chunked.errors.empty());
  ASSERT_EQ(chunked.dataset.size(), 1u);
  std::istringstream in(text);
  const auto scalar = read_jsonl_scalar(in);
  expect_same_dataset(chunked.dataset, scalar.dataset);
}

TEST(IngestNormalizationTest, CrlfLineEndings) {
  const std::string text = std::string(kCsvHeader) +
                           "\r\n1000,1,Search,5.0,Consumer,Success\r\n"
                           "2000,2,SelectMail,6.0,Business,Error\r\n";
  const auto result = read_csv_buffer(text, {.threads = 2, .chunk_bytes = 16});
  ASSERT_TRUE(result.errors.empty());
  ASSERT_EQ(result.dataset.size(), 2u);
  EXPECT_EQ(result.dataset[0].time_ms, 1000);
  EXPECT_EQ(result.dataset[1].status, ActionStatus::kError);
}

TEST(IngestNormalizationTest, MissingTrailingNewline) {
  const std::string csv =
      std::string(kCsvHeader) + "\n1000,1,Search,5.0,Consumer,Success";  // no final \n
  const auto result = read_csv_buffer(csv);
  ASSERT_TRUE(result.errors.empty());
  ASSERT_EQ(result.dataset.size(), 1u);

  const std::string jsonl =
      "{\"time_ms\":1,\"user_id\":2,\"action\":\"Search\",\"latency_ms\":3.5,"
      "\"user_class\":\"Consumer\",\"status\":\"Success\"}";
  const auto jres = read_jsonl_buffer(jsonl);
  ASSERT_TRUE(jres.errors.empty());
  ASSERT_EQ(jres.dataset.size(), 1u);
}

// ---------------------------------------------------------------------------
// Chunk geometry.

TEST(NewlineChunkBoundsTest, BoundsAreNewlineAlignedAndCoverText) {
  std::string text;
  stats::Random random(31);
  for (int i = 0; i < 200; ++i) {
    text += std::string(random.uniform_index(40), 'x');
    text += '\n';
  }
  const auto bounds = newline_chunk_bounds(text, /*chunk_bytes=*/64);
  ASSERT_GE(bounds.size(), 2u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), text.size());
  for (std::size_t i = 1; i + 1 < bounds.size(); ++i) {
    ASSERT_LE(bounds[i - 1], bounds[i]);
    if (bounds[i] > 0 && bounds[i] < text.size()) {
      EXPECT_EQ(text[bounds[i] - 1], '\n') << "interior boundary " << i;
    }
  }
}

TEST(NewlineChunkBoundsTest, SingleGiantLineYieldsOneEffectiveChunk) {
  const std::string text(10'000, 'x');  // no newline at all
  const auto bounds = newline_chunk_bounds(text, /*chunk_bytes=*/64);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), text.size());
  // All interior boundaries collapse to text.size(): one chunk does the work.
  for (std::size_t i = 1; i < bounds.size(); ++i) EXPECT_EQ(bounds[i], text.size());
}

// ---------------------------------------------------------------------------
// MappedFile: real mapping for regular files, read() fallback for FIFOs and
// other non-seekable inputs.

TEST(MappedFileTest, RegularFileIsMapped) {
  const std::string path = ::testing::TempDir() + "/autosens_ingest_mapped.csv";
  {
    std::ofstream out(path);
    out << "hello mapped world\n";
  }
  const MappedFile mapped = MappedFile::map(path);
  EXPECT_TRUE(mapped.is_mapped());
  EXPECT_EQ(mapped.text(), "hello mapped world\n");
  std::remove(path.c_str());
}

TEST(MappedFileTest, MissingFileThrows) {
  EXPECT_THROW(MappedFile::map("/nonexistent/autosens/nope.csv"), std::runtime_error);
}

TEST(MappedFileTest, FifoFallsBackToRead) {
  const std::string path = ::testing::TempDir() + "/autosens_ingest_fifo";
  std::remove(path.c_str());
  ASSERT_EQ(mkfifo(path.c_str(), 0600), 0);
  const std::string payload =
      std::string(kCsvHeader) + "\n1000,1,Search,5.0,Consumer,Success\n";
  std::thread writer([&] {
    std::ofstream out(path);  // blocks until the reader opens
    out << payload;
  });
  const auto result = read_csv_file(path);
  writer.join();
  std::remove(path.c_str());
  ASSERT_TRUE(result.errors.empty());
  ASSERT_EQ(result.dataset.size(), 1u);
  EXPECT_EQ(result.dataset[0].time_ms, 1000);
}

TEST(MappedFileTest, FifoIsNotMapped) {
  const std::string path = ::testing::TempDir() + "/autosens_ingest_fifo2";
  std::remove(path.c_str());
  ASSERT_EQ(mkfifo(path.c_str(), 0600), 0);
  std::thread writer([&] {
    std::ofstream out(path);
    out << "pipe bytes";
  });
  const MappedFile mapped = MappedFile::map(path);
  writer.join();
  std::remove(path.c_str());
  EXPECT_FALSE(mapped.is_mapped());
  EXPECT_EQ(mapped.text(), "pipe bytes");
}

// ---------------------------------------------------------------------------
// Binlog and logdir determinism across thread counts.

Dataset random_dataset(std::size_t n, std::uint64_t seed) {
  stats::Random random(seed);
  Dataset d;
  std::int64_t t = 1'600'000'000'000;
  for (std::size_t i = 0; i < n; ++i) {
    t += static_cast<std::int64_t>(random.exponential(0.001));
    d.add({.time_ms = t,
           .user_id = 1000 + random.uniform_index(50),
           .latency_ms = random.lognormal(5.5, 0.5),
           .action = static_cast<ActionType>(random.uniform_index(kActionTypeCount)),
           .user_class = static_cast<UserClass>(random.uniform_index(kUserClassCount)),
           .status = random.bernoulli(0.05) ? ActionStatus::kError : ActionStatus::kSuccess});
  }
  return d;
}

TEST(BinlogIngestTest, V2RoundtripIdenticalAcrossThreads) {
  const auto dataset = random_dataset(5000, 41);
  std::stringstream stream;
  write_binlog(stream, dataset, /*batch_size=*/128);  // many frames
  const std::string bytes = stream.str();
  const std::span<const std::uint8_t> view(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const auto decoded = read_binlog_buffer(view, {.threads = threads});
    expect_same_dataset(dataset, decoded);
  }
}

TEST(BinlogIngestTest, V2LatencyRoundtripsExactly) {
  // ASL2 stores raw double bits; no 10 µs quantization like ASL1.
  Dataset d;
  d.add({.time_ms = 1, .user_id = 1, .latency_ms = 123.456789e-3});
  std::stringstream stream;
  write_binlog(stream, d);
  const auto decoded = read_binlog(stream);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].latency_ms, 123.456789e-3);
}

TEST(BinlogIngestTest, V2RejectsCountMismatch) {
  Dataset d;
  d.add({.time_ms = 1, .user_id = 1, .latency_ms = 2.0});
  std::stringstream stream;
  write_binlog(stream, d);
  std::string bytes = stream.str();
  bytes[4] += 1;  // bump the frame length so blocks no longer fit the count
  std::istringstream in(bytes);
  EXPECT_THROW(read_binlog(in), std::runtime_error);
}

TEST(LogdirIngestTest, ShardedReadIdenticalAcrossThreads) {
  const auto dataset = random_dataset(3000, 42);
  const std::string dir = ::testing::TempDir() + "/autosens_ingest_logdir";
  std::filesystem::remove_all(dir);
  const auto paths = write_sharded(dir, dataset, /*records_per_shard=*/500);
  ASSERT_EQ(paths.size(), 6u);
  const auto reference = read_sharded(dir, {.threads = 1});
  expect_same_dataset(dataset, reference);
  for (const std::size_t threads : {2u, 8u}) {
    const auto merged = read_sharded(dir, {.threads = threads});
    expect_same_dataset(reference, merged);
  }
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// The bulk column APIs the engine feeds.

TEST(BulkColumnsTest, AppendColumnsValidatesLengths) {
  Dataset d;
  const std::vector<std::int64_t> times = {1, 2};
  const std::vector<double> lat = {1.0};  // wrong length
  const std::vector<std::uint64_t> users = {1, 2};
  const std::vector<ActionType> actions(2, ActionType::kSearch);
  const std::vector<UserClass> classes(2, UserClass::kConsumer);
  const std::vector<ActionStatus> statuses(2, ActionStatus::kSuccess);
  EXPECT_THROW(d.append_columns(times, lat, users, actions, classes, statuses),
               std::invalid_argument);
}

TEST(BulkColumnsTest, AppendColumnsPreservesSortednessWhenAscending) {
  Dataset d;
  const std::vector<std::int64_t> times = {1, 2, 3};
  const std::vector<double> lat = {1.0, 2.0, 3.0};
  const std::vector<std::uint64_t> users = {1, 2, 3};
  const std::vector<ActionType> actions(3, ActionType::kSearch);
  const std::vector<UserClass> classes(3, UserClass::kConsumer);
  const std::vector<ActionStatus> statuses(3, ActionStatus::kSuccess);
  d.append_columns(times, lat, users, actions, classes, statuses);
  EXPECT_TRUE(d.is_sorted());
  ASSERT_EQ(d.size(), 3u);
  // Appending an out-of-order slice drops the flag.
  const std::vector<std::int64_t> earlier = {0};
  const std::vector<double> lat1 = {9.0};
  const std::vector<std::uint64_t> users1 = {9};
  const std::vector<ActionType> actions1(1, ActionType::kSearch);
  const std::vector<UserClass> classes1(1, UserClass::kConsumer);
  const std::vector<ActionStatus> statuses1(1, ActionStatus::kSuccess);
  d.append_columns(earlier, lat1, users1, actions1, classes1, statuses1);
  EXPECT_FALSE(d.is_sorted());
}

TEST(BulkColumnsTest, AdoptColumnsValidatesAndDetectsSortedness) {
  Dataset d;
  EXPECT_THROW(d.adopt_columns({1, 2}, {1.0}, {1, 2}, {ActionType::kSearch, ActionType::kSearch},
                               {UserClass::kConsumer, UserClass::kConsumer},
                               {ActionStatus::kSuccess, ActionStatus::kSuccess}),
               std::invalid_argument);
  d.adopt_columns({3, 1}, {1.0, 2.0}, {1, 2}, {ActionType::kSearch, ActionType::kSearch},
                  {UserClass::kConsumer, UserClass::kConsumer},
                  {ActionStatus::kSuccess, ActionStatus::kSuccess});
  EXPECT_FALSE(d.is_sorted());
  d.sort_by_time();
  EXPECT_EQ(d[0].time_ms, 1);
  EXPECT_EQ(d[1].time_ms, 3);
}

}  // namespace
}  // namespace autosens::telemetry
