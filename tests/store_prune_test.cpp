// Partition-pruning correctness: every windowed read of an ASL3 store must
// be indistinguishable — record for record, and bit for bit through the
// whole analysis pipeline — from filtering the fully loaded dataset. The
// crafted dataset stresses the pruning edges: calendar days with gaps,
// records planted exactly on day boundaries, and a record at a partition's
// max time (max_time is inclusive; a window starting there must include it).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "core/biased.h"
#include "core/confidence.h"
#include "core/pipeline.h"
#include "core/store_analyze.h"
#include "stats/rng.h"
#include "telemetry/clock.h"
#include "telemetry/store/store.h"
#include "telemetry/store/writer.h"
#include "telemetry/validate.h"

namespace autosens {
namespace {

using telemetry::ActionRecord;
using telemetry::ActionStatus;
using telemetry::ActionType;
using telemetry::Dataset;
using telemetry::kMillisPerDay;
using telemetry::UserClass;
using telemetry::store::build_store;
using telemetry::store::StoredDataset;
using telemetry::store::StoreOptions;

std::filesystem::path fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Deterministic multi-day dataset over days {0, 1, 3, 6} (day gaps!) with
/// records planted at the exact day boundaries k*day-1 and k*day.
Dataset crafted_dataset() {
  Dataset d;
  std::uint64_t i = 0;
  const auto add = [&](std::int64_t t) {
    d.add({.time_ms = t,
           .user_id = 100 + (i % 37),
           .latency_ms = 100.0 + static_cast<double>((i * 97) % 2400),
           .action = static_cast<ActionType>(i % telemetry::kActionTypeCount),
           .user_class = static_cast<UserClass>(i % telemetry::kUserClassCount),
           .status = ActionStatus::kSuccess});
    ++i;
  };
  for (const std::int64_t day : {0, 1, 3, 6}) {
    const std::int64_t base = day * kMillisPerDay;
    add(base);  // Exactly at the day boundary.
    for (int k = 1; k < 2000; ++k) add(base + static_cast<std::int64_t>(k) * 43'000);
    add(base + kMillisPerDay - 1);  // Last representable instant of the day.
  }
  d.sort_by_time();
  return d;
}

Dataset window_of(const Dataset& dataset, std::int64_t begin, std::int64_t end) {
  return dataset.filtered(
      [&](const ActionRecord& r) { return r.time_ms >= begin && r.time_ms < end; });
}

void expect_equal(const Dataset& a, const Dataset& b, const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " record " << i;
  }
}

void expect_bitwise_equal(const core::PreferenceResult& a, const core::PreferenceResult& b) {
  ASSERT_EQ(a.latency_ms, b.latency_ms);
  ASSERT_EQ(a.raw_ratio, b.raw_ratio);
  ASSERT_EQ(a.smoothed, b.smoothed);
  ASSERT_EQ(a.normalized, b.normalized);
  ASSERT_EQ(a.valid, b.valid);
  ASSERT_EQ(a.support_begin, b.support_begin);
  ASSERT_EQ(a.support_end, b.support_end);
  ASSERT_EQ(a.biased_samples, b.biased_samples);
}

class StorePruneTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = crafted_dataset();
    const auto dir = fresh_dir("store_prune");
    // Small shards/blocks so windows straddle many partition AND block edges.
    build_store(dataset_, dir.string(),
                StoreOptions{.partition_rows = 700, .block_rows = 64, .compress = true});
    opened_ = StoredDataset::open(dir.string());
  }

  const StoredDataset& store() const { return *opened_; }

  Dataset dataset_;
  std::optional<StoredDataset> opened_;
};

TEST_F(StorePruneTest, PruneMatchesBruteForce) {
  const std::int64_t lo = store().min_time_ms() - kMillisPerDay;
  const std::int64_t hi = store().max_time_ms() + kMillisPerDay;
  for (std::int64_t begin = lo; begin < hi; begin += kMillisPerDay / 3) {
    for (const std::int64_t width :
         {std::int64_t{1'000'000}, kMillisPerDay, 3 * kMillisPerDay}) {
      const auto kept = store().prune(begin, begin + width);
      std::vector<std::size_t> expected;
      for (std::size_t i = 0; i < store().partitions().size(); ++i) {
        const auto& p = store().partitions()[i];
        bool overlaps = false;
        for (std::size_t r = 0; r < dataset_.size(); ++r) {
          const std::int64_t t = dataset_.times()[r];
          if (t >= begin && t < begin + width && t >= p.min_time_ms && t <= p.max_time_ms) {
            overlaps = true;
            break;
          }
        }
        // Brute force by records: a partition with matching records must be
        // kept. (prune may keep a boundary partition whose records all miss
        // the window — load_window trims those to zero rows.)
        if (overlaps) expected.push_back(i);
      }
      for (const std::size_t i : expected) {
        EXPECT_NE(std::find(kept.begin(), kept.end(), i), kept.end())
            << "partition " << i << " missing for window [" << begin << ", "
            << begin + width << ")";
      }
    }
  }
}

TEST_F(StorePruneTest, WindowsStraddlingPartitionBoundaries) {
  // Windows anchored around every partition edge (so each boundary gets
  // straddled by every width), plus a coarse sweep across the whole range —
  // which includes the day gaps: days 2, 4, 5 hold no records, so mid-range
  // windows can land on empty stretches entirely.
  std::vector<std::int64_t> anchors;
  for (const auto& p : store().partitions()) {
    anchors.push_back(p.min_time_ms);
    anchors.push_back(p.max_time_ms);
  }
  for (std::int64_t t = store().min_time_ms() - 1000; t < store().max_time_ms() + 1000;
       t += kMillisPerDay / 2) {
    anchors.push_back(t);
  }
  for (const std::int64_t width : {std::int64_t{1'000}, std::int64_t{500'000},
                                   kMillisPerDay / 2, kMillisPerDay + 1, 2 * kMillisPerDay}) {
    for (const std::int64_t anchor : anchors) {
      for (const std::int64_t begin : {anchor - width, anchor - width / 2, anchor - 1, anchor,
                                       anchor + 1}) {
        const auto load = store().load_window(begin, begin + width);
        expect_equal(window_of(dataset_, begin, begin + width), load.dataset,
                     "window [" + std::to_string(begin) + ", +" + std::to_string(width) + ")");
        EXPECT_TRUE(load.dataset.is_sorted());
        EXPECT_EQ(load.partitions_scanned + load.partitions_pruned,
                  store().partitions().size());
      }
    }
  }
}

TEST_F(StorePruneTest, RecordAtPartitionMaxTimeIsIncluded) {
  for (const auto& p : store().partitions()) {
    // max_time is inclusive: a window starting exactly there still overlaps.
    const auto load = store().load_window(p.max_time_ms, p.max_time_ms + 1);
    const Dataset expected = window_of(dataset_, p.max_time_ms, p.max_time_ms + 1);
    ASSERT_GE(expected.size(), 1u);
    expect_equal(expected, load.dataset, p.dir_name);
  }
}

TEST_F(StorePruneTest, EmptyMidRangeWindowsLoadNothing) {
  // Day 2 exists in the time range but holds no partitions.
  const auto load = store().load_window(2 * kMillisPerDay, 3 * kMillisPerDay);
  EXPECT_EQ(load.dataset.size(), 0u);
  EXPECT_EQ(load.partitions_scanned, 0u);
  EXPECT_EQ(load.partitions_pruned, store().partitions().size());
  EXPECT_EQ(load.bytes_read, 0u);
}

TEST_F(StorePruneTest, PrunedAnalysisBitIdenticalToFullScan) {
  core::AutoSensOptions options;
  options.threads = 1;
  for (const std::int64_t begin : {std::int64_t{0}, kMillisPerDay / 2, 3 * kMillisPerDay}) {
    const std::int64_t end = begin + 2 * kMillisPerDay;
    const Dataset in_memory = window_of(dataset_, begin, end);
    const auto load = store().load_window(begin, end);
    expect_equal(in_memory, load.dataset, "analysis window");
    const auto expect = core::analyze_detailed(in_memory, options);
    const auto got = core::analyze_detailed(load.dataset, options);
    expect_bitwise_equal(expect.preference, got.preference);
    ASSERT_EQ(expect.biased.size(), got.biased.size());
    for (std::size_t i = 0; i < expect.biased.size(); ++i) {
      EXPECT_EQ(expect.biased.count(i), got.biased.count(i));
      EXPECT_EQ(expect.unbiased.count(i), got.unbiased.count(i));
    }
  }
}

TEST_F(StorePruneTest, ConfidenceIntervalsBitIdenticalWithSameSeed) {
  core::AutoSensOptions options;
  options.threads = 1;
  const std::int64_t begin = 0;
  const std::int64_t end = 2 * kMillisPerDay;
  const std::vector<double> probes = {500.0, 1000.0, 2000.0};
  core::ConfidenceOptions confidence;
  confidence.replicates = 10;

  stats::Random random_a(17);
  const auto expect = core::analyze_with_confidence(window_of(dataset_, begin, end), options,
                                                    probes, confidence, random_a);
  stats::Random random_b(17);
  const auto got = core::analyze_with_confidence(store().load_window(begin, end).dataset,
                                                 options, probes, confidence, random_b);
  expect_bitwise_equal(expect.point, got.point);
  ASSERT_EQ(expect.intervals.size(), got.intervals.size());
  for (std::size_t p = 0; p < expect.intervals.size(); ++p) {
    EXPECT_EQ(expect.intervals[p].lo, got.intervals[p].lo);
    EXPECT_EQ(expect.intervals[p].hi, got.intervals[p].hi);
  }
  EXPECT_EQ(expect.usable_replicates, got.usable_replicates);
}

TEST_F(StorePruneTest, AnalyzeStoreWindowsMatchesInMemoryLoop) {
  core::AutoSensOptions options;
  options.threads = 1;
  core::StoreStreamOptions stream;
  stream.window_ms = 2 * kMillisPerDay;

  const auto results = core::analyze_store_windows(store(), options, stream);
  ASSERT_EQ(results.size(), 4u);  // ceil(7 days / 2-day windows).
  for (const auto& w : results) {
    Dataset in_memory = telemetry::validate(window_of(dataset_, w.begin_ms, w.end_ms)).dataset;
    EXPECT_EQ(w.records, in_memory.size());
    if (in_memory.empty()) {
      EXPECT_FALSE(w.preference.has_value());
      continue;
    }
    ASSERT_TRUE(w.preference.has_value());
    expect_bitwise_equal(core::analyze(in_memory, options), *w.preference);
  }
}

TEST_F(StorePruneTest, StreamedBiasedHistogramBitIdentical) {
  core::AutoSensOptions options;
  const auto streamed = core::scan_biased_histogram(store(), options);
  const auto whole = core::biased_histogram(dataset_.latencies(), options);
  ASSERT_EQ(streamed.size(), whole.size());
  EXPECT_EQ(streamed.total_weight(), whole.total_weight());
  for (std::size_t i = 0; i < whole.size(); ++i) {
    EXPECT_EQ(streamed.count(i), whole.count(i)) << "bin " << i;
  }
}

}  // namespace
}  // namespace autosens
