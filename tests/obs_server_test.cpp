// The live introspection plane end to end: every ObsServer endpoint over a
// real loopback socket, the http_get helper, the RuntimeSampler gauges, a
// fault-injected scrape, and a live scrape loop racing a concurrent analyze
// (the scenario the TSan tree replays with instrumentation).
#include "obs/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "net/fault.h"
#include "net/socket.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "simulate/generator.h"
#include "simulate/presets.h"
#include "telemetry/filter.h"
#include "telemetry/validate.h"

namespace autosens::obs {
namespace {

/// Raw HTTP exchange for the request shapes http_get cannot produce
/// (non-GET methods, malformed request lines). Sends `request` verbatim and
/// returns everything the server writes back before closing.
std::string raw_request(std::uint16_t port, const std::string& request) {
  auto socket = net::connect_tcp(port);
  net::write_all(socket, {reinterpret_cast<const std::uint8_t*>(request.data()),
                          request.size()});
  std::string response;
  std::uint8_t buffer[2048];
  auto& ops = net::real_socket_ops();
  for (;;) {
    const auto n = ops.recv(socket.fd(), buffer, sizeof(buffer));
    if (n == -EINTR || n == -EAGAIN) continue;
    if (n <= 0) break;
    response.append(reinterpret_cast<const char*>(buffer), static_cast<std::size_t>(n));
  }
  return response;
}

TEST(ObsServerTest, MetricsEndpointRoundTripsThroughTheParser) {
  set_enabled(true);
  Registry local;
  local.counter("zeta_total", "late registration").inc(3);
  local.gauge("alpha_ratio").set(0.25);
  local.counter("frames_total{kind=\"data\"}").inc(7);
  local.counter("frames_total{kind=\"ctrl\"}").inc(1);
  local.histogram("stage_ms", "", {5.0, 50.0}).observe(12.0);

  ObsServer server({.registry = &local});
  const auto response = http_get(server.port(), "/metrics");
  set_enabled(false);

  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "text/plain; version=0.0.4; charset=utf-8");
  std::istringstream in(response.body);
  const auto samples = parse_prometheus(in);
  ASSERT_FALSE(samples.empty());
  // Sorted export: alpha_ratio before frames_total before stage_ms before
  // zeta_total, and the scrape parses back to the exact handle values.
  EXPECT_LT(response.body.find("alpha_ratio"), response.body.find("frames_total"));
  EXPECT_LT(response.body.find("stage_ms"), response.body.find("zeta_total"));
  bool saw_data = false, saw_zeta = false;
  for (const auto& sample : samples) {
    if (sample.name == "frames_total{kind=\"data\"}") {
      saw_data = true;
      EXPECT_EQ(sample.value, 7.0);
    }
    if (sample.name == "zeta_total") {
      saw_zeta = true;
      EXPECT_EQ(sample.value, 3.0);
    }
  }
  EXPECT_TRUE(saw_data);
  EXPECT_TRUE(saw_zeta);
  EXPECT_GE(server.requests(), 1u);
}

TEST(ObsServerTest, MetricsJsonMirrorsTheRegistry) {
  set_enabled(true);
  Registry local;
  local.counter("scrapes_total").inc(2);
  local.histogram("lat_ms", "", {1.0}).observe(0.5);
  ObsServer server({.registry = &local});
  const auto response = http_get(server.port(), "/metrics.json");
  set_enabled(false);

  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "application/json");
  EXPECT_NE(response.body.find("\"scrapes_total\""), std::string::npos);
  EXPECT_NE(response.body.find("\"counter\""), std::string::npos);
  EXPECT_NE(response.body.find("\"buckets\""), std::string::npos);
}

TEST(ObsServerTest, HealthzTracksComponentReadiness) {
  Health::global().clear();
  Registry local;
  ObsServer server({.registry = &local});

  // No components: trivially live.
  auto response = http_get(server.port(), "/healthz");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"status\": \"ok\""), std::string::npos);

  Health::global().set_component("pipeline", false, "warming up");
  response = http_get(server.port(), "/healthz");
  EXPECT_EQ(response.status, 503);
  EXPECT_NE(response.body.find("\"ready\": false"), std::string::npos);
  EXPECT_NE(response.body.find("warming up"), std::string::npos);
  EXPECT_NE(response.body.find("\"status\": \"unready\""), std::string::npos);

  Health::global().set_component("pipeline", true, "ok");
  response = http_get(server.port(), "/healthz");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"ready\": true"), std::string::npos);
  Health::global().clear();
}

TEST(ObsServerTest, StatuszCarriesBuildRuntimeAndSections) {
  set_enabled(true);
  ASSERT_TRUE(RuntimeSampler::sample_once());
  const auto section =
      StatusRegistry::global().add_section("collector", [] {
        return std::string("{\"sessions\": 0}");
      });

  // The runtime block filters autosens_process_* out of the global registry,
  // so this server must export the global one.
  ObsServer server;
  const auto response = http_get(server.port(), "/statusz");
  StatusRegistry::global().remove_section(section);
  set_enabled(false);

  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "application/json");
  EXPECT_NE(response.body.find("\"uptime_seconds\""), std::string::npos);
  EXPECT_NE(response.body.find("\"build\""), std::string::npos);
  EXPECT_NE(response.body.find("autosens_process_rss_bytes"), std::string::npos);
  EXPECT_NE(response.body.find("\"collector\": {\"sessions\": 0}"), std::string::npos);
}

TEST(ObsServerTest, RuntimeSamplerPopulatesProcessGauges) {
  set_enabled(true);
  ASSERT_TRUE(RuntimeSampler::sample_once());
  EXPECT_GT(registry().gauge("autosens_process_rss_bytes").value(), 0.0);
  EXPECT_GE(registry().gauge("autosens_process_threads").value(), 1.0);
  EXPECT_GT(registry().gauge("autosens_process_open_fds").value(), 0.0);
  EXPECT_GE(registry().gauge("autosens_process_vm_hwm_bytes").value(),
            registry().gauge("autosens_process_rss_bytes").value() * 0.5);
  set_enabled(false);
}

TEST(ObsServerTest, TracezExportsRecentSpansInBothFormats) {
  auto& tracer = Tracer::global();
  tracer.set_enabled(true);
  tracer.clear();
  {
    Span outer("scrape_me");
    Span inner("nested");
  }
  Registry local;
  ObsServer server({.registry = &local});
  const auto json = http_get(server.port(), "/tracez");
  const auto chrome = http_get(server.port(), "/tracez?format=chrome");
  tracer.set_enabled(false);
  tracer.clear();

  EXPECT_EQ(json.status, 200);
  EXPECT_EQ(json.content_type, "application/json");
  EXPECT_NE(json.body.find("\"scrape_me\""), std::string::npos);
  EXPECT_NE(json.body.find("\"nested\""), std::string::npos);
  EXPECT_EQ(chrome.status, 200);
  EXPECT_NE(chrome.body.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(chrome.body.find("\"ph\": \"X\""), std::string::npos);
}

TEST(ObsServerTest, IndexAndErrorPaths) {
  Registry local;
  ObsServer server({.registry = &local});

  const auto index = http_get(server.port(), "/");
  EXPECT_EQ(index.status, 200);
  EXPECT_NE(index.body.find("/metrics"), std::string::npos);
  EXPECT_NE(index.body.find("/tracez"), std::string::npos);

  const auto missing = http_get(server.port(), "/nope");
  EXPECT_EQ(missing.status, 404);
  EXPECT_NE(missing.body.find("not found: /nope"), std::string::npos);

  const auto post = raw_request(server.port(), "POST /metrics HTTP/1.1\r\n\r\n");
  EXPECT_NE(post.find("405"), std::string::npos);
  const auto garbage = raw_request(server.port(), "nonsense\r\n\r\n");
  EXPECT_NE(garbage.find("400"), std::string::npos);
  EXPECT_GE(server.requests(), 4u);
}

TEST(ObsServerTest, HandleDispatchesWithoutASocket) {
  Registry local;
  local.counter("direct_total").inc(1);
  ObsServer server({.registry = &local});
  const auto response = server.handle("/metrics");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("direct_total"), std::string::npos);
  EXPECT_EQ(server.handle("/gone").status, 404);
}

TEST(ObsServerTest, HttpGetRejectsClosedPorts) {
  std::uint16_t dead_port = 0;
  {
    std::uint16_t bound = 0;
    auto listener = net::listen_tcp(0, bound);
    dead_port = bound;
  }  // listener closed; the port is free again.
  EXPECT_THROW(http_get(dead_port, "/metrics"), net::SocketError);
}

TEST(ObsServerTest, FaultInjectedScrapeStillServes) {
  // Short reads and short writes on the server's syscall seam: the request
  // parser and write_all loops must still deliver a complete scrape.
  set_enabled(true);
  Registry local;
  local.counter("resilient_total").inc(9);
  net::FaultySocketOps faulty(
      net::FaultPlan(0x0b5, {{.fault = net::FaultClass::kShortRead, .probability = 0.5},
                             {.fault = net::FaultClass::kShortWrite, .probability = 0.5}}),
      net::real_socket_ops(), 0.0);
  ObsServer server({.ops = &faulty, .registry = &local});
  for (int i = 0; i < 5; ++i) {
    const auto response = http_get(server.port(), "/metrics");
    EXPECT_EQ(response.status, 200);
    EXPECT_NE(response.body.find("resilient_total 9"), std::string::npos);
  }
  set_enabled(false);
}

TEST(ObsServerTest, LiveScrapeDuringConcurrentAnalyze) {
  // The acceptance scenario: scrape /metrics, /statusz, and /tracez in a
  // tight loop while an instrumented analyze runs — every scrape must
  // succeed and the final one must still parse. The TSan tree replays this
  // test with instrumentation to prove the registry/tracer/server paths are
  // race-free.
  set_enabled(true);
  Tracer::global().set_enabled(true);
  Tracer::global().clear();
  ObsServer server;

  auto generated =
      simulate::WorkloadGenerator(simulate::paper_config(simulate::Scale::kTiny, 77))
          .generate();
  const auto slice = telemetry::validate(generated.dataset)
                         .dataset.filtered(telemetry::all_of(
                             {telemetry::by_action(telemetry::ActionType::kSelectMail),
                              telemetry::by_user_class(telemetry::UserClass::kBusiness)}));
  ASSERT_GT(slice.size(), 0u);

  std::atomic<bool> done{false};
  std::thread analyzer([&] {
    for (int i = 0; i < 2; ++i) {
      const auto result = core::analyze(slice, core::AutoSensOptions{});
      EXPECT_GT(result.normalized.size(), 0u);
    }
    done.store(true);
  });

  std::size_t scrapes = 0;
  std::string last_metrics;
  while (!done.load() || scrapes < 3) {
    for (const char* target : {"/metrics", "/statusz", "/tracez"}) {
      const auto response = http_get(server.port(), target);
      ASSERT_EQ(response.status, 200) << target;
      if (std::string(target) == "/metrics") last_metrics = response.body;
    }
    ++scrapes;
    if (scrapes > 200) break;  // analyze wedged; let the join report it.
  }
  analyzer.join();
  Tracer::global().set_enabled(false);
  Tracer::global().clear();
  set_enabled(false);

  std::istringstream in(last_metrics);
  EXPECT_FALSE(parse_prometheus(in).empty());
  EXPECT_GE(server.requests(), 3u * scrapes);
}

}  // namespace
}  // namespace autosens::obs
