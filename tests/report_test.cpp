#include <gtest/gtest.h>

#include <sstream>

#include "report/ascii_chart.h"
#include "report/compare.h"
#include "report/csvout.h"
#include "report/table.h"

namespace autosens::report {
namespace {

TEST(TableTest, RejectsEmptyHeadersAndBadRows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), std::invalid_argument);
}

TEST(TableTest, RendersAlignedColumns) {
  Table table({"name", "value"});
  table.add_row({"short", "1"});
  table.add_row({"a much longer name", "2"});
  const auto text = table.to_string();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("a much longer name"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  // Column alignment: both data rows start their second column at the same
  // offset; cheap proxy: header line length equals underline length.
  std::istringstream lines(text);
  std::string header;
  std::string underline;
  std::getline(lines, header);
  std::getline(lines, underline);
  EXPECT_EQ(header.size() <= underline.size(), true);
}

TEST(TableTest, NumFormatsFixedDecimals) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::num(-0.5), "-0.500");
}

TEST(AsciiChartTest, HandlesNoSeries) {
  std::ostringstream out;
  render_chart(out, {}, ChartOptions{});
  EXPECT_NE(out.str().find("no drawable series"), std::string::npos);
}

TEST(AsciiChartTest, SkipsDegenerateSeries) {
  std::ostringstream out;
  const std::vector<Series> series = {{.name = "one-point", .x = {1.0}, .y = {1.0}}};
  render_chart(out, series, ChartOptions{});
  EXPECT_NE(out.str().find("no drawable series"), std::string::npos);
}

TEST(AsciiChartTest, RendersSeriesWithLegendAndAxes) {
  std::ostringstream out;
  const std::vector<Series> series = {
      {.name = "alpha", .x = {0.0, 1.0, 2.0}, .y = {0.0, 1.0, 0.5}},
      {.name = "beta", .x = {0.0, 1.0, 2.0}, .y = {1.0, 0.0, 0.25}}};
  ChartOptions options;
  options.title = "test chart";
  options.x_label = "latency";
  render_chart(out, series, options);
  const auto text = out.str();
  EXPECT_NE(text.find("test chart"), std::string::npos);
  EXPECT_NE(text.find("[*] alpha"), std::string::npos);
  EXPECT_NE(text.find("[+] beta"), std::string::npos);
  EXPECT_NE(text.find("(latency)"), std::string::npos);
  EXPECT_NE(text.find('*'), std::string::npos);
  EXPECT_NE(text.find('+'), std::string::npos);
}

TEST(CsvOutTest, SeriesCsvLongFormat) {
  std::ostringstream out;
  const std::vector<Series> series = {{.name = "s1", .x = {1.0, 2.0}, .y = {3.0, 4.0}}};
  write_series_csv(out, series);
  EXPECT_EQ(out.str(), "series,x,y\ns1,1,3\ns1,2,4\n");
}

TEST(ComparisonTest, ChecksValuesAgainstTolerance) {
  Comparison comparison("test");
  comparison.check_value("a", 1.0, 1.05, 0.1);
  comparison.check_value("b", 1.0, 1.5, 0.1);
  EXPECT_FALSE(comparison.all_within());
  EXPECT_EQ(comparison.failures(), 1u);
  std::ostringstream out;
  comparison.print(out);
  EXPECT_NE(out.str().find("SHAPE DEVIATION"), std::string::npos);
  EXPECT_NE(out.str().find("NO"), std::string::npos);
}

TEST(ComparisonTest, AllWithinPrintsShapeOk) {
  Comparison comparison("good");
  comparison.check_value("a", 1.0, 1.0, 0.01);
  EXPECT_TRUE(comparison.all_within());
  std::ostringstream out;
  comparison.print(out);
  EXPECT_NE(out.str().find("SHAPE OK"), std::string::npos);
}

TEST(ComparisonTest, UnsupportedAnchorCountsAsFailure) {
  Comparison comparison("unsupported");
  core::PreferenceResult curve;  // empty: covers nothing
  comparison.check(curve, 500.0, 0.9, 0.1);
  EXPECT_EQ(comparison.failures(), 1u);
  std::ostringstream out;
  comparison.print(out);
  EXPECT_NE(out.str().find("unsupported"), std::string::npos);
}

}  // namespace
}  // namespace autosens::report
