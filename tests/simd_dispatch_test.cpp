// Dispatch-level selection for the SIMD kernel layer: the
// AUTOSENS_FORCE_SCALAR environment knob, the test override, and the
// `autosens_simd_level` gauge published through obs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>

#include "core/simd.h"
#include "obs/metrics.h"

namespace autosens {
namespace {

namespace simd = core::simd;

// The environment knob is read once, when the first kernel call initializes
// the dispatch level, so each scenario runs in a freshly exec'd process
// (threadsafe death-test style) where the static is still uninitialized.
class SimdDispatchDeathTest : public testing::Test {
 protected:
  void SetUp() override {
    testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(SimdDispatchDeathTest, ForceScalarEnvPinsScalarLevel) {
  for (const char* value : {"1", "true", "yes", "on"}) {
    EXPECT_EXIT(
        {
          setenv("AUTOSENS_FORCE_SCALAR", value, 1);
          std::exit(simd::active_level() == simd::Level::kScalar ? 0 : 1);
        },
        testing::ExitedWithCode(0), "")
        << "AUTOSENS_FORCE_SCALAR=" << value;
  }
}

TEST_F(SimdDispatchDeathTest, UnrecognizedEnvValueFallsBackToDetection) {
  EXPECT_EXIT(
      {
        setenv("AUTOSENS_FORCE_SCALAR", "0", 1);
        std::exit(simd::active_level() == simd::detected_level() ? 0 : 1);
      },
      testing::ExitedWithCode(0), "");
}

TEST(SimdDispatchTest, OverridePinsAndRestores) {
  simd::set_level_override(simd::Level::kScalar);
  EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
  simd::set_level_override(simd::detected_level());
  EXPECT_EQ(simd::active_level(), simd::detected_level());
  simd::set_level_override(std::nullopt);
  EXPECT_EQ(simd::active_level(), simd::detected_level());
}

TEST(SimdDispatchTest, LevelNamesAreStable) {
  EXPECT_EQ(simd::to_string(simd::Level::kScalar), "scalar");
  EXPECT_EQ(simd::to_string(simd::Level::kAvx2), "avx2");
}

TEST(SimdDispatchTest, PublishSetsGauge) {
  obs::set_enabled(true);
  simd::publish_level();
  obs::set_enabled(false);
  const double value = obs::registry().gauge("autosens_simd_level").value();
  EXPECT_EQ(value, static_cast<double>(static_cast<int>(simd::active_level())));
}

TEST(SimdDispatchTest, GaugeTracksOverride) {
  simd::set_level_override(simd::Level::kScalar);
  obs::set_enabled(true);
  simd::publish_level();
  obs::set_enabled(false);
  simd::set_level_override(std::nullopt);
  EXPECT_EQ(obs::registry().gauge("autosens_simd_level").value(), 0.0);
}

}  // namespace
}  // namespace autosens
