#!/usr/bin/env bash
# End-to-end introspection-plane check over two real processes:
#
#   1. `collect` serves in the background with --obs-listen and --trace-out;
#   2. `replay` ships a generated dataset into it, also tracing;
#   3. while both run, the collector's live /metrics, /healthz, and /statusz
#      endpoints are scraped and sanity-checked;
#   4. the two Chrome trace files must stitch into ONE connected tree
#      (tools/check_trace_tree.py): emitter spans parent collector spans via
#      the wire v2 trace context;
#   5. the collected binlog must hold exactly the generated records.
#
# Usage: cli_obs_e2e.sh <autosens_cli> <python3>
set -euo pipefail

CLI="$1"
PYTHON="$2"
ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
WORK="$(mktemp -d)"
COLLECT_PID=""
cleanup() {
  [[ -n "$COLLECT_PID" ]] && kill "$COLLECT_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

"$CLI" generate --out "$WORK/data.bin" --scale tiny --seed 99 --days 2 >/dev/null

# Collector: ephemeral collect port (printed on stdout) + ephemeral obs port
# (printed on stderr as "obs: serving http://127.0.0.1:PORT/statusz").
"$CLI" collect --out "$WORK/collected.bin" --port 0 --expect 1 --shards 2 \
    --timeout-ms 30000 --obs-listen 0 --trace-out "$WORK/collect_trace.json" \
    >"$WORK/collect.out" 2>"$WORK/collect.err" &
COLLECT_PID=$!

port="" obs_port=""
for _ in $(seq 1 100); do
  port="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$WORK/collect.out")"
  obs_port="$(sed -n 's|^obs: serving http://127\.0\.0\.1:\([0-9]*\)/statusz$|\1|p' \
      "$WORK/collect.err")"
  [[ -n "$port" && -n "$obs_port" ]] && break
  sleep 0.1
done
[[ -n "$port" && -n "$obs_port" ]] || {
  echo "FAIL: collector never announced its ports" >&2
  cat "$WORK/collect.out" "$WORK/collect.err" >&2
  exit 1
}

# Live scrapes against the serving collector, via the CLI's own watch
# (single-shot) and a raw /healthz + /statusz probe through python.
"$CLI" watch "127.0.0.1:$obs_port" --count 1 --filter autosens_ \
    > "$WORK/watch.out"
grep -q "autosens_" "$WORK/watch.out" || {
  echo "FAIL: watch rendered no autosens_ metrics" >&2
  cat "$WORK/watch.out" >&2
  exit 1
}
"$PYTHON" - "$obs_port" <<'EOF'
import json, sys, urllib.request
port = sys.argv[1]
health = json.load(urllib.request.urlopen(f"http://127.0.0.1:{port}/healthz"))
assert health["status"] == "ok", health
assert any(name.startswith("collector:") for name in health["components"]), health
status = json.load(urllib.request.urlopen(f"http://127.0.0.1:{port}/statusz"))
assert "uptime_seconds" in status and "build" in status, status.keys()
assert any(name.startswith("collector:") for name in status["sections"]), status
# The sharded collector's section must carry a per-shard breakdown matching
# the --shards 2 it was started with.
section = next(v for k, v in status["sections"].items() if k.startswith("collector:"))
shards = section["shards"]
assert len(shards) == 2, shards
for i, shard in enumerate(shards):
    assert shard["shard"] == i, shards
    for key in ("connections", "epoll_wakeups", "queue_depth"):
        assert key in shard, shard
EOF

"$CLI" replay --in "$WORK/data.bin" --port "$port" --batch 256 \
    --trace-out "$WORK/replay_trace.json" >"$WORK/replay.out"
wait "$COLLECT_PID"
COLLECT_PID=""

grep -q "^replayed " "$WORK/replay.out"
grep -q "all goodbyes received" "$WORK/collect.out"

# The acceptance criterion: one connected cross-process trace tree.
"$PYTHON" "$ROOT/tools/check_trace_tree.py" \
    "$WORK/replay_trace.json" "$WORK/collect_trace.json"

# Exactness: the collected binlog carries every generated record.
generated="$(sed -n 's/^replayed \([0-9]*\) records.*/\1/p' "$WORK/replay.out")"
collected="$(sed -n 's/^collected \([0-9]*\) records.*/\1/p' "$WORK/collect.out")"
[[ "$generated" == "$collected" && -n "$generated" ]] || {
  echo "FAIL: replayed $generated records but collected $collected" >&2
  exit 1
}

echo "PASS: cli obs e2e ($generated records, obs port $obs_port)"
