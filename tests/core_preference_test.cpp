#include "core/preference.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/biased.h"
#include "stats/rng.h"

namespace autosens::core {
namespace {

AutoSensOptions test_options() {
  AutoSensOptions options;
  options.bin_width_ms = 10.0;
  options.max_latency_ms = 1000.0;
  options.reference_latency_ms = 300.0;
  options.smoothing = {.window = 21, .degree = 3};
  options.min_biased_count = 1.0;
  options.min_unbiased_mass = 1e-9;
  return options;
}

/// Fill histograms so that B/U equals `ratio(latency)` exactly over
/// [100, 900), with plenty of mass per bin.
std::pair<stats::Histogram, stats::Histogram> make_pair(
    const AutoSensOptions& options, const std::function<double(double)>& ratio) {
  auto biased = make_latency_histogram(options);
  auto unbiased = make_latency_histogram(options);
  for (std::size_t i = 10; i < 90; ++i) {
    const double center = biased.bin_center(i);
    unbiased.set_count(i, 100.0);
    biased.set_count(i, 100.0 * ratio(center));
  }
  return {std::move(biased), std::move(unbiased)};
}

TEST(ComputePreferenceTest, GeometryMismatchThrows) {
  const auto options = test_options();
  auto a = make_latency_histogram(options);
  auto b = stats::Histogram(0.0, 20.0, 50);
  a.add(100.0);
  b.add(100.0);
  EXPECT_THROW(compute_preference(a, b, options), std::invalid_argument);
}

TEST(ComputePreferenceTest, EmptyHistogramsThrow) {
  const auto options = test_options();
  const auto empty = make_latency_histogram(options);
  EXPECT_THROW(compute_preference(empty, empty, options), std::invalid_argument);
}

TEST(ComputePreferenceTest, FlatRatioGivesFlatNormalizedCurve) {
  const auto options = test_options();
  auto [biased, unbiased] = make_pair(options, [](double) { return 3.0; });
  const auto result = compute_preference(biased, unbiased, options);
  for (std::size_t i = result.support_begin; i < result.support_end; ++i) {
    EXPECT_NEAR(result.normalized[i], 1.0, 1e-9);
  }
}

TEST(ComputePreferenceTest, NormalizedIsOneAtReference) {
  const auto options = test_options();
  auto [biased, unbiased] =
      make_pair(options, [](double latency) { return 2.0 - latency / 1000.0; });
  const auto result = compute_preference(biased, unbiased, options);
  EXPECT_NEAR(result.at(options.reference_latency_ms), 1.0, 1e-6);
}

TEST(ComputePreferenceTest, RecoversLinearPreference) {
  const auto options = test_options();
  const auto planted = [](double latency) { return 1.5 - latency / 1000.0; };
  auto [biased, unbiased] = make_pair(options, planted);
  const auto result = compute_preference(biased, unbiased, options);
  const double ref = planted(options.reference_latency_ms);
  for (const double latency : {200.0, 400.0, 600.0, 800.0}) {
    EXPECT_NEAR(result.at(latency), planted(latency) / ref, 1e-6) << latency;
  }
}

TEST(ComputePreferenceTest, SupportExcludesEdgeBins) {
  const auto options = test_options();
  auto [biased, unbiased] = make_pair(options, [](double) { return 1.0; });
  // Even with mass in the clamp bins, they must stay unsupported.
  biased.set_count(0, 1000.0);
  unbiased.set_count(0, 1000.0);
  const auto result = compute_preference(biased, unbiased, options);
  EXPECT_GE(result.support_begin, 1u);
  EXPECT_LE(result.support_end, biased.size() - 1);
}

TEST(ComputePreferenceTest, GuardsMaskThinBins) {
  auto options = test_options();
  options.min_biased_count = 50.0;
  auto biased = make_latency_histogram(options);
  auto unbiased = make_latency_histogram(options);
  for (std::size_t i = 10; i < 90; ++i) {
    unbiased.set_count(i, 100.0);
    biased.set_count(i, i == 50 ? 10.0 : 100.0);  // bin 50 under the guard
  }
  const auto result = compute_preference(biased, unbiased, options);
  EXPECT_EQ(result.valid[50], 0);
  // Interpolated through the gap: smoothed value exists and is close to the
  // neighbors' level.
  EXPECT_NEAR(result.normalized[50], 1.0, 0.05);
}

TEST(ComputePreferenceTest, ReferenceOutsideSupportThrows) {
  auto options = test_options();
  options.reference_latency_ms = 950.0;  // support ends at 900
  auto [biased, unbiased] = make_pair(options, [](double) { return 1.0; });
  EXPECT_THROW(compute_preference(biased, unbiased, options), std::invalid_argument);
}

TEST(ComputePreferenceTest, AtThrowsOutsideSupport) {
  const auto options = test_options();
  auto [biased, unbiased] = make_pair(options, [](double) { return 1.0; });
  const auto result = compute_preference(biased, unbiased, options);
  EXPECT_THROW(result.at(50.0), std::out_of_range);
  EXPECT_THROW(result.at(950.0), std::out_of_range);
  EXPECT_FALSE(result.covers(50.0));
  EXPECT_TRUE(result.covers(500.0));
}

TEST(ComputePreferenceTest, SmoothingSuppressesBinNoise) {
  auto options = test_options();
  options.smoothing = {.window = 21, .degree = 3};
  stats::Random random(3);
  auto biased = make_latency_histogram(options);
  auto unbiased = make_latency_histogram(options);
  for (std::size_t i = 10; i < 90; ++i) {
    unbiased.set_count(i, 1000.0);
    // True ratio 1.0 with ±20% multiplicative noise per bin.
    biased.set_count(i, 1000.0 * (1.0 + 0.2 * (random.uniform() - 0.5)));
  }
  const auto result = compute_preference(biased, unbiased, options);
  double max_deviation = 0.0;
  for (std::size_t i = result.support_begin + 10; i + 10 < result.support_end; ++i) {
    max_deviation = std::max(max_deviation, std::abs(result.normalized[i] - 1.0));
  }
  EXPECT_LT(max_deviation, 0.07);  // raw noise was up to 0.10+
}

TEST(ComputePreferenceTest, RawRatioNormalizesOverallScale) {
  // B and U are compared as probability densities (§2.3), so a uniform
  // B = k × U gives a raw ratio of exactly 1 regardless of k: only the
  // *shape* difference between the distributions carries signal.
  const auto options = test_options();
  auto [biased, unbiased] = make_pair(options, [](double) { return 2.0; });
  const auto result = compute_preference(biased, unbiased, options);
  for (std::size_t i = result.support_begin; i < result.support_end; ++i) {
    EXPECT_NEAR(result.raw_ratio[i], 1.0, 1e-9);
  }
}

TEST(ComputePreferenceTest, RawRatioReflectsShapeDifference) {
  const auto options = test_options();
  // B puts twice the relative mass on the lower half of the support.
  auto biased = make_latency_histogram(options);
  auto unbiased = make_latency_histogram(options);
  for (std::size_t i = 10; i < 90; ++i) {
    unbiased.set_count(i, 100.0);
    biased.set_count(i, i < 50 ? 200.0 : 100.0);
  }
  const auto result = compute_preference(biased, unbiased, options);
  // Total B mass = 40*200 + 40*100 = 12000 → pdf ratio: 200/150 vs 100/150.
  EXPECT_NEAR(result.raw_ratio[20], (200.0 / 12000.0) / (100.0 / 8000.0), 1e-9);
  EXPECT_NEAR(result.raw_ratio[70], (100.0 / 12000.0) / (100.0 / 8000.0), 1e-9);
}

}  // namespace
}  // namespace autosens::core
