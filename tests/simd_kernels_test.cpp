// Golden tests for the runtime-dispatched SIMD kernels (core/simd.h): every
// kernel must produce BIT-IDENTICAL results on the scalar and AVX2 paths,
// including on NaN, ±inf, and values exactly on bin boundaries. Each test
// runs the kernel once with the scalar override and once with the detected
// level; on hardware without AVX2 the two runs coincide and the comparison
// degenerates to a scalar self-check (the scalar path is still exercised).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "core/pipeline.h"
#include "core/simd.h"
#include "stats/histogram.h"
#include "stats/rng.h"
#include "stats/savitzky_golay.h"
#include "telemetry/clock.h"
#include "telemetry/dataset.h"

namespace autosens {
namespace {

namespace simd = core::simd;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Pin the dispatch level for one scope.
class ScopedLevel {
 public:
  explicit ScopedLevel(simd::Level level) { simd::set_level_override(level); }
  ~ScopedLevel() { simd::set_level_override(std::nullopt); }
};

void expect_bitwise_equal(std::span<const double> a, std::span<const double> b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(bits(a[i]), bits(b[i])) << what << " differs at index " << i;
  }
}

/// Run `fn` under the scalar override and under the detected level, return
/// both results.
template <typename Fn>
auto run_both(Fn&& fn) {
  ScopedLevel scalar(simd::Level::kScalar);
  auto scalar_result = fn();
  simd::set_level_override(simd::detected_level());
  auto dispatch_result = fn();
  return std::pair{std::move(scalar_result), std::move(dispatch_result)};
}

/// Sizes that hit the empty, sub-vector-width, one-past-width, block-boundary,
/// and bulk paths of every kernel.
constexpr std::size_t kSizes[] = {0, 1, 3, 4, 5, 7, 8, 31, 1023, 1024, 1025, 10'000};

/// Latency-like values plus every adversarial case: NaN, ±inf, -0.0, exact
/// bin edges, and values one ulp either side of an edge.
std::vector<double> adversarial_values(std::size_t n, double lo, double width,
                                       std::size_t bins, std::uint64_t seed) {
  stats::Random random(seed);
  const double hi = lo + width * static_cast<double>(bins);
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (i % 11) {
      case 0: values[i] = kNan; break;
      case 1: values[i] = kInf; break;
      case 2: values[i] = -kInf; break;
      case 3: values[i] = -0.0; break;
      case 4: {  // exactly on a bin edge
        const auto k = static_cast<double>(i % (bins + 1));
        values[i] = lo + k * width;
        break;
      }
      case 5: {  // one ulp below an edge
        const auto k = static_cast<double>(1 + i % bins);
        values[i] = std::nextafter(lo + k * width, -kInf);
        break;
      }
      case 6: {  // one ulp above an edge
        const auto k = static_cast<double>(i % bins);
        values[i] = std::nextafter(lo + k * width, kInf);
        break;
      }
      case 7: values[i] = random.uniform(lo - width, hi + width); break;  // clamp edges
      case 8: values[i] = random.uniform(-1e308, 1e308); break;           // huge
      default: values[i] = random.uniform(lo, hi); break;                 // in range
    }
  }
  return values;
}

struct BinGeometry {
  double lo;
  double width;
  std::size_t bins;
};

constexpr BinGeometry kGeometries[] = {
    {0.0, 10.0, 300},  // fig3-style latency histogram
    {0.0, 100.0, 30},  // α-bin histogram
    {-5.0, 0.3, 7},    // negative origin, non-representable width, < 1 vector of bins
    {0.0, 10.0, 1},    // single-bin degenerate
};

TEST(SimdKernelsTest, BinIndicesMatchScalarReference) {
  for (const auto& g : kGeometries) {
    for (const std::size_t n : kSizes) {
      const auto values = adversarial_values(n, g.lo, g.width, g.bins, 101 + n);
      const auto [scalar, dispatch] = run_both([&] {
        std::vector<std::uint32_t> out(n, 0xffffffffu);
        simd::bin_indices(values, g.lo, g.width, g.bins, out);
        return out;
      });
      ASSERT_EQ(scalar, dispatch) << "bins=" << g.bins << " n=" << n;
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(scalar[i], simd::bin_index_scalar(values[i], g.lo, g.width, g.bins))
            << "value=" << values[i];
        ASSERT_LT(scalar[i], g.bins);
      }
    }
  }
}

TEST(SimdKernelsTest, HistogramFillBitIdentical) {
  for (const auto& g : kGeometries) {
    for (const std::size_t n : kSizes) {
      // n >= 4*bins exercises the per-lane-partials arm, n < 4*bins the
      // buffered-index arm; the size/geometry sweep covers both.
      const auto values = adversarial_values(n, g.lo, g.width, g.bins, 202 + n);
      const auto [scalar, dispatch] = run_both([&] {
        std::vector<double> counts(g.bins, 0.0);
        simd::histogram_fill(values, g.lo, g.width, counts);
        return counts;
      });
      expect_bitwise_equal(scalar, dispatch, "histogram_fill");
      double mass = 0.0;
      for (const double c : scalar) mass += c;
      EXPECT_EQ(mass, static_cast<double>(n)) << "fill must conserve total count";
    }
  }
}

TEST(SimdKernelsTest, HistogramFillConstBitIdentical) {
  const BinGeometry g = kGeometries[0];
  for (const std::size_t n : kSizes) {
    const auto values = adversarial_values(n, g.lo, g.width, g.bins, 303 + n);
    const auto [scalar, dispatch] = run_both([&] {
      std::vector<double> counts(g.bins, 0.0);
      simd::histogram_fill_const(values, 0.3, g.lo, g.width, counts);
      return counts;
    });
    expect_bitwise_equal(scalar, dispatch, "histogram_fill_const");
  }
}

TEST(SimdKernelsTest, HistogramFillWeightedBitIdentical) {
  const BinGeometry g = kGeometries[0];
  for (const std::size_t n : kSizes) {
    const auto values = adversarial_values(n, g.lo, g.width, g.bins, 404 + n);
    stats::Random random(505 + n);
    std::vector<double> weights(n);
    for (auto& w : weights) w = random.uniform(-2.0, 5.0);
    const auto [scalar, dispatch] = run_both([&] {
      std::vector<double> counts(g.bins, 0.0);
      const double added = simd::histogram_fill_weighted(values, weights, g.lo, g.width, counts);
      counts.push_back(added);  // compare the running weight sum too
      return counts;
    });
    expect_bitwise_equal(scalar, dispatch, "histogram_fill_weighted");
  }
}

TEST(SimdKernelsTest, FirConvolveBitIdentical) {
  for (const std::size_t window : {1u, 5u, 11u}) {
    stats::Random random(606);
    std::vector<double> kernel(window);
    for (auto& k : kernel) k = random.uniform(-1.0, 1.0);
    for (const std::size_t n : kSizes) {
      if (n < window) continue;
      auto signal = adversarial_values(n, 0.0, 1.0, 16, 707 + n);
      const std::size_t n_out = n - window + 1;
      const auto [scalar, dispatch] = run_both([&] {
        std::vector<double> out(n_out, 0.0);
        simd::fir_convolve_valid(signal, kernel, out);
        return out;
      });
      expect_bitwise_equal(scalar, dispatch, "fir_convolve_valid");
    }
  }
}

TEST(SimdKernelsTest, ElementwiseMapsBitIdentical) {
  for (const std::size_t n : kSizes) {
    const auto base = adversarial_values(n, -10.0, 2.0, 64, 808 + n);
    const auto [s1, d1] = run_both([&] {
      auto v = base;
      simd::scale(v, 0.37);
      return v;
    });
    expect_bitwise_equal(s1, d1, "scale");
    const auto [s2, d2] = run_both([&] {
      auto v = base;
      simd::divide(v, 3.7);
      return v;
    });
    expect_bitwise_equal(s2, d2, "divide");
    const auto [s3, d3] = run_both([&] {
      auto v = base;
      simd::clamp_min(v, 0.0);
      return v;
    });
    expect_bitwise_equal(s3, d3, "clamp_min");
    for (std::size_t i = 0; i < n; ++i) {
      if (std::isnan(base[i])) {
        EXPECT_TRUE(std::isnan(s3[i])) << "clamp_min must pass NaN through";
      } else {
        EXPECT_GE(s3[i], 0.0);
      }
    }
    const auto other = adversarial_values(n, -10.0, 2.0, 64, 909 + n);
    const auto [s4, d4] = run_both([&] {
      auto v = base;
      simd::add_assign(v, other);
      return v;
    });
    expect_bitwise_equal(s4, d4, "add_assign");
  }
}

TEST(SimdKernelsTest, MinMaxBitIdentical) {
  for (const std::size_t n : kSizes) {
    if (n == 0) continue;
    const auto values = adversarial_values(n, -50.0, 1.0, 128, 111 + n);
    const auto [scalar, dispatch] = run_both([&] {
      const auto mm = simd::minmax(values);
      return std::pair{bits(mm.min), bits(mm.max)};
    });
    EXPECT_EQ(scalar, dispatch) << "minmax n=" << n;
  }
  // All-NaN spans report {NaN, NaN} on both paths.
  const std::vector<double> nans(9, kNan);
  const auto [scalar, dispatch] = run_both([&] {
    const auto mm = simd::minmax(nans);
    return std::isnan(mm.min) && std::isnan(mm.max);
  });
  EXPECT_TRUE(scalar);
  EXPECT_TRUE(dispatch);
}

TEST(SimdKernelsTest, ReductionsBitIdentical) {
  for (const std::size_t n : kSizes) {
    stats::Random random(222 + n);
    std::vector<double> a(n);
    std::vector<double> b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = random.uniform(0.0, 1000.0);
      b[i] = random.uniform(0.0, 500.0);
    }
    const auto [s1, d1] = run_both([&] { return bits(simd::sum_interleaved(a)); });
    EXPECT_EQ(s1, d1) << "sum_interleaved n=" << n;
    if (n == 0) continue;
    const auto [s2, d2] =
        run_both([&] { return bits(simd::l1_prob_diff(a, b, 1234.5, 678.9)); });
    EXPECT_EQ(s2, d2) << "l1_prob_diff n=" << n;
    const auto [s3, d3] =
        run_both([&] { return bits(simd::bhattacharyya(a, b, 1234.5, 678.9)); });
    EXPECT_EQ(s3, d3) << "bhattacharyya n=" << n;
  }
}

// ---------------------------------------------------------------------------
// Consumer-level checks: the kernels as used by Histogram and SavitzkyGolay.

TEST(SimdKernelsTest, HistogramAddAllMatchesElementwiseAdd) {
  const auto values = adversarial_values(5000, 0.0, 10.0, 300, 333);
  stats::Random random(334);
  std::vector<double> weights(values.size());
  for (auto& w : weights) w = random.uniform(0.1, 3.0);

  stats::Histogram elementwise(0.0, 10.0, 300);
  for (std::size_t i = 0; i < values.size(); ++i) elementwise.add(values[i], weights[i]);

  const auto [scalar, dispatch] = run_both([&] {
    stats::Histogram bulk(0.0, 10.0, 300);
    bulk.add_all(values, weights);
    std::vector<double> out(bulk.counts().begin(), bulk.counts().end());
    out.push_back(bulk.total_weight());
    return out;
  });
  expect_bitwise_equal(scalar, dispatch, "Histogram::add_all(values, weights)");
  for (std::size_t i = 0; i < 300; ++i) {
    ASSERT_EQ(bits(scalar[i]), bits(elementwise.count(i))) << "bin " << i;
  }
  // The bulk total uses the fixed interleaved reduction, so it matches
  // sum_interleaved bit-for-bit; against the elementwise serial fold the
  // summation-order difference grows with n, so allow a relative tolerance.
  EXPECT_EQ(bits(scalar.back()), bits(core::simd::sum_interleaved(weights)));
  EXPECT_NEAR(scalar.back(), elementwise.total_weight(),
              1e-12 * elementwise.total_weight());
}

TEST(SimdKernelsTest, SavitzkyGolaySmoothBitIdentical) {
  stats::Random random(444);
  std::vector<double> signal(4097);
  for (auto& v : signal) v = random.uniform(0.0, 10.0);
  const auto [scalar, dispatch] = run_both(
      [&] { return stats::savgol_smooth(signal, 11, 3); });
  expect_bitwise_equal(scalar, dispatch, "savgol_smooth");
}

#ifndef NDEBUG
TEST(SimdKernelsDeathTest, AddAllAssertsOnSpanLengthMismatch) {
  stats::Histogram histogram(0.0, 10.0, 10);
  const std::vector<double> values(8, 1.0);
  const std::vector<double> weights(7, 1.0);
  EXPECT_DEATH(histogram.add_all(values, weights), "length mismatch");
}
#endif

// ---------------------------------------------------------------------------
// End-to-end: the full analysis is bit-identical across SIMD/scalar dispatch
// and across thread counts (the PR 1 determinism contract must survive
// vectorization).

telemetry::Dataset synthetic_dataset(std::size_t n, int days, std::uint64_t seed) {
  stats::Random random(seed);
  telemetry::Dataset dataset;
  dataset.reserve(n);
  const std::int64_t begin = 400 * telemetry::kMillisPerDay;
  const auto span = static_cast<double>(days) * telemetry::kMillisPerDay;
  for (std::size_t i = 0; i < n; ++i) {
    telemetry::ActionRecord record;
    record.time_ms = begin + static_cast<std::int64_t>(
                                 span * static_cast<double>(i) / static_cast<double>(n));
    const double hour = static_cast<double>(record.time_ms % telemetry::kMillisPerDay) /
                        static_cast<double>(telemetry::kMillisPerHour);
    const double diurnal = 120.0 * std::sin(hour / 24.0 * 2.0 * 3.141592653589793);
    record.latency_ms = std::min(
        2900.0, 180.0 + diurnal + 250.0 * -std::log(1.0 - random.uniform(0.0, 1.0)));
    record.user_id = i % 499;
    record.action = telemetry::ActionType::kSelectMail;
    record.user_class = telemetry::UserClass::kConsumer;
    dataset.add(record);
  }
  dataset.sort_by_time();
  return dataset;
}

TEST(SimdKernelsTest, AnalyzeBitIdenticalAcrossDispatchAndThreads) {
  const auto dataset = synthetic_dataset(100'000, 10, 77);
  core::AutoSensOptions options;

  options.threads = 1;
  const auto baseline = [&] {
    ScopedLevel scalar(simd::Level::kScalar);
    return core::analyze(dataset, options);
  }();

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    for (const simd::Level level : {simd::Level::kScalar, simd::detected_level()}) {
      ScopedLevel pin(level);
      options.threads = threads;
      const auto run = core::analyze(dataset, options);
      const char* what = level == simd::Level::kScalar ? "scalar" : "dispatch";
      SCOPED_TRACE(testing::Message() << "threads=" << threads << " level=" << what);
      expect_bitwise_equal(baseline.latency_ms, run.latency_ms, "latency_ms");
      expect_bitwise_equal(baseline.raw_ratio, run.raw_ratio, "raw_ratio");
      expect_bitwise_equal(baseline.smoothed, run.smoothed, "smoothed");
      expect_bitwise_equal(baseline.normalized, run.normalized, "normalized");
      ASSERT_EQ(baseline.valid, run.valid);
      ASSERT_EQ(baseline.support_begin, run.support_begin);
      ASSERT_EQ(baseline.support_end, run.support_end);
    }
  }
}

}  // namespace
}  // namespace autosens
