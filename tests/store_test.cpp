#include "telemetry/store/store.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "stats/rng.h"
#include "telemetry/binlog.h"
#include "telemetry/clock.h"
#include "telemetry/store/codec.h"
#include "telemetry/store/footer.h"
#include "telemetry/store/writer.h"

namespace autosens::telemetry::store {
namespace {

/// Fresh temp directory per test (removed up front so write-once stores can
/// be rebuilt across runs).
std::filesystem::path fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir;
}

Dataset random_dataset(std::size_t n, std::uint64_t seed,
                       std::int64_t start_ms = 1'600'000'000'000,
                       std::int64_t mean_gap_ms = 1000) {
  stats::Random random(seed);
  Dataset d;
  std::int64_t t = start_ms;
  for (std::size_t i = 0; i < n; ++i) {
    t += static_cast<std::int64_t>(random.exponential(1.0 / static_cast<double>(mean_gap_ms)));
    d.add({.time_ms = t,
           .user_id = 1000 + random.uniform_index(50),
           .latency_ms = std::round(random.lognormal(5.5, 0.5) * 100.0) / 100.0,
           .action = static_cast<ActionType>(random.uniform_index(kActionTypeCount)),
           .user_class = static_cast<UserClass>(random.uniform_index(kUserClassCount)),
           .status = random.bernoulli(0.05) ? ActionStatus::kError : ActionStatus::kSuccess});
  }
  return d;
}

void expect_equal(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "record " << i;
  }
}

TEST(StoreCodecTest, DeltaI64RoundtripIncludingNegativeFirstValue) {
  const std::vector<std::int64_t> values = {-5'000'000, -5'000'000, -4'999'999, 0,
                                            1'700'000'000'000,
                                            std::numeric_limits<std::int64_t>::max()};
  std::vector<std::uint8_t> encoded;
  codec::encode_delta_i64(values, encoded);
  std::vector<std::int64_t> decoded(values.size());
  codec::decode_delta_i64(encoded, decoded);
  EXPECT_EQ(decoded, values);
}

TEST(StoreCodecTest, DeltaU64RoundtripWithWraparound) {
  const std::vector<std::uint64_t> values = {std::numeric_limits<std::uint64_t>::max(), 0, 7,
                                             std::numeric_limits<std::uint64_t>::max(), 3};
  std::vector<std::uint8_t> encoded;
  codec::encode_delta_u64(values, encoded);
  std::vector<std::uint64_t> decoded(values.size());
  codec::decode_delta_u64(encoded, decoded);
  EXPECT_EQ(decoded, values);
}

TEST(StoreCodecTest, RleRoundtripAndCompression) {
  std::vector<std::uint8_t> values(10'000, 1);
  values[5000] = 0;
  std::vector<std::uint8_t> encoded;
  codec::encode_rle_u8(values, encoded);
  EXPECT_LT(encoded.size(), 16u);  // Three runs.
  std::vector<std::uint8_t> decoded(values.size());
  codec::decode_rle_u8(encoded, decoded);
  EXPECT_EQ(decoded, values);
}

TEST(StoreCodecTest, DecodersRejectTruncationAndTrailingBytes) {
  const std::vector<std::int64_t> values = {1, 2, 3};
  std::vector<std::uint8_t> encoded;
  codec::encode_delta_i64(values, encoded);
  std::vector<std::int64_t> out(values.size());
  auto truncated = encoded;
  truncated.pop_back();
  EXPECT_THROW(codec::decode_delta_i64(truncated, out), std::runtime_error);
  auto trailing = encoded;
  trailing.push_back(0);
  EXPECT_THROW(codec::decode_delta_i64(trailing, out), std::runtime_error);
  std::vector<std::uint8_t> rle_out(2);
  EXPECT_THROW(codec::decode_rle_u8(encoded, rle_out), std::runtime_error);
}

TEST(StoreFooterTest, FooterRoundtrip) {
  PartitionFooter footer;
  footer.rows = 100;
  footer.block_rows = 64;
  footer.min_time_ms = -17;
  footer.max_time_ms = 123456;
  footer.slice_rows[2][1] = 40;
  footer.blocks = {{-17, 500}, {501, 123456}};
  for (std::size_t c = 0; c < kColumnCount; ++c) {
    footer.columns[c].codec = c == 1 ? ColumnCodec::kRaw : ColumnCodec::kDeltaVarint;
    footer.columns[c].block_bytes = {11, 22};
    footer.columns[c].block_crcs = {0xdeadbeef, 0xcafebabe};
    footer.columns[c].stored_bytes = 33;
  }
  const auto bytes = encode_footer(footer);
  const PartitionFooter back = decode_footer(bytes);
  EXPECT_EQ(back.rows, footer.rows);
  EXPECT_EQ(back.min_time_ms, footer.min_time_ms);
  EXPECT_EQ(back.max_time_ms, footer.max_time_ms);
  EXPECT_EQ(back.slice_rows, footer.slice_rows);
  EXPECT_EQ(back.blocks.size(), 2u);
  EXPECT_EQ(back.columns[0].block_bytes, footer.columns[0].block_bytes);
  EXPECT_EQ(back.columns[0].block_crcs, footer.columns[0].block_crcs);

  auto corrupt = bytes;
  corrupt[10] ^= 0xff;
  EXPECT_THROW(decode_footer(corrupt), std::runtime_error);
  auto truncated = bytes;
  truncated.resize(truncated.size() - 1);
  EXPECT_THROW(decode_footer(truncated), std::runtime_error);
}

TEST(StoreFooterTest, ManifestRejectsPathEscapes) {
  PartitionInfo p{.dir_name = "day-000001.0", .day = 1, .shard = 0, .rows = 1};
  auto bytes = encode_manifest(std::vector<PartitionInfo>{p});
  EXPECT_EQ(decode_manifest(bytes).size(), 1u);
  p.dir_name = "../escape";
  bytes = encode_manifest(std::vector<PartitionInfo>{p});
  EXPECT_THROW(decode_manifest(bytes), std::runtime_error);
}

TEST(StoreTest, DatasetRoundtripCompressed) {
  const Dataset dataset = random_dataset(20'000, 11);
  const auto dir = fresh_dir("store_roundtrip");
  StoreOptions options;
  options.partition_rows = 4096;
  options.block_rows = 512;
  build_store(dataset, dir.string(), options);

  const StoredDataset store = StoredDataset::open(dir.string());
  EXPECT_EQ(store.rows(), dataset.size());
  EXPECT_EQ(store.min_time_ms(), dataset.times().front());
  EXPECT_EQ(store.max_time_ms(), dataset.times().back());
  const Dataset back = store.load_all();
  EXPECT_TRUE(back.is_sorted());
  expect_equal(dataset, back);

  // Partition cuts: shards within a day respect partition_rows, and every
  // partition holds exactly one calendar day.
  EXPECT_GT(store.partitions().size(), 1u);
  for (const auto& p : store.partitions()) {
    EXPECT_LE(p.rows, options.partition_rows);
    EXPECT_EQ(day_index(p.min_time_ms), p.day);
    EXPECT_EQ(day_index(p.max_time_ms), p.day);
  }
  // Compression must actually help on sorted telemetry.
  EXPECT_LT(store.stored_bytes(), store.raw_bytes());
}

TEST(StoreTest, DatasetRoundtripRawIsZeroCopy) {
  const Dataset dataset = random_dataset(5'000, 12);
  const auto dir = fresh_dir("store_raw");
  StoreOptions options;
  options.compress = false;
  options.partition_rows = 2048;
  options.block_rows = 256;
  build_store(dataset, dir.string(), options);

  const StoredDataset store = StoredDataset::open(dir.string());
  for (std::size_t i = 0; i < store.partitions().size(); ++i) {
    const PartitionData part = store.read_partition(i);
    EXPECT_EQ(part.zero_copy_columns(), kColumnCount);
    for (std::size_t c = 0; c < kColumnCount; ++c) {
      EXPECT_EQ(store.footer(i).columns[c].codec, ColumnCodec::kRaw);
    }
  }
  expect_equal(dataset, store.load_all());
  // Raw stores trade size for decode-free reads.
  EXPECT_EQ(store.raw_bytes(), store.stored_bytes());
}

TEST(StoreTest, CompressedLatencyStaysZeroCopy) {
  const Dataset dataset = random_dataset(2'000, 13);
  const auto dir = fresh_dir("store_latency_zero_copy");
  build_store(dataset, dir.string(), {.partition_rows = 1024, .block_rows = 128});
  const StoredDataset store = StoredDataset::open(dir.string());
  // Even with compress=true the hot numeric column is raw -> mmap zero-copy.
  EXPECT_EQ(store.footer(0).columns[static_cast<std::size_t>(ColumnId::kLatency)].codec,
            ColumnCodec::kRaw);
  const PartitionData part = store.read_partition(0);
  EXPECT_GE(part.zero_copy_columns(), 1u);
}

TEST(StoreTest, WriterRejectsUnsortedAndOverlappingAppends) {
  const auto dir = fresh_dir("store_unsorted");
  StoreWriter writer(dir, {});
  Dataset dataset;
  dataset.add({.time_ms = 100, .user_id = 1, .latency_ms = 10.0});
  dataset.add({.time_ms = 50, .user_id = 1, .latency_ms = 10.0});
  EXPECT_THROW(writer.append(dataset), std::invalid_argument);

  Dataset sorted = dataset;
  sorted.sort_by_time();
  writer.append(sorted);
  Dataset earlier;
  earlier.add({.time_ms = 75, .user_id = 1, .latency_ms = 10.0});
  EXPECT_THROW(writer.append(earlier), std::invalid_argument);
  writer.finish();
  EXPECT_EQ(writer.rows_written(), 2u);
  EXPECT_THROW(writer.append(sorted), std::invalid_argument);
}

TEST(StoreTest, StoresAreWriteOnce) {
  const auto dir = fresh_dir("store_write_once");
  build_store(random_dataset(10, 14), dir.string(), {});
  EXPECT_THROW(StoreWriter(dir, {}), std::runtime_error);
}

TEST(StoreTest, EmptyStoreRoundtrip) {
  const auto dir = fresh_dir("store_empty");
  build_store(Dataset{}, dir.string(), {});
  const StoredDataset store = StoredDataset::open(dir.string());
  EXPECT_EQ(store.rows(), 0u);
  EXPECT_TRUE(store.partitions().empty());
  EXPECT_TRUE(store.load_all().empty());
  EXPECT_THROW(store.min_time_ms(), std::runtime_error);
}

TEST(StoreTest, CorruptedColumnByteFailsCrc) {
  const Dataset dataset = random_dataset(3'000, 15);
  const auto dir = fresh_dir("store_corrupt_column");
  build_store(dataset, dir.string(), {.partition_rows = 4096, .block_rows = 512});
  const StoredDataset store = StoredDataset::open(dir.string());
  const auto victim = dir / store.partitions().front().dir_name / "time.col";
  {
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(200);
    char byte = 0;
    f.seekg(200);
    f.get(byte);
    byte = static_cast<char>(byte ^ 0x1);
    f.seekp(200);
    f.put(byte);
  }
  EXPECT_THROW(store.read_partition(0), std::runtime_error);
}

TEST(StoreTest, CorruptedFooterFailsOpen) {
  const Dataset dataset = random_dataset(500, 16);
  const auto dir = fresh_dir("store_corrupt_footer");
  build_store(dataset, dir.string(), {});
  const StoredDataset store = StoredDataset::open(dir.string());
  const auto victim = dir / store.partitions().front().dir_name /
                      std::string(kFooterFileName);
  {
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(10);
    f.put('\x7f');
  }
  EXPECT_THROW(StoredDataset::open(dir.string()), std::runtime_error);
}

TEST(StoreTest, BinlogRoundtripGolden) {
  // store -> ASL2 -> store must reproduce every partition file byte for
  // byte: the store layout is a pure function of the sorted record sequence.
  const Dataset dataset = random_dataset(12'000, 17);
  const auto dir_a = fresh_dir("store_golden_a");
  const StoreOptions options{.partition_rows = 2048, .block_rows = 256, .compress = true};
  build_store(dataset, dir_a.string(), options);

  const StoredDataset store_a = StoredDataset::open(dir_a.string());
  const std::string binlog = ::testing::TempDir() + "/store_golden.bin";
  export_binlog(store_a, binlog, /*batch_size=*/1000);

  const auto dir_b = fresh_dir("store_golden_b");
  EXPECT_EQ(build_store_from_binlog(binlog, dir_b.string(), options), dataset.size());

  for (const auto& p : store_a.partitions()) {
    for (const auto name : kColumnFileNames) {
      const auto read_file = [](const std::filesystem::path& path) {
        std::ifstream in(path, std::ios::binary);
        return std::string((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
      };
      EXPECT_EQ(read_file(dir_a / p.dir_name / name), read_file(dir_b / p.dir_name / name))
          << p.dir_name << "/" << name;
    }
  }
  expect_equal(dataset, StoredDataset::open(dir_b.string()).load_all());
}

TEST(StoreTest, StreamingConverterMatchesFullLoadBuilder) {
  const Dataset dataset = random_dataset(8'000, 18);
  const std::string binlog = ::testing::TempDir() + "/store_stream.bin";
  write_binlog_file(binlog, dataset, /*batch_size=*/700);

  const StoreOptions options{.partition_rows = 1024, .block_rows = 128, .compress = true};
  const auto dir_stream = fresh_dir("store_stream_a");
  // Sorted ASL2: takes the frame-streaming path.
  EXPECT_EQ(build_store_from_binlog(binlog, dir_stream.string(), options), dataset.size());
  const auto dir_full = fresh_dir("store_stream_b");
  build_store(dataset, dir_full.string(), options);

  const StoredDataset a = StoredDataset::open(dir_stream.string());
  const StoredDataset b = StoredDataset::open(dir_full.string());
  ASSERT_EQ(a.partitions().size(), b.partitions().size());
  expect_equal(a.load_all(), b.load_all());
}

TEST(StoreTest, ConverterFallsBackForLegacyV1Binlogs) {
  const Dataset dataset = random_dataset(2'000, 19);
  const std::string binlog = ::testing::TempDir() + "/store_v1.bin";
  std::ofstream out(binlog, std::ios::binary | std::ios::trunc);
  write_binlog_v1(out, dataset);
  out.close();

  const auto dir = fresh_dir("store_v1");
  EXPECT_EQ(build_store_from_binlog(binlog, dir.string(), {}), dataset.size());
  const Dataset back = StoredDataset::open(dir.string()).load_all();
  // ASL1 quantizes latency to 10 µs; times/ids/enums round-trip exactly.
  ASSERT_EQ(back.size(), dataset.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].time_ms, dataset[i].time_ms);
    EXPECT_EQ(back[i].user_id, dataset[i].user_id);
    EXPECT_NEAR(back[i].latency_ms, dataset[i].latency_ms, 0.01);
  }
}

TEST(StoreTest, ReadRowsTouchesOnlyCoveringBlocks) {
  const Dataset dataset = random_dataset(4'096, 20);
  const auto dir = fresh_dir("store_read_rows");
  build_store(dataset, dir.string(), {.partition_rows = 1u << 20, .block_rows = 256});
  const StoredDataset store = StoredDataset::open(dir.string());
  ASSERT_EQ(store.partitions().size(), 1u);

  const PartitionData all = store.read_partition(0);
  const PartitionData slice = store.read_rows(0, 300, 900);
  ASSERT_EQ(slice.rows(), 600u);
  for (std::size_t i = 0; i < slice.rows(); ++i) {
    EXPECT_EQ(slice.times()[i], all.times()[300 + i]);
    EXPECT_EQ(slice.latencies()[i], all.latencies()[300 + i]);
    EXPECT_EQ(slice.user_ids()[i], all.user_ids()[300 + i]);
  }
  // Rows 300..900 cover blocks 1..3 of 16 -> a fraction of the bytes.
  EXPECT_LT(slice.bytes_read(), all.bytes_read());
}

}  // namespace
}  // namespace autosens::telemetry::store
