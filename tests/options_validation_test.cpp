// Contract tests: invalid AutoSensOptions must fail loudly at the API
// boundary (a silently mis-binned analysis is worse than an exception).
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "simulate/generator.h"
#include "simulate/presets.h"
#include "telemetry/filter.h"
#include "telemetry/validate.h"

namespace autosens::core {
namespace {

class OptionsValidationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto generated =
        simulate::WorkloadGenerator(simulate::paper_config(simulate::Scale::kTiny, 111))
            .generate();
    slice_ = new telemetry::Dataset(
        telemetry::validate(generated.dataset)
            .dataset.filtered(telemetry::by_action(telemetry::ActionType::kSelectMail)));
  }
  static void TearDownTestSuite() {
    delete slice_;
    slice_ = nullptr;
  }
  static telemetry::Dataset* slice_;
};

telemetry::Dataset* OptionsValidationTest::slice_ = nullptr;

TEST_F(OptionsValidationTest, EvenSmoothingWindowThrows) {
  AutoSensOptions options;
  options.smoothing.window = 100;
  EXPECT_THROW(analyze(*slice_, options), std::invalid_argument);
}

TEST_F(OptionsValidationTest, SmoothingDegreeAtLeastWindowThrows) {
  AutoSensOptions options;
  options.smoothing = {.window = 5, .degree = 5};
  EXPECT_THROW(analyze(*slice_, options), std::invalid_argument);
}

TEST_F(OptionsValidationTest, NonPositiveBinWidthThrows) {
  AutoSensOptions options;
  options.bin_width_ms = 0.0;
  EXPECT_THROW(analyze(*slice_, options), std::invalid_argument);
}

TEST_F(OptionsValidationTest, MaxLatencyBelowBinWidthThrows) {
  AutoSensOptions options;
  options.max_latency_ms = 0.0;
  EXPECT_THROW(analyze(*slice_, options), std::invalid_argument);
}

TEST_F(OptionsValidationTest, AlphaSlotNotDividingDayThrows) {
  AutoSensOptions options;
  options.alpha_slot_ms = 7 * telemetry::kMillisPerHour;
  EXPECT_THROW(analyze(*slice_, options), std::invalid_argument);
}

TEST_F(OptionsValidationTest, ReferenceLatencyOutsideDomainThrows) {
  AutoSensOptions options;
  options.reference_latency_ms = 50'000.0;  // beyond max_latency
  EXPECT_THROW(analyze(*slice_, options), std::invalid_argument);
}

TEST_F(OptionsValidationTest, TinySupportGuardStillWorks) {
  // Very strict guards can empty the support; that must throw, not return
  // a bogus curve.
  AutoSensOptions options;
  options.min_biased_count = 1e12;
  EXPECT_THROW(analyze(*slice_, options), std::invalid_argument);
}

TEST_F(OptionsValidationTest, CoarseBinsStillProduceACurve) {
  // Legal-but-unusual settings must work: 50 ms bins, small SG window.
  AutoSensOptions options;
  options.bin_width_ms = 50.0;
  options.smoothing = {.window = 11, .degree = 2};
  const auto result = analyze(*slice_, options);
  EXPECT_NEAR(result.at(options.reference_latency_ms), 1.0, 1e-9);
  EXPECT_GT(result.at(500.0), result.at(1000.0));
}

TEST_F(OptionsValidationTest, WiderDomainWorks) {
  AutoSensOptions options;
  options.max_latency_ms = 10'000.0;
  const auto result = analyze(*slice_, options);
  EXPECT_TRUE(result.covers(1000.0));
}

}  // namespace
}  // namespace autosens::core
