#include "core/slices.h"

#include <gtest/gtest.h>

#include "simulate/generator.h"
#include "simulate/presets.h"
#include "telemetry/validate.h"

namespace autosens::core {
namespace {

using simulate::paper_config;
using simulate::Scale;
using telemetry::ActionType;
using telemetry::UserClass;

/// One shared small workload for all slice tests (generation dominates test
/// time, so build it once).
class SlicesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new simulate::WorkloadConfig(paper_config(Scale::kSmall, 41));
    auto generated = simulate::WorkloadGenerator(*config_).generate();
    dataset_ = new telemetry::Dataset(telemetry::validate(generated.dataset).dataset);
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete config_;
    dataset_ = nullptr;
    config_ = nullptr;
  }
  static simulate::WorkloadConfig* config_;
  static telemetry::Dataset* dataset_;
};

simulate::WorkloadConfig* SlicesTest::config_ = nullptr;
telemetry::Dataset* SlicesTest::dataset_ = nullptr;

TEST_F(SlicesTest, ByActionReturnsFourNamedCurves) {
  const auto curves = preference_by_action(*dataset_, AutoSensOptions{},
                                           UserClass::kBusiness);
  ASSERT_EQ(curves.size(), 4u);
  EXPECT_EQ(curves[0].name, "SelectMail");
  EXPECT_EQ(curves[1].name, "SwitchFolder");
  EXPECT_EQ(curves[2].name, "Search");
  EXPECT_EQ(curves[3].name, "ComposeSend");
  for (const auto& c : curves) {
    EXPECT_GT(c.records, 0u);
    EXPECT_NEAR(c.result.at(300.0), 1.0, 1e-9);
  }
}

TEST_F(SlicesTest, ActionOrderingMatchesFig4) {
  // At 1000 ms: SelectMail < SwitchFolder < Search < ComposeSend.
  const auto curves = preference_by_action(*dataset_, AutoSensOptions{},
                                           UserClass::kBusiness);
  ASSERT_EQ(curves.size(), 4u);
  const double latency = 1000.0;
  ASSERT_TRUE(curves[0].result.covers(latency));
  ASSERT_TRUE(curves[3].result.covers(latency));
  EXPECT_LT(curves[0].result.at(latency), curves[2].result.at(latency));
  EXPECT_LT(curves[1].result.at(latency), curves[3].result.at(latency));
  EXPECT_GT(curves[3].result.at(latency), 0.9);  // ComposeSend ~flat
}

TEST_F(SlicesTest, ByUserClassShowsBusinessSteeper) {
  const auto curves =
      preference_by_user_class(*dataset_, AutoSensOptions{}, ActionType::kSelectMail);
  ASSERT_EQ(curves.size(), 2u);
  EXPECT_EQ(curves[0].name, "Business");
  EXPECT_EQ(curves[1].name, "Consumer");
  const double latency = 1000.0;
  EXPECT_LT(curves[0].result.at(latency), curves[1].result.at(latency));  // Fig 5
}

TEST_F(SlicesTest, ByQuartileShowsConditioningTrend) {
  const auto curves = preference_by_quartile(*dataset_, *dataset_, AutoSensOptions{},
                                             ActionType::kSelectMail);
  ASSERT_EQ(curves.size(), 4u);
  EXPECT_EQ(curves[0].name, "Q1");
  // Q1 (fastest, most sensitive) drops below Q4 (slowest, least sensitive)
  // at the same latency — Fig 6's headline trend.
  const double latency = 900.0;
  ASSERT_TRUE(curves[0].result.covers(latency));
  ASSERT_TRUE(curves[3].result.covers(latency));
  EXPECT_LT(curves[0].result.at(latency), curves[3].result.at(latency));
}

TEST_F(SlicesTest, ByPeriodReturnsCurvesForAllPeriods) {
  const auto curves = preference_by_period(*dataset_, AutoSensOptions{},
                                           ActionType::kSelectMail, UserClass::kBusiness);
  ASSERT_EQ(curves.size(), 4u);
  EXPECT_EQ(curves[0].name, "8am-2pm");
  EXPECT_EQ(curves[3].name, "2am-8am");
  // Fig 7: daytime steeper than deep night at the same latency.
  const double latency = 1000.0;
  if (curves[0].result.covers(latency) && curves[3].result.covers(latency)) {
    EXPECT_LT(curves[0].result.at(latency), curves[3].result.at(latency));
  }
}

TEST_F(SlicesTest, ByMonthSplitsOnThirtyDayBoundaries) {
  // kSmall is 14 days → single month.
  const auto curves = preference_by_month(*dataset_, AutoSensOptions{},
                                          ActionType::kSelectMail);
  ASSERT_EQ(curves.size(), 1u);
  EXPECT_EQ(curves[0].name, "Month1");
}

TEST_F(SlicesTest, EmptyDatasetYieldsNoCurves) {
  const telemetry::Dataset empty;
  EXPECT_TRUE(preference_by_action(empty, AutoSensOptions{}).empty());
  EXPECT_TRUE(preference_by_month(empty, AutoSensOptions{}, ActionType::kSearch).empty());
}

}  // namespace
}  // namespace autosens::core
