#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "simulate/generator.h"
#include "simulate/presets.h"
#include "telemetry/filter.h"
#include "telemetry/validate.h"

namespace autosens::core {
namespace {

using simulate::paper_config;
using simulate::Scale;
using simulate::WorkloadGenerator;
using telemetry::ActionType;
using telemetry::UserClass;

telemetry::Dataset select_mail_business(Scale scale, std::uint64_t seed) {
  auto generated = WorkloadGenerator(paper_config(scale, seed)).generate();
  const auto validated = telemetry::validate(generated.dataset);
  return validated.dataset.filtered(telemetry::all_of(
      {telemetry::by_action(ActionType::kSelectMail),
       telemetry::by_user_class(UserClass::kBusiness)}));
}

TEST(PipelineTest, EmptyDatasetThrows) {
  EXPECT_THROW(analyze(telemetry::Dataset{}, AutoSensOptions{}), std::invalid_argument);
}

TEST(PipelineTest, RecoveryOfPlantedPreferenceShape) {
  // Headline integration check: AutoSens recovers the planted SelectMail
  // curve — monotone decreasing and within tolerance at the paper anchors.
  const auto slice = select_mail_business(Scale::kSmall, 31);
  const auto result = analyze(slice, AutoSensOptions{});
  const auto planted =
      simulate::expected_pooled_curve(paper_config(Scale::kSmall, 31),
                                      ActionType::kSelectMail, UserClass::kBusiness, 300.0);
  EXPECT_NEAR(result.at(300.0), 1.0, 1e-9);
  for (const double latency : {500.0, 750.0, 1000.0}) {
    ASSERT_TRUE(result.covers(latency));
    // Heterogeneity attenuates the measured drop (DESIGN.md); the measured
    // value sits between the planted curve and flat.
    EXPECT_GT(result.at(latency), planted(latency) - 0.05) << latency;
    EXPECT_LT(result.at(latency), 1.0) << latency;
  }
  // Monotone ordering at well-supported anchors.
  EXPECT_GT(result.at(500.0), result.at(1000.0));
}

TEST(PipelineTest, NormalizationImprovesRecovery) {
  // Ablation B in miniature: with the diurnal confounder active and the
  // preference itself period-independent (so confounding is the ONLY
  // difference), the α-normalized curve must recover more of the planted
  // drop than the naive one — the confounder masks the drop (busy hours are
  // both slow and active, inflating B at high latency).
  auto config = paper_config(Scale::kSmall, 32);
  config.preference.period_drop_scale = {1.0, 1.0, 1.0, 1.0};
  auto generated = WorkloadGenerator(config).generate();
  const auto slice = telemetry::validate(generated.dataset)
                         .dataset.filtered(telemetry::all_of(
                             {telemetry::by_action(ActionType::kSelectMail),
                              telemetry::by_user_class(UserClass::kBusiness)}));
  AutoSensOptions with;
  AutoSensOptions without;
  without.normalize_time_confounder = false;
  const auto normalized = analyze(slice, with);
  const auto naive = analyze(slice, without);
  const double drop_normalized = 1.0 - normalized.at(1000.0);
  const double drop_naive = 1.0 - naive.at(1000.0);
  EXPECT_GT(drop_normalized, drop_naive + 0.03);
  // And the normalized drop is closer to the planted one.
  const auto planted = simulate::expected_pooled_curve(config, ActionType::kSelectMail,
                                                       UserClass::kBusiness, 300.0);
  const double drop_planted = 1.0 - planted(1000.0);
  EXPECT_LT(std::abs(drop_normalized - drop_planted), std::abs(drop_naive - drop_planted));
}

TEST(PipelineTest, DetailedResultExposesDistributions) {
  const auto slice = select_mail_business(Scale::kTiny, 33);
  const auto detailed = analyze_detailed(slice, AutoSensOptions{});
  EXPECT_GT(detailed.biased.total_weight(), 0.0);
  EXPECT_GT(detailed.unbiased.total_weight(), 0.0);
  EXPECT_EQ(detailed.slots.size(), 24u);
  EXPECT_EQ(detailed.preference.biased_samples, slice.size());
}

TEST(PipelineTest, SlotsEmptyWhenNormalizationDisabled) {
  const auto slice = select_mail_business(Scale::kTiny, 34);
  AutoSensOptions options;
  options.normalize_time_confounder = false;
  const auto detailed = analyze_detailed(slice, options);
  EXPECT_TRUE(detailed.slots.empty());
}

TEST(PipelineTest, MonteCarloAndVoronoiAgree) {
  const auto slice = select_mail_business(Scale::kSmall, 35);
  AutoSensOptions voronoi;
  AutoSensOptions mc;
  mc.unbiased_method = UnbiasedMethod::kMonteCarlo;
  mc.unbiased_draws = 400'000;
  const auto r1 = analyze(slice, voronoi);
  const auto r2 = analyze(slice, mc);
  for (const double latency : {400.0, 700.0, 1000.0}) {
    EXPECT_NEAR(r1.at(latency), r2.at(latency), 0.04) << latency;
  }
}

TEST(PipelineTest, AnalyzeOverWindowsValidation) {
  const auto slice = select_mail_business(Scale::kTiny, 36);
  EXPECT_THROW(analyze_over_windows(telemetry::Dataset{}, {}, AutoSensOptions{}),
               std::invalid_argument);
  EXPECT_THROW(analyze_over_windows(slice, {}, AutoSensOptions{}), std::invalid_argument);
}

TEST(PipelineTest, AnalyzeOverWindowsMatchesFullWindowAnalysis) {
  // A single window spanning the whole range must reproduce analyze().
  const auto slice = select_mail_business(Scale::kTiny, 37);
  const TimeWindow window{.begin_ms = slice.begin_time(), .end_ms = slice.end_time()};
  const std::vector<TimeWindow> windows = {window};
  const auto full = analyze(slice, AutoSensOptions{});
  const auto windowed = analyze_over_windows(slice, windows, AutoSensOptions{});
  for (const double latency : {400.0, 600.0, 900.0}) {
    if (full.covers(latency) && windowed.preference.covers(latency)) {
      EXPECT_NEAR(full.at(latency), windowed.preference.at(latency), 1e-9);
    }
  }
}

TEST(PipelineTest, DeterministicAcrossRuns) {
  const auto slice = select_mail_business(Scale::kTiny, 38);
  const auto r1 = analyze(slice, AutoSensOptions{});
  const auto r2 = analyze(slice, AutoSensOptions{});
  ASSERT_EQ(r1.normalized.size(), r2.normalized.size());
  for (std::size_t i = 0; i < r1.normalized.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.normalized[i], r2.normalized[i]);
  }
}

}  // namespace
}  // namespace autosens::core
