#include "tools/cli_args.h"

#include <gtest/gtest.h>

namespace autosens::cli {
namespace {

Args parse(std::vector<const char*> argv, const std::set<std::string>& flags = {}) {
  argv.insert(argv.begin(), "prog");
  return Args(static_cast<int>(argv.size()), argv.data(), 1, flags);
}

TEST(CliArgsTest, ParsesValues) {
  const auto args = parse({"--in", "file.csv", "--ref", "300"});
  EXPECT_EQ(args.require("in"), "file.csv");
  EXPECT_EQ(args.get_or("ref", "0"), "300");
  EXPECT_FALSE(args.has("out"));
  EXPECT_EQ(args.get("out"), std::nullopt);
}

TEST(CliArgsTest, BooleanFlagsTakeNoValue) {
  const auto args = parse({"--mc", "--in", "x"}, {"mc"});
  EXPECT_TRUE(args.has("mc"));
  EXPECT_EQ(args.require("in"), "x");
}

TEST(CliArgsTest, MissingValueThrows) {
  EXPECT_THROW(parse({"--in"}), std::invalid_argument);
}

TEST(CliArgsTest, NonFlagTokenThrows) {
  EXPECT_THROW(parse({"positional"}), std::invalid_argument);
  EXPECT_THROW(parse({"--"}), std::invalid_argument);
}

TEST(CliArgsTest, RequireThrowsWhenAbsent) {
  const auto args = parse({});
  EXPECT_THROW(args.require("in"), std::invalid_argument);
}

TEST(CliArgsTest, NumericParsing) {
  const auto args = parse({"--n", "42", "--x", "2.5"});
  EXPECT_EQ(args.get_int("n", 0), 42);
  EXPECT_DOUBLE_EQ(args.get_double("x", 0.0), 2.5);
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 1.5), 1.5);
}

TEST(CliArgsTest, BadNumbersThrow) {
  const auto args = parse({"--n", "abc", "--x", "1.2.3"});
  EXPECT_THROW(args.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(args.get_double("x", 0.0), std::invalid_argument);
}

TEST(CliArgsTest, AllowOnlyRejectsUnknown) {
  const auto args = parse({"--in", "x", "--typo", "y"});
  EXPECT_THROW(args.allow_only({"in"}), std::invalid_argument);
  EXPECT_NO_THROW(args.allow_only({"in", "typo"}));
}

TEST(CliArgsTest, AllowOnlyChecksBooleanFlagsToo) {
  const auto args = parse({"--verbose"}, {"verbose"});
  EXPECT_THROW(args.allow_only({"in"}), std::invalid_argument);
  EXPECT_NO_THROW(args.allow_only({"verbose"}));
}

}  // namespace
}  // namespace autosens::cli
