// Invariance properties of the AutoSens estimator itself — the things that
// must NOT change the normalized latency preference:
//   * translating the whole trace by a whole number of days (α is a
//     time-of-day model, so whole-day shifts are symmetries);
//   * relabeling user ids;
//   * duplicating every record (scale of B cancels in the density ratio);
//   * the random seed of the Monte-Carlo U estimator (up to noise).
// And one that must: reversing the planted preference direction.
#include <gtest/gtest.h>

#include <cmath>

#include "core/pipeline.h"
#include "simulate/generator.h"
#include "simulate/presets.h"
#include "telemetry/clock.h"
#include "telemetry/filter.h"
#include "telemetry/validate.h"

namespace autosens::core {
namespace {

telemetry::Dataset base_slice(std::uint64_t seed) {
  auto generated =
      simulate::WorkloadGenerator(simulate::paper_config(simulate::Scale::kTiny, seed))
          .generate();
  return telemetry::validate(generated.dataset)
      .dataset.filtered(telemetry::by_action(telemetry::ActionType::kSelectMail));
}

std::vector<double> curve_probes(const PreferenceResult& r) {
  std::vector<double> out;
  for (double latency = 350.0; latency <= 1200.0; latency += 50.0) {
    out.push_back(r.covers(latency) ? r.at(latency) : -1.0);
  }
  return out;
}

TEST(EstimatorInvarianceTest, WholeDayTranslation) {
  const auto slice = base_slice(101);
  telemetry::Dataset shifted;
  for (auto record : slice.records()) {
    record.time_ms += 7 * telemetry::kMillisPerDay;
    shifted.add(record);
  }
  shifted.sort_by_time();
  const auto a = analyze(slice, AutoSensOptions{});
  const auto b = analyze(shifted, AutoSensOptions{});
  EXPECT_EQ(curve_probes(a), curve_probes(b));
}

TEST(EstimatorInvarianceTest, UserRelabeling) {
  const auto slice = base_slice(102);
  telemetry::Dataset relabeled;
  for (auto record : slice.records()) {
    record.user_id = record.user_id * 7919 + 13;
    relabeled.add(record);
  }
  relabeled.sort_by_time();
  const auto a = analyze(slice, AutoSensOptions{});
  const auto b = analyze(relabeled, AutoSensOptions{});
  EXPECT_EQ(curve_probes(a), curve_probes(b));
}

TEST(EstimatorInvarianceTest, RecordDuplication) {
  // Doubling every record doubles B's counts and leaves U's time weighting
  // unchanged (duplicates share their Voronoi cell) — the density ratio, and
  // hence the normalized curve, must be essentially unchanged.
  const auto slice = base_slice(103);
  telemetry::Dataset doubled;
  for (const auto& record : slice.records()) {
    doubled.add(record);
    doubled.add(record);
  }
  doubled.sort_by_time();
  const auto a = analyze(slice, AutoSensOptions{});
  // Double the support guard too, so bin admission (and hence the smoothing
  // window's reach) is identical — otherwise the doubled data legitimately
  // widens the supported range and shifts the curve near its old edge.
  AutoSensOptions doubled_options;
  doubled_options.min_biased_count *= 2.0;
  const auto b = analyze(doubled, doubled_options);
  // Probe the well-populated region; past ~1 s a tiny-scale slice has few
  // counts per bin and doubling still perturbs α's per-bin guard admissions.
  for (double latency = 350.0; latency <= 1000.0; latency += 50.0) {
    if (!a.covers(latency) || !b.covers(latency)) continue;
    EXPECT_NEAR(a.at(latency), b.at(latency), 0.02) << latency;
  }
}

TEST(EstimatorInvarianceTest, MonteCarloSeedStability) {
  const auto slice = base_slice(104);
  AutoSensOptions mc1;
  mc1.unbiased_method = UnbiasedMethod::kMonteCarlo;
  mc1.unbiased_draws = 300'000;
  mc1.seed = 1;
  AutoSensOptions mc2 = mc1;
  mc2.seed = 999;
  const auto a = analyze(slice, mc1);
  const auto b = analyze(slice, mc2);
  for (const double latency : {400.0, 700.0, 1000.0}) {
    if (a.covers(latency) && b.covers(latency)) {
      EXPECT_NEAR(a.at(latency), b.at(latency), 0.03) << latency;
    }
  }
}

TEST(EstimatorDirectionTest, InvertedPreferenceProducesRisingCurve) {
  // Sanity that the estimator is not just drawing "down and to the right":
  // plant a preference where users act MORE at high latency (drop scales
  // negative inverts the drop around 1) and the recovered curve must rise.
  auto config = simulate::paper_config(simulate::Scale::kSmall, 105);
  config.preference.user_drop_at_fastest = -0.8;
  config.preference.user_drop_at_slowest = -0.8;
  config.preference.period_drop_scale = {1.0, 1.0, 1.0, 1.0};
  auto generated = simulate::WorkloadGenerator(config).generate();
  const auto slice = telemetry::validate(generated.dataset)
                         .dataset.filtered(
                             telemetry::by_action(telemetry::ActionType::kSelectMail));
  const auto result = analyze(slice, AutoSensOptions{});
  EXPECT_GT(result.at(1000.0), result.at(500.0));
  EXPECT_GT(result.at(1000.0), 1.0);
}

TEST(EstimatorDirectionTest, FlatPreferenceProducesFlatCurve) {
  auto config = simulate::paper_config(simulate::Scale::kSmall, 106);
  config.preference.user_drop_at_fastest = 0.0;
  config.preference.user_drop_at_slowest = 0.0;
  config.preference.period_drop_scale = {1.0, 1.0, 1.0, 1.0};
  auto generated = simulate::WorkloadGenerator(config).generate();
  const auto slice = telemetry::validate(generated.dataset)
                         .dataset.filtered(
                             telemetry::by_action(telemetry::ActionType::kSelectMail));
  const auto result = analyze(slice, AutoSensOptions{});
  for (const double latency : {500.0, 750.0, 1000.0}) {
    EXPECT_NEAR(result.at(latency), 1.0, 0.06) << latency;
  }
}

}  // namespace
}  // namespace autosens::core
