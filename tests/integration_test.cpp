// Whole-system integration: workload generation → telemetry transport
// (loopback TCP) → serialization (CSV / binary log) → validation → AutoSens
// analysis, asserting that every path yields the same preference curve.
#include <gtest/gtest.h>

#include <sstream>

#include "core/pipeline.h"
#include "core/slices.h"
#include "net/collector.h"
#include "net/emitter.h"
#include "simulate/generator.h"
#include "simulate/presets.h"
#include "telemetry/binlog.h"
#include "telemetry/csv.h"
#include "telemetry/filter.h"
#include "telemetry/validate.h"

namespace autosens {
namespace {

using core::AutoSensOptions;
using simulate::paper_config;
using simulate::Scale;

TEST(IntegrationTest, TransportAndStoragePreserveAnalysis) {
  // 1. Generate a small workload.
  auto generated = simulate::WorkloadGenerator(paper_config(Scale::kTiny, 51)).generate();
  const auto& original = generated.dataset;

  // 2. Ship it through the loopback telemetry pipeline.
  net::CollectorThread collector(1);
  {
    net::Emitter emitter(collector.port(), {.batch_size = 512});
    for (std::size_t i = 0; i < original.size(); ++i) emitter.record(original[i]);
    emitter.close();
  }
  const auto collected = collector.join();
  ASSERT_EQ(collected.size(), original.size());

  // 3. Roundtrip through both storage formats.
  std::stringstream bin;
  telemetry::write_binlog(bin, collected);
  const auto from_bin = telemetry::read_binlog(bin);

  std::stringstream csv;
  telemetry::write_csv(csv, from_bin);
  const auto from_csv = telemetry::read_csv(csv);
  ASSERT_TRUE(from_csv.errors.empty());

  // 4. Validate + analyze each copy; curves must be identical (CSV stores
  // latency in full double precision via operator<<? No — default precision;
  // so compare with a small tolerance).
  const auto slice_of = [](const telemetry::Dataset& d) {
    return telemetry::validate(d).dataset.filtered(
        telemetry::by_action(telemetry::ActionType::kSelectMail));
  };
  const auto r_orig = core::analyze(slice_of(original), AutoSensOptions{});
  const auto r_bin = core::analyze(slice_of(from_bin), AutoSensOptions{});
  const auto r_csv = core::analyze(slice_of(from_csv.dataset), AutoSensOptions{});
  for (const double latency : {400.0, 700.0, 1000.0}) {
    if (!r_orig.covers(latency)) continue;
    // Binary log stores latency at 10 µs resolution; the occasional sample
    // sitting within 10 µs of a 10 ms bin edge can hop bins, so the curve
    // agrees to ~1e-3, not bit-exactly.
    EXPECT_NEAR(r_bin.at(latency), r_orig.at(latency), 1e-3) << latency;
    EXPECT_NEAR(r_csv.at(latency), r_orig.at(latency), 0.02) << latency;
  }
}

TEST(IntegrationTest, MonthConsistencyAcrossIndependentTraffic) {
  // Fig 9's premise at test scale: two independent halves of a stationary
  // workload yield nearly the same preference curve.
  auto config = paper_config(Scale::kSmall, 52);
  auto generated = simulate::WorkloadGenerator(config).generate();
  const auto validated = telemetry::validate(generated.dataset);
  const std::int64_t mid = (config.begin_ms + config.end_ms) / 2;
  const auto first = validated.dataset.filtered(telemetry::all_of(
      {telemetry::by_action(telemetry::ActionType::kSelectMail),
       telemetry::by_time_range(config.begin_ms, mid)}));
  const auto second = validated.dataset.filtered(telemetry::all_of(
      {telemetry::by_action(telemetry::ActionType::kSelectMail),
       telemetry::by_time_range(mid, config.end_ms)}));
  const auto r1 = core::analyze(first, AutoSensOptions{});
  const auto r2 = core::analyze(second, AutoSensOptions{});
  for (const double latency : {500.0, 800.0, 1100.0}) {
    if (r1.covers(latency) && r2.covers(latency)) {
      EXPECT_NEAR(r1.at(latency), r2.at(latency), 0.08) << latency;
    }
  }
}

TEST(IntegrationTest, ErrorRecordsDoNotAffectAnalysis) {
  // The scrub step must make analysis independent of logged errors.
  auto config = paper_config(Scale::kTiny, 53);
  config.error_rate = 0.0;
  auto clean = simulate::WorkloadGenerator(config).generate();

  // Inject error records with absurd latencies into a copy.
  telemetry::Dataset polluted = clean.dataset;
  stats::Random random(99);
  for (int i = 0; i < 500; ++i) {
    polluted.add({.time_ms = config.begin_ms +
                             static_cast<std::int64_t>(random.uniform() *
                                                       static_cast<double>(config.end_ms)),
                  .user_id = 1,
                  .latency_ms = 100'000.0,
                  .action = telemetry::ActionType::kSelectMail,
                  .user_class = telemetry::UserClass::kBusiness,
                  .status = telemetry::ActionStatus::kError});
  }
  polluted.sort_by_time();

  const auto slice_of = [](const telemetry::Dataset& d) {
    return telemetry::validate(d).dataset.filtered(
        telemetry::by_action(telemetry::ActionType::kSelectMail));
  };
  const auto r_clean = core::analyze(slice_of(clean.dataset), AutoSensOptions{});
  const auto r_polluted = core::analyze(slice_of(polluted), AutoSensOptions{});
  for (const double latency : {400.0, 800.0}) {
    if (r_clean.covers(latency)) {
      EXPECT_DOUBLE_EQ(r_polluted.at(latency), r_clean.at(latency));
    }
  }
}

}  // namespace
}  // namespace autosens
