#include "stats/correlation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/rng.h"

namespace autosens::stats {
namespace {

TEST(PearsonTest, Validation) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {1.0};
  EXPECT_THROW(pearson(a, b), std::invalid_argument);
  const std::vector<double> single = {1.0};
  EXPECT_THROW(pearson(single, single), std::invalid_argument);
}

TEST(PearsonTest, PerfectPositive) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(PearsonTest, PerfectNegative) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> y = {5.0, 3.0, 1.0};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(PearsonTest, ZeroVarianceReturnsZero) {
  const std::vector<double> x = {1.0, 1.0, 1.0};
  const std::vector<double> y = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(PearsonTest, IndependentNoiseNearZero) {
  Random random(3);
  std::vector<double> x(50'000);
  std::vector<double> y(50'000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = random.normal();
    y[i] = random.normal();
  }
  EXPECT_NEAR(pearson(x, y), 0.0, 0.02);
}

TEST(PearsonTest, KnownValue) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> y = {2.0, 1.0, 4.0, 3.0, 5.0};
  // Hand-computed: cov = 2.0, var_x = 2.5, var_y = 2.5 → r = 0.8.
  EXPECT_NEAR(pearson(x, y), 0.8, 1e-12);
}

TEST(SpearmanTest, MonotoneNonlinearIsOne) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 1; i <= 20; ++i) {
    x.push_back(i);
    y.push_back(std::exp(0.3 * i));  // monotone but very nonlinear
  }
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
  EXPECT_LT(pearson(x, y), 0.95);  // pearson can't see the monotonicity
}

TEST(SpearmanTest, ReversedIsMinusOne) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {10.0, 8.0, 5.0, 1.0};
  EXPECT_NEAR(spearman(x, y), -1.0, 1e-12);
}

TEST(SpearmanTest, TiesUseAverageRanks) {
  const std::vector<double> x = {1.0, 2.0, 2.0, 3.0};
  const std::vector<double> y = {1.0, 2.0, 2.0, 3.0};
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(SpearmanTest, Validation) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {1.0, 2.0, 3.0};
  EXPECT_THROW(spearman(a, b), std::invalid_argument);
}

/// Property: pearson is invariant to affine transforms of either input.
class PearsonAffineProperty : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(PearsonAffineProperty, InvariantUnderPositiveAffine) {
  const auto [scale, shift] = GetParam();
  Random random(11);
  std::vector<double> x(500);
  std::vector<double> y(500);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = random.normal();
    y[i] = 0.5 * x[i] + random.normal();
  }
  const double base = pearson(x, y);
  std::vector<double> transformed = x;
  for (auto& v : transformed) v = scale * v + shift;
  EXPECT_NEAR(pearson(transformed, y), base, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Affine, PearsonAffineProperty,
                         ::testing::Values(std::pair{2.0, 0.0}, std::pair{0.1, 5.0},
                                           std::pair{100.0, -3.0}));

}  // namespace
}  // namespace autosens::stats
