// Standalone ThreadSanitizer harness for the observability layer. Built with
// -fsanitize=thread from its own copy of the sources (see CMakeLists.txt) so
// it runs under TSan even in a regular build, and registered as a plain
// ctest so the tier-1 suite exercises it on every run.
//
// Two scenarios that were historically racy:
//   1. Registry handles updated from many threads while another thread
//      snapshots (samples / write_prometheus) and spans are being recorded.
//   2. CollectorStats polled from the main thread while the collector serves
//      on its own thread (the pre-obs implementation mutated plain size_t
//      fields from the serving thread).
//
// Exits 0 on success; TSan itself fails the test on a detected race.
#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>
#include <vector>

#include "net/collector.h"
#include "net/emitter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "telemetry/record.h"

namespace {

using namespace autosens;

int registry_race() {
  obs::set_enabled(true);
  obs::Tracer::global().set_enabled(true);
  obs::Registry registry;
  auto& counter = registry.counter("tsan_total", "TSan exercise");
  auto& gauge = registry.gauge("tsan_gauge");
  auto& histogram = registry.histogram("tsan_ms", "", {1.0, 10.0, 100.0});

  constexpr int kWriters = 4;
  constexpr int kIterations = 5'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&counter, &gauge, &histogram, t] {
      for (int i = 0; i < kIterations; ++i) {
        obs::Span span("tsan_span", &histogram);
        counter.inc();
        gauge.set(static_cast<double>(t));
        // Late registration from a worker thread must also be safe.
        if (i == kIterations / 2) {
          obs::registry().counter("tsan_late_total").inc();
        }
      }
    });
  }
  // Concurrent snapshots while the writers hammer the handles.
  std::size_t snapshots = 0;
  while (counter.value() < static_cast<std::uint64_t>(kWriters) * kIterations) {
    std::ostringstream sink;
    registry.write_prometheus(sink);
    (void)registry.samples();
    (void)obs::Tracer::global().aggregate();
    ++snapshots;
  }
  for (auto& thread : threads) thread.join();
  obs::Tracer::global().set_enabled(false);
  obs::Tracer::global().clear();
  obs::set_enabled(false);

  if (counter.value() != static_cast<std::uint64_t>(kWriters) * kIterations) {
    std::fprintf(stderr, "registry_race: lost counter updates\n");
    return 1;
  }
  if (histogram.count() != static_cast<std::uint64_t>(kWriters) * kIterations) {
    std::fprintf(stderr, "registry_race: lost histogram observations\n");
    return 1;
  }
  std::fprintf(stderr, "registry_race: ok (%zu concurrent snapshots)\n", snapshots);
  return 0;
}

int collector_stats_race() {
  constexpr std::size_t kRecords = 5'000;
  net::CollectorThread collector(1);
  std::thread emitter_thread([port = collector.port()] {
    net::Emitter emitter(port, {.batch_size = 64});
    for (std::size_t i = 0; i < kRecords; ++i) {
      emitter.record({.time_ms = static_cast<std::int64_t>(i),
                      .user_id = 1,
                      .latency_ms = 100.0,
                      .action = telemetry::ActionType::kSelectMail,
                      .user_class = telemetry::UserClass::kBusiness,
                      .status = telemetry::ActionStatus::kSuccess});
    }
    emitter.close();
  });

  // Poll the stats snapshot as fast as possible while the collector serves:
  // this is exactly the access pattern that raced before the atomic cells.
  std::size_t polls = 0;
  net::CollectorStats last{};
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (last.records < kRecords && std::chrono::steady_clock::now() < deadline) {
    last = collector.stats();
    ++polls;
  }
  emitter_thread.join();
  const auto dataset = collector.join();
  const auto final_stats = collector.stats();

  if (dataset.size() != kRecords) {
    std::fprintf(stderr, "collector_stats_race: got %zu records, want %zu\n",
                 dataset.size(), kRecords);
    return 1;
  }
  if (final_stats.records != kRecords || final_stats.connections != 1) {
    std::fprintf(stderr, "collector_stats_race: bad final stats\n");
    return 1;
  }
  std::fprintf(stderr, "collector_stats_race: ok (%zu stats polls, %zu frames)\n", polls,
               final_stats.frames);
  return 0;
}

}  // namespace

int main() {
  const int registry = registry_race();
  const int collector = collector_stats_race();
  return registry != 0 || collector != 0 ? 1 : 0;
}
