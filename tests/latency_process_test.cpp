#include "simulate/latency_process.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/descriptive.h"
#include "telemetry/clock.h"

namespace autosens::simulate {
namespace {

constexpr std::int64_t kDay = telemetry::kMillisPerDay;

LatencyEnvironment make_env(LatencyProcessOptions options, std::uint64_t seed = 1,
                            std::int64_t days = 2) {
  stats::Random random(seed);
  return LatencyEnvironment(options, 0, days * kDay, random);
}

TEST(LatencyEnvironmentTest, Validation) {
  stats::Random random(1);
  LatencyProcessOptions options;
  EXPECT_THROW(LatencyEnvironment(options, 10, 10, random), std::invalid_argument);
  options.correlation_minutes = 0.0;
  EXPECT_THROW(LatencyEnvironment(options, 0, kDay, random), std::invalid_argument);
  options = {};
  options.base_ms[0] = 0.0;
  EXPECT_THROW(LatencyEnvironment(options, 0, kDay, random), std::invalid_argument);
}

TEST(LatencyEnvironmentTest, DeterministicForFixedSeed) {
  const auto env1 = make_env({}, 7);
  const auto env2 = make_env({}, 7);
  for (std::int64_t t = 0; t < kDay; t += kDay / 100) {
    EXPECT_DOUBLE_EQ(env1.ar_component(t), env2.ar_component(t));
  }
}

TEST(LatencyEnvironmentTest, ArComponentIsContinuousAcrossGridPoints) {
  const auto env = make_env({});
  const std::int64_t step = telemetry::kMillisPerMinute;
  for (std::int64_t t = step; t < 100 * step; t += step) {
    const double before = env.ar_component(t - 1);
    const double at = env.ar_component(t);
    EXPECT_NEAR(before, at, 0.05);  // linear interpolation: tiny jump only
  }
}

TEST(LatencyEnvironmentTest, ArStationaryMomentsMatch) {
  LatencyProcessOptions options;
  options.ar_sigma = 0.5;
  const auto env = make_env(options, 3, /*days=*/60);
  stats::RunningStats stats;
  for (std::int64_t t = 0; t < 60 * kDay; t += telemetry::kMillisPerMinute) {
    stats.add(env.ar_component(t));
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 0.5, 0.1);
}

TEST(LatencyEnvironmentTest, ArAutocorrelationMatchesTimeConstant) {
  LatencyProcessOptions options;
  options.correlation_minutes = 30.0;
  const auto env = make_env(options, 4, /*days=*/60);
  std::vector<double> series;
  for (std::int64_t t = 0; t < 60 * kDay; t += telemetry::kMillisPerMinute) {
    series.push_back(env.ar_component(t));
  }
  // Lag-30min autocorrelation should be ≈ exp(-1).
  EXPECT_NEAR(stats::autocorrelation(series, 30), std::exp(-1.0), 0.08);
}

TEST(LatencyEnvironmentTest, PredictableLatencyScalesWithBase) {
  const auto env = make_env({});
  const auto select = env.predictable_latency(kDay / 2, telemetry::ActionType::kSelectMail, 0.0);
  const auto search = env.predictable_latency(kDay / 2, telemetry::ActionType::kSearch, 0.0);
  // Same time, same offset: ratio equals the base ratio (500/350).
  EXPECT_NEAR(search / select, 500.0 / 350.0, 1e-9);
}

TEST(LatencyEnvironmentTest, UserOffsetShiftsLatencyMultiplicatively) {
  const auto env = make_env({});
  const auto base = env.predictable_latency(1000, telemetry::ActionType::kSearch, 0.0);
  const auto slow = env.predictable_latency(1000, telemetry::ActionType::kSearch, 0.3);
  EXPECT_NEAR(slow / base, std::exp(0.3), 1e-9);
}

TEST(LatencyEnvironmentTest, SampleLatencyCentersOnPredictable) {
  LatencyProcessOptions options;
  options.noise_sigma = 0.2;
  const auto env = make_env(options, 5);
  stats::Random random(99);
  const std::int64_t t = kDay / 3;
  stats::RunningStats stats;
  for (int i = 0; i < 50'000; ++i) {
    stats.add(env.sample_latency(t, telemetry::ActionType::kSelectMail, 0.1, random));
  }
  const double predictable =
      env.predictable_latency(t, telemetry::ActionType::kSelectMail, 0.1);
  // predictable_latency includes the lognormal mean correction, so the
  // sample mean must match it (not the median).
  EXPECT_NEAR(stats.mean() / predictable, 1.0, 0.02);
}

TEST(LatencyEnvironmentTest, ZeroNoiseMakesSamplesDeterministic) {
  LatencyProcessOptions options;
  options.noise_sigma = 0.0;
  const auto env = make_env(options, 6);
  stats::Random random(1);
  const double a = env.sample_latency(123456, telemetry::ActionType::kSearch, 0.0, random);
  const double b = env.sample_latency(123456, telemetry::ActionType::kSearch, 0.0, random);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_DOUBLE_EQ(a, env.predictable_latency(123456, telemetry::ActionType::kSearch, 0.0));
}

TEST(LatencyEnvironmentTest, LoadCurveRaisesDaytimeLatency) {
  LatencyProcessOptions options;
  options.ar_sigma = 0.0;  // isolate the load effect
  options.noise_sigma = 0.0;
  const auto env = make_env(options, 7);
  const auto noon = env.predictable_latency(12 * telemetry::kMillisPerHour,
                                            telemetry::ActionType::kSelectMail, 0.0);
  const auto night = env.predictable_latency(4 * telemetry::kMillisPerHour,
                                             telemetry::ActionType::kSelectMail, 0.0);
  EXPECT_GT(noon, night);
}

TEST(LatencyEnvironmentTest, ClampsOutsideGridRange) {
  const auto env = make_env({});
  EXPECT_DOUBLE_EQ(env.ar_component(-100), env.ar_component(0));
  EXPECT_NO_THROW(env.ar_component(100 * kDay));
}

}  // namespace
}  // namespace autosens::simulate
