// Unit tests of the deterministic parallel execution layer: chunk grids,
// thread resolution, exception propagation, empty ranges, nesting, and the
// byte-identity of chunk-ordered reductions across thread counts.
#include "core/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace autosens::core {
namespace {

TEST(ChunkGridTest, PartitionsWholeRangeContiguously) {
  for (const std::size_t count : {0UL, 1UL, 7UL, 100UL, 8192UL, 1000003UL}) {
    const auto grid = make_chunk_grid(count, 64);
    ASSERT_GE(grid.chunks, 1U);
    EXPECT_EQ(grid.begin(0), 0U);
    EXPECT_EQ(grid.end(grid.chunks - 1), count);
    for (std::size_t c = 1; c < grid.chunks; ++c) {
      EXPECT_EQ(grid.end(c - 1), grid.begin(c));
      EXPECT_GE(grid.end(c), grid.begin(c));
    }
  }
}

TEST(ChunkGridTest, RespectsMinPerChunkAndCap) {
  EXPECT_EQ(make_chunk_grid(100, 1000).chunks, 1U);
  EXPECT_EQ(make_chunk_grid(1000, 100).chunks, 10U);
  EXPECT_EQ(make_chunk_grid(10'000'000, 1, 256).chunks, 256U);
  // Grid depends only on the count, never on thread settings.
  EXPECT_EQ(make_chunk_grid(5000, 64).chunks, make_chunk_grid(5000, 64).chunks);
}

TEST(ResolveThreadsTest, ZeroMeansHardwareAndIsAtLeastOne) {
  EXPECT_GE(resolve_threads(0), 1U);
  EXPECT_EQ(resolve_threads(1), 1U);
  EXPECT_EQ(resolve_threads(8), 8U);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1UL, 2UL, 8UL}) {
    std::vector<std::atomic<int>> visits(10'000);
    parallel_for(visits.size(), threads, 64,
                 [&](std::size_t begin, std::size_t end, std::size_t /*chunk*/) {
                   for (std::size_t i = begin; i < end; ++i) {
                     visits[i].fetch_add(1, std::memory_order_relaxed);
                   }
                 });
    for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
  }
}

TEST(ParallelForTest, EmptyRangeNeverCallsBody) {
  bool called = false;
  parallel_for(0, 8, 1, [&](std::size_t, std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SpawnsRequestedWorkersBeyondHardwareConcurrency) {
  parallel_for(100'000, 8, 64, [](std::size_t, std::size_t, std::size_t) {});
  // The shared pool grows on demand: a threads=8 region keeps 7 workers
  // alive even on a 1-CPU machine, so thread counts are honest everywhere.
  EXPECT_GE(ThreadPool::shared().worker_count(), 7U);
}

TEST(ParallelMapReduceTest, EmptyCountReturnsMapOfEmptyRange) {
  const double out = parallel_map_reduce<double>(
      0, 8, 64, [](std::size_t begin, std::size_t end, std::size_t) {
        EXPECT_EQ(begin, 0U);
        EXPECT_EQ(end, 0U);
        return -1.0;
      },
      [](double& acc, double&& partial) { acc += partial; });
  EXPECT_EQ(out, -1.0);
}

double chunked_sum(std::size_t count, std::size_t threads) {
  return parallel_map_reduce<double>(
      count, threads, 100,
      [](std::size_t begin, std::size_t end, std::size_t) {
        double sum = 0.0;
        for (std::size_t i = begin; i < end; ++i) {
          sum += std::sin(static_cast<double>(i)) * 1e-3;
        }
        return sum;
      },
      [](double& acc, double&& partial) { acc += partial; });
}

TEST(ParallelMapReduceTest, FloatingReductionIsByteIdenticalAcrossThreadCounts) {
  const double serial = chunked_sum(123'457, 1);
  for (const std::size_t threads : {2UL, 4UL, 8UL}) {
    const double parallel = chunked_sum(123'457, threads);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(serial), std::bit_cast<std::uint64_t>(parallel))
        << "threads=" << threads;
  }
}

TEST(ParallelMapReduceTest, ComputesCorrectIntegerSum) {
  const auto total = parallel_map_reduce<std::int64_t>(
      100'000, 8, 64,
      [](std::size_t begin, std::size_t end, std::size_t) {
        std::int64_t sum = 0;
        for (std::size_t i = begin; i < end; ++i) sum += static_cast<std::int64_t>(i);
        return sum;
      },
      [](std::int64_t& acc, std::int64_t&& partial) { acc += partial; });
  EXPECT_EQ(total, 100'000LL * 99'999LL / 2);
}

TEST(ThreadPoolTest, ExceptionsPropagateToTheCaller) {
  EXPECT_THROW(
      parallel_for(10'000, 8, 10,
                   [](std::size_t, std::size_t, std::size_t chunk) {
                     if (chunk % 2 == 1) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ThreadPoolTest, SerialRegionThrowsFirstFailingChunkInOrder) {
  try {
    parallel_for(1000, 1, 10, [](std::size_t, std::size_t, std::size_t chunk) {
      if (chunk >= 3) throw std::runtime_error("chunk " + std::to_string(chunk));
    });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "chunk 3");
  }
}

TEST(ThreadPoolTest, PoolSurvivesAFailedRegion) {
  EXPECT_THROW(parallel_for(1000, 8, 10,
                            [](std::size_t, std::size_t, std::size_t) {
                              throw std::runtime_error("boom");
                            }),
               std::runtime_error);
  // The next region runs normally.
  std::atomic<std::size_t> visited{0};
  parallel_for(1000, 8, 10, [&](std::size_t begin, std::size_t end, std::size_t) {
    visited.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(visited.load(), 1000U);
}

TEST(ThreadPoolTest, NestedRegionsSerializeInline) {
  std::atomic<std::size_t> inner_total{0};
  std::atomic<bool> saw_nested_flag{true};
  parallel_for_items(4, 8, [&](std::size_t) {
    // Whether this item runs on a worker or the caller, a region is active
    // somewhere; inner regions must run inline and in chunk order.
    std::size_t last_chunk = 0;
    bool ordered = true;
    parallel_for(1000, 8, 10, [&](std::size_t begin, std::size_t end, std::size_t chunk) {
      if (!ThreadPool::in_parallel_region()) saw_nested_flag = false;
      if (chunk < last_chunk) ordered = false;
      last_chunk = chunk;
      inner_total.fetch_add(end - begin, std::memory_order_relaxed);
    });
    if (!ordered) saw_nested_flag = false;
  });
  EXPECT_TRUE(saw_nested_flag.load());
  EXPECT_EQ(inner_total.load(), 4U * 1000U);
}

TEST(ThreadPoolTest, ConcurrentTopLevelCallersAreSerializedSafely) {
  std::atomic<std::int64_t> totals[2] = {{0}, {0}};
  std::thread a([&] {
    parallel_for(50'000, 4, 100, [&](std::size_t begin, std::size_t end, std::size_t) {
      totals[0].fetch_add(static_cast<std::int64_t>(end - begin));
    });
  });
  std::thread b([&] {
    parallel_for(60'000, 4, 100, [&](std::size_t begin, std::size_t end, std::size_t) {
      totals[1].fetch_add(static_cast<std::int64_t>(end - begin));
    });
  });
  a.join();
  b.join();
  EXPECT_EQ(totals[0].load(), 50'000);
  EXPECT_EQ(totals[1].load(), 60'000);
}

TEST(ParallelForItemsTest, VisitsItemsOncePerIndex) {
  std::vector<std::atomic<int>> visits(257);
  parallel_for_items(visits.size(), 8, [&](std::size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

}  // namespace
}  // namespace autosens::core
