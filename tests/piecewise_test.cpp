#include "stats/piecewise.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace autosens::stats {
namespace {

TEST(PiecewiseLinearCurveTest, RejectsEmptyAnchors) {
  EXPECT_THROW(PiecewiseLinearCurve({}), std::invalid_argument);
}

TEST(PiecewiseLinearCurveTest, RejectsNonIncreasingX) {
  EXPECT_THROW(PiecewiseLinearCurve({{1.0, 0.0}, {1.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(PiecewiseLinearCurve({{2.0, 0.0}, {1.0, 1.0}}), std::invalid_argument);
}

TEST(PiecewiseLinearCurveTest, SingleAnchorIsConstant) {
  const PiecewiseLinearCurve curve({{5.0, 3.0}});
  EXPECT_DOUBLE_EQ(curve(-100.0), 3.0);
  EXPECT_DOUBLE_EQ(curve(5.0), 3.0);
  EXPECT_DOUBLE_EQ(curve(100.0), 3.0);
}

TEST(PiecewiseLinearCurveTest, InterpolatesBetweenAnchors) {
  const PiecewiseLinearCurve curve({{0.0, 0.0}, {10.0, 100.0}});
  EXPECT_DOUBLE_EQ(curve(5.0), 50.0);
  EXPECT_DOUBLE_EQ(curve(2.5), 25.0);
}

TEST(PiecewiseLinearCurveTest, HitsAnchorsExactly) {
  const PiecewiseLinearCurve curve({{0.0, 1.0}, {1.0, 5.0}, {3.0, 2.0}});
  EXPECT_DOUBLE_EQ(curve(0.0), 1.0);
  EXPECT_DOUBLE_EQ(curve(1.0), 5.0);
  EXPECT_DOUBLE_EQ(curve(3.0), 2.0);
}

TEST(PiecewiseLinearCurveTest, ClampsOutsideRange) {
  const PiecewiseLinearCurve curve({{1.0, 10.0}, {2.0, 20.0}});
  EXPECT_DOUBLE_EQ(curve(0.0), 10.0);
  EXPECT_DOUBLE_EQ(curve(3.0), 20.0);
}

TEST(PiecewiseLinearCurveTest, MinMaxX) {
  const PiecewiseLinearCurve curve({{1.0, 0.0}, {7.0, 0.0}});
  EXPECT_DOUBLE_EQ(curve.min_x(), 1.0);
  EXPECT_DOUBLE_EQ(curve.max_x(), 7.0);
}

TEST(PiecewiseLinearCurveTest, WithDropScaledScalesDropFromOne) {
  const PiecewiseLinearCurve curve({{0.0, 1.0}, {10.0, 0.6}});
  const auto scaled = curve.with_drop_scaled(0.5);
  EXPECT_DOUBLE_EQ(scaled(0.0), 1.0);   // fixpoint at y = 1
  EXPECT_DOUBLE_EQ(scaled(10.0), 0.8);  // drop of 0.4 halved
}

TEST(PiecewiseLinearCurveTest, WithDropScaledAmplifiesAboveOne) {
  const PiecewiseLinearCurve curve({{0.0, 1.1}, {10.0, 1.0}});
  const auto scaled = curve.with_drop_scaled(2.0);
  EXPECT_NEAR(scaled(0.0), 1.2, 1e-12);
}

TEST(PiecewiseLinearCurveTest, NormalizedAtDividesByReference) {
  const PiecewiseLinearCurve curve({{0.0, 2.0}, {10.0, 4.0}});
  const auto normalized = curve.normalized_at(0.0);
  EXPECT_DOUBLE_EQ(normalized(0.0), 1.0);
  EXPECT_DOUBLE_EQ(normalized(10.0), 2.0);
}

TEST(PiecewiseLinearCurveTest, NormalizedAtInteriorReference) {
  const PiecewiseLinearCurve curve({{0.0, 2.0}, {10.0, 4.0}});
  const auto normalized = curve.normalized_at(5.0);  // value 3 there
  EXPECT_NEAR(normalized(5.0), 1.0, 1e-12);
}

TEST(PiecewiseLinearCurveTest, NormalizedAtZeroReferenceThrows) {
  const PiecewiseLinearCurve curve({{0.0, 0.0}, {10.0, 4.0}});
  EXPECT_THROW(curve.normalized_at(0.0), std::invalid_argument);
}

/// Property: interpolation stays within the envelope of neighboring anchors.
class PiecewiseEnvelopeProperty : public ::testing::TestWithParam<double> {};

TEST_P(PiecewiseEnvelopeProperty, ValueWithinAnchorEnvelope) {
  const PiecewiseLinearCurve curve(
      {{0.0, 1.0}, {100.0, 0.9}, {500.0, 0.7}, {1500.0, 0.6}, {3000.0, 0.55}});
  const double x = GetParam();
  const double y = curve(x);
  EXPECT_GE(y, 0.55);
  EXPECT_LE(y, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Xs, PiecewiseEnvelopeProperty,
                         ::testing::Values(-10.0, 0.0, 50.0, 100.0, 777.0, 2999.0, 5000.0));

}  // namespace
}  // namespace autosens::stats
