// Failure injection: latency incidents (outage episodes where the whole
// environment slows down). Verifies both the simulator mechanics and the
// robustness of the AutoSens estimate to incident-polluted traces.
#include <gtest/gtest.h>

#include <cmath>

#include "core/pipeline.h"
#include "simulate/generator.h"
#include "simulate/presets.h"
#include "telemetry/clock.h"
#include "telemetry/filter.h"
#include "telemetry/validate.h"

namespace autosens::simulate {
namespace {

constexpr std::int64_t kDay = telemetry::kMillisPerDay;
constexpr std::int64_t kHour = telemetry::kMillisPerHour;

TEST(IncidentTest, EnvironmentValidatesIncidents) {
  stats::Random random(1);
  LatencyProcessOptions options;
  options.incidents = {{.begin_ms = 100, .end_ms = 100, .log_shift = 0.5}};
  EXPECT_THROW(LatencyEnvironment(options, 0, kDay, random), std::invalid_argument);
  options.incidents = {{.begin_ms = 100, .end_ms = 200, .log_shift = 0.5},
                       {.begin_ms = 150, .end_ms = 300, .log_shift = 0.5}};
  EXPECT_THROW(LatencyEnvironment(options, 0, kDay, random), std::invalid_argument);
}

TEST(IncidentTest, ShiftAppliesOnlyInsideWindow) {
  stats::Random random(2);
  LatencyProcessOptions options;
  options.incidents = {{.begin_ms = 2 * kHour, .end_ms = 3 * kHour, .log_shift = 0.7},
                       {.begin_ms = 5 * kHour, .end_ms = 6 * kHour, .log_shift = -0.2}};
  const LatencyEnvironment env(options, 0, kDay, random);
  EXPECT_DOUBLE_EQ(env.incident_shift(0), 0.0);
  EXPECT_DOUBLE_EQ(env.incident_shift(2 * kHour), 0.7);
  EXPECT_DOUBLE_EQ(env.incident_shift(3 * kHour - 1), 0.7);
  EXPECT_DOUBLE_EQ(env.incident_shift(3 * kHour), 0.0);
  EXPECT_DOUBLE_EQ(env.incident_shift(5 * kHour + 1), -0.2);
  EXPECT_DOUBLE_EQ(env.incident_shift(7 * kHour), 0.0);
}

TEST(IncidentTest, IncidentRaisesMeasuredLatency) {
  stats::Random random(3);
  LatencyProcessOptions options;
  options.ar_sigma = 0.0;
  options.noise_sigma = 0.0;
  options.incidents = {{.begin_ms = 10 * kHour, .end_ms = 12 * kHour, .log_shift = 0.7}};
  const LatencyEnvironment env(options, 0, kDay, random);
  const double normal =
      env.predictable_latency(9 * kHour, telemetry::ActionType::kSelectMail, 0.0);
  const double during =
      env.predictable_latency(11 * kHour, telemetry::ActionType::kSelectMail, 0.0);
  EXPECT_NEAR(during / normal,
              std::exp(0.7) * std::exp(env.options().load_curve.at_time(11 * kHour) -
                                       env.options().load_curve.at_time(9 * kHour)),
              1e-9);
}

TEST(IncidentTest, UsersActLessDuringIncidents) {
  // The planted preference responds to the incident: activity per unit time
  // drops while the environment is slow.
  auto config = paper_config(Scale::kSmall, 91);
  // One 6-hour severe incident per week, during business hours.
  config.latency.incidents = {
      {.begin_ms = 1 * kDay + 9 * kHour, .end_ms = 1 * kDay + 15 * kHour, .log_shift = 1.2},
      {.begin_ms = 8 * kDay + 9 * kHour, .end_ms = 8 * kDay + 15 * kHour, .log_shift = 1.2}};
  auto with_incident = WorkloadGenerator(config).generate();

  auto baseline_config = paper_config(Scale::kSmall, 91);
  auto baseline = WorkloadGenerator(baseline_config).generate();

  const auto count_in = [](const telemetry::Dataset& d, std::int64_t begin,
                           std::int64_t end) {
    std::size_t n = 0;
    for (const auto& r : d.records()) {
      if (r.time_ms >= begin && r.time_ms < end) ++n;
    }
    return n;
  };
  const auto incident_begin = config.latency.incidents[0].begin_ms;
  const auto incident_end = config.latency.incidents[0].end_ms;
  const auto with_count = count_in(with_incident.dataset, incident_begin, incident_end);
  const auto base_count = count_in(baseline.dataset, incident_begin, incident_end);
  EXPECT_LT(static_cast<double>(with_count), 0.85 * static_cast<double>(base_count));
}

TEST(IncidentTest, PreferenceEstimateRobustToIncidents) {
  // The incident adds genuine high-latency/low-activity evidence — exactly
  // the natural experiment AutoSens exploits — so the recovered curve must
  // keep its shape (and anchors) when a trace contains outages.
  auto config = paper_config(Scale::kSmall, 92);
  config.latency.incidents = {
      {.begin_ms = 3 * kDay + 10 * kHour, .end_ms = 3 * kDay + 16 * kHour, .log_shift = 1.0},
      {.begin_ms = 9 * kDay + 2 * kHour, .end_ms = 9 * kDay + 8 * kHour, .log_shift = 1.0}};
  auto generated = WorkloadGenerator(config).generate();
  const auto slice = telemetry::validate(generated.dataset)
                         .dataset.filtered(telemetry::all_of(
                             {telemetry::by_action(telemetry::ActionType::kSelectMail),
                              telemetry::by_user_class(telemetry::UserClass::kBusiness)}));
  const auto result = core::analyze(slice, core::AutoSensOptions{});
  EXPECT_NEAR(result.at(300.0), 1.0, 1e-9);
  EXPECT_GT(result.at(500.0), result.at(1000.0));
  const auto planted = expected_pooled_curve(config, telemetry::ActionType::kSelectMail,
                                             telemetry::UserClass::kBusiness, 300.0);
  EXPECT_NEAR(result.at(1000.0), planted(1000.0), 0.10);
}

}  // namespace
}  // namespace autosens::simulate
