#include "simulate/generator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "simulate/presets.h"
#include "stats/descriptive.h"
#include "telemetry/clock.h"
#include "telemetry/filter.h"

namespace autosens::simulate {
namespace {

constexpr std::int64_t kDay = telemetry::kMillisPerDay;

WorkloadConfig tiny_config(std::uint64_t seed = 1) {
  return paper_config(Scale::kTiny, seed);
}

TEST(GeneratorTest, Validation) {
  auto config = tiny_config();
  config.end_ms = config.begin_ms;
  EXPECT_THROW(WorkloadGenerator{config}, std::invalid_argument);
  config = tiny_config();
  config.error_rate = 1.5;
  EXPECT_THROW(WorkloadGenerator{config}, std::invalid_argument);
}

TEST(GeneratorTest, DeterministicForFixedSeed) {
  const auto config = tiny_config(9);
  auto r1 = WorkloadGenerator(config).generate();
  auto r2 = WorkloadGenerator(config).generate();
  ASSERT_EQ(r1.dataset.size(), r2.dataset.size());
  for (std::size_t i = 0; i < r1.dataset.size(); ++i) {
    EXPECT_EQ(r1.dataset[i], r2.dataset[i]);
  }
}

TEST(GeneratorTest, DifferentSeedsProduceDifferentWorkloads) {
  auto r1 = WorkloadGenerator(tiny_config(1)).generate();
  auto r2 = WorkloadGenerator(tiny_config(2)).generate();
  EXPECT_NE(r1.dataset.size(), r2.dataset.size());
}

TEST(GeneratorTest, RecordsAreSortedAndInRange) {
  const auto config = tiny_config();
  const auto result = WorkloadGenerator(config).generate();
  EXPECT_TRUE(result.dataset.is_sorted());
  EXPECT_GT(result.dataset.size(), 0u);
  for (const auto& r : result.dataset.records()) {
    EXPECT_GE(r.time_ms, config.begin_ms);
    EXPECT_LT(r.time_ms, config.end_ms);
    EXPECT_GT(r.latency_ms, 0.0);
  }
}

TEST(GeneratorTest, AcceptedNeverExceedsCandidates) {
  const auto result = WorkloadGenerator(tiny_config()).generate();
  EXPECT_LE(result.accepted, result.candidates);
  EXPECT_EQ(result.accepted, result.dataset.size());
}

TEST(GeneratorTest, AllConfiguredActionTypesAppear) {
  const auto result = WorkloadGenerator(tiny_config()).generate();
  std::array<std::size_t, telemetry::kActionTypeCount> counts{};
  for (const auto& r : result.dataset.records()) {
    ++counts[static_cast<std::size_t>(r.action)];
  }
  for (const auto c : counts) EXPECT_GT(c, 0u);
  // SelectMail has the highest configured rate.
  EXPECT_GT(counts[0], counts[1]);
}

TEST(GeneratorTest, DisabledActionTypeProducesNothing) {
  auto config = tiny_config();
  config.actions_per_user_day = {10.0, 0.0, 0.0, 0.0, 0.0};
  const auto result = WorkloadGenerator(config).generate();
  for (const auto& r : result.dataset.records()) {
    EXPECT_EQ(r.action, telemetry::ActionType::kSelectMail);
  }
}

TEST(GeneratorTest, ErrorRateApproximatelyHonored) {
  auto config = tiny_config();
  config.error_rate = 0.10;
  const auto result = WorkloadGenerator(config).generate();
  std::size_t errors = 0;
  for (const auto& r : result.dataset.records()) {
    if (r.status == telemetry::ActionStatus::kError) ++errors;
  }
  EXPECT_NEAR(static_cast<double>(errors) / static_cast<double>(result.dataset.size()), 0.10,
              0.02);
}

TEST(GeneratorTest, ZeroErrorRateProducesNoErrors) {
  auto config = tiny_config();
  config.error_rate = 0.0;
  const auto result = WorkloadGenerator(config).generate();
  for (const auto& r : result.dataset.records()) {
    EXPECT_EQ(r.status, telemetry::ActionStatus::kSuccess);
  }
}

TEST(GeneratorTest, DaytimeIsBusierThanNight) {
  // The planted diurnal confounder must be visible in the output.
  const auto result = WorkloadGenerator(tiny_config()).generate();
  std::size_t day = 0;
  std::size_t night = 0;
  for (const auto& r : result.dataset.records()) {
    const int hour = telemetry::hour_of_day(r.time_ms);
    if (hour >= 9 && hour < 15) ++day;
    if (hour >= 1 && hour < 7) ++night;
  }
  EXPECT_GT(day, 3 * night);
}

TEST(GeneratorTest, DaytimeLatencyIsHigherOnAverage) {
  // The load confounder: busy hours have higher latency.
  auto config = tiny_config();
  config.latency.ar_sigma = 0.05;  // suppress the transient component
  const auto result = WorkloadGenerator(config).generate();
  stats::RunningStats day;
  stats::RunningStats night;
  for (const auto& r : result.dataset.records()) {
    const int hour = telemetry::hour_of_day(r.time_ms);
    if (r.action != telemetry::ActionType::kSelectMail) continue;
    if (hour >= 9 && hour < 15) day.add(r.latency_ms);
    if (hour >= 1 && hour < 7) night.add(r.latency_ms);
  }
  EXPECT_GT(day.mean(), night.mean());
}

TEST(GeneratorTest, SlowUsersLogHigherMedianLatency) {
  // Per-user offsets must be recoverable from the logs (basis of Fig 6).
  auto config = tiny_config();
  config.population.offset_sigma = 0.5;  // exaggerate for a clean signal
  WorkloadGenerator generator(config);
  const auto result = generator.generate();
  const auto medians = result.dataset.per_user_median_latency();
  // Compare the users with extreme planted offsets.
  const SimUser* fastest = nullptr;
  const SimUser* slowest = nullptr;
  for (const auto& user : generator.population().users()) {
    if (!fastest || user.latency_offset < fastest->latency_offset) fastest = &user;
    if (!slowest || user.latency_offset > slowest->latency_offset) slowest = &user;
  }
  ASSERT_TRUE(medians.contains(fastest->id));
  ASSERT_TRUE(medians.contains(slowest->id));
  EXPECT_LT(medians.at(fastest->id), medians.at(slowest->id));
}

TEST(GeneratorTest, WeekendDampsActivity) {
  auto config = paper_config(Scale::kSmall, 3);
  config.weekend_factor = 0.3;  // strong effect for a clear test
  const auto result = WorkloadGenerator(config).generate();
  std::size_t weekend = 0;
  std::size_t weekday = 0;
  for (const auto& r : result.dataset.records()) {
    const int dow = telemetry::day_of_week(r.time_ms);
    if (dow == 2 || dow == 3) {
      ++weekend;
    } else {
      ++weekday;
    }
  }
  // 2 of 7 days are weekend; at equal rates weekend ≈ 0.4 × weekday.
  EXPECT_LT(static_cast<double>(weekend),
            0.55 * 0.4 * static_cast<double>(weekday));
}

TEST(GeneratorTest, BothUserClassesPresent) {
  const auto result = WorkloadGenerator(tiny_config()).generate();
  const auto business = result.dataset.filtered(
      telemetry::by_user_class(telemetry::UserClass::kBusiness));
  const auto consumer = result.dataset.filtered(
      telemetry::by_user_class(telemetry::UserClass::kConsumer));
  EXPECT_GT(business.size(), 0u);
  EXPECT_GT(consumer.size(), 0u);
}

TEST(PresetsTest, ScalesOrdering) {
  EXPECT_LT(paper_config(Scale::kTiny).end_ms, paper_config(Scale::kSmall).end_ms);
  EXPECT_LT(paper_config(Scale::kSmall).end_ms, paper_config(Scale::kMedium).end_ms);
  EXPECT_EQ(paper_config(Scale::kMedium).end_ms, 60 * kDay);
  EXPECT_LT(paper_config(Scale::kMedium).population.user_count,
            paper_config(Scale::kFull).population.user_count);
}

TEST(PresetsTest, PooledPeriodScaleNearOne) {
  // Defaults are calibrated so pooled-over-hours analyses see scale ≈ 1.
  EXPECT_NEAR(pooled_period_scale(paper_config(Scale::kMedium)), 1.0, 0.02);
}

TEST(PresetsTest, ExpectedPooledCurveMatchesAnchors) {
  const auto config = paper_config(Scale::kMedium);
  const auto curve = expected_pooled_curve(config, telemetry::ActionType::kSelectMail,
                                           telemetry::UserClass::kBusiness, 300.0);
  EXPECT_NEAR(curve(300.0), 1.0, 1e-9);
  EXPECT_NEAR(curve(500.0), 0.88, 0.02);
  EXPECT_NEAR(curve(1000.0), 0.68, 0.03);
}

TEST(PresetsTest, ExpectedQuartileCurvesAreOrdered) {
  const auto config = paper_config(Scale::kMedium);
  double previous = 0.0;
  for (int q = 3; q >= 0; --q) {
    const auto curve = expected_quartile_curve(config, telemetry::ActionType::kSelectMail,
                                               telemetry::UserClass::kConsumer, q, 300.0);
    const double value = curve(1200.0);
    if (q < 3) {
      EXPECT_LT(value, previous);
    }
    previous = value;
  }
  EXPECT_THROW(expected_quartile_curve(config, telemetry::ActionType::kSelectMail,
                                       telemetry::UserClass::kConsumer, 4, 300.0),
               std::invalid_argument);
}

TEST(PresetsTest, ExpectedAlphaOrdering) {
  const auto alpha = expected_alpha_by_period(paper_config(Scale::kMedium));
  EXPECT_DOUBLE_EQ(alpha[0], 1.0);  // morning reference
  EXPECT_GT(alpha[1], alpha[2]);
  EXPECT_GT(alpha[2], alpha[3]);
  EXPECT_LT(alpha[3], 0.35);  // deep night far below reference
}

}  // namespace
}  // namespace autosens::simulate
