#include "stats/distance.h"

#include <gtest/gtest.h>

#include "stats/rng.h"

namespace autosens::stats {
namespace {

Histogram filled(std::initializer_list<double> counts) {
  Histogram h(0.0, 1.0, counts.size());
  std::size_t i = 0;
  for (const double c : counts) h.set_count(i++, c);
  return h;
}

TEST(DistanceTest, GeometryMismatchThrows) {
  const auto a = filled({1.0, 2.0});
  Histogram b(0.0, 2.0, 2);
  b.add(0.5);
  EXPECT_THROW(total_variation_distance(a, b), std::invalid_argument);
  EXPECT_THROW(hellinger_distance(a, b), std::invalid_argument);
  EXPECT_THROW(ks_statistic(a, b), std::invalid_argument);
  EXPECT_THROW(mean_shift(a, b), std::invalid_argument);
}

TEST(DistanceTest, EmptyHistogramThrows) {
  const auto a = filled({1.0});
  const Histogram empty(0.0, 1.0, 1);
  EXPECT_THROW(total_variation_distance(a, empty), std::invalid_argument);
}

TEST(DistanceTest, IdenticalDistributionsHaveZeroDistance) {
  const auto a = filled({1.0, 2.0, 3.0});
  const auto b = filled({2.0, 4.0, 6.0});  // same shape, different scale
  EXPECT_NEAR(total_variation_distance(a, b), 0.0, 1e-12);
  EXPECT_NEAR(hellinger_distance(a, b), 0.0, 1e-6);
  EXPECT_NEAR(ks_statistic(a, b), 0.0, 1e-12);
  EXPECT_NEAR(mean_shift(a, b), 0.0, 1e-12);
}

TEST(DistanceTest, DisjointDistributionsHaveMaximalDistance) {
  const auto a = filled({1.0, 0.0});
  const auto b = filled({0.0, 1.0});
  EXPECT_NEAR(total_variation_distance(a, b), 1.0, 1e-12);
  EXPECT_NEAR(hellinger_distance(a, b), 1.0, 1e-12);
  EXPECT_NEAR(ks_statistic(a, b), 1.0, 1e-12);
}

TEST(DistanceTest, TotalVariationKnownValue) {
  const auto a = filled({3.0, 1.0});  // p = (.75, .25)
  const auto b = filled({1.0, 3.0});  // q = (.25, .75)
  EXPECT_NEAR(total_variation_distance(a, b), 0.5, 1e-12);
}

TEST(DistanceTest, KsIsMaxCdfGap) {
  const auto a = filled({1.0, 0.0, 1.0});  // cdf .5, .5, 1
  const auto b = filled({0.0, 2.0, 0.0});  // cdf 0, 1, 1
  EXPECT_NEAR(ks_statistic(a, b), 0.5, 1e-12);
}

TEST(DistanceTest, MeanShiftIsSigned) {
  const auto low = filled({1.0, 0.0});   // mass at bin center 0.5
  const auto high = filled({0.0, 1.0});  // mass at bin center 1.5
  EXPECT_NEAR(mean_shift(low, high), -1.0, 1e-12);
  EXPECT_NEAR(mean_shift(high, low), 1.0, 1e-12);
}

TEST(DistanceTest, MetricsOrderedOnNoisyShift) {
  // Hellinger <= sqrt(TV) relationships aside, all three must detect a
  // shifted distribution and grow with the shift.
  Random random(5);
  Histogram base(0.0, 1.0, 100);
  Histogram small_shift(0.0, 1.0, 100);
  Histogram big_shift(0.0, 1.0, 100);
  for (int i = 0; i < 200'000; ++i) {
    const double v = random.normal(50.0, 10.0);
    base.add(v);
    small_shift.add(v + 2.0);
    big_shift.add(v + 10.0);
  }
  EXPECT_LT(total_variation_distance(base, small_shift),
            total_variation_distance(base, big_shift));
  EXPECT_LT(ks_statistic(base, small_shift), ks_statistic(base, big_shift));
  EXPECT_LT(hellinger_distance(base, small_shift), hellinger_distance(base, big_shift));
}

}  // namespace
}  // namespace autosens::stats
