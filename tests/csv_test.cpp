#include "telemetry/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace autosens::telemetry {
namespace {

Dataset sample_dataset() {
  Dataset d;
  d.add({.time_ms = 1000,
         .user_id = 42,
         .latency_ms = 123.45,
         .action = ActionType::kSelectMail,
         .user_class = UserClass::kBusiness,
         .status = ActionStatus::kSuccess});
  d.add({.time_ms = 2000,
         .user_id = 43,
         .latency_ms = 678.9,
         .action = ActionType::kSearch,
         .user_class = UserClass::kConsumer,
         .status = ActionStatus::kError});
  return d;
}

TEST(CsvTest, WriteProducesHeaderAndRows) {
  std::ostringstream out;
  write_csv(out, sample_dataset());
  const std::string text = out.str();
  EXPECT_NE(text.find(kCsvHeader), std::string::npos);
  EXPECT_NE(text.find("1000,42,SelectMail,123.45,Business,Success"), std::string::npos);
  EXPECT_NE(text.find("2000,43,Search,678.9,Consumer,Error"), std::string::npos);
}

TEST(CsvTest, Roundtrip) {
  const auto original = sample_dataset();
  std::stringstream stream;
  write_csv(stream, original);
  const auto result = read_csv(stream);
  EXPECT_TRUE(result.errors.empty());
  ASSERT_EQ(result.dataset.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(result.dataset[i], original[i]);
  }
}

TEST(CsvTest, EmptyInputThrows) {
  std::istringstream in("");
  EXPECT_THROW(read_csv(in), std::runtime_error);
}

TEST(CsvTest, WrongHeaderThrows) {
  std::istringstream in("a,b,c\n1,2,3\n");
  EXPECT_THROW(read_csv(in), std::runtime_error);
}

TEST(CsvTest, HeaderOnlyGivesEmptyDataset) {
  std::istringstream in(std::string(kCsvHeader) + "\n");
  const auto result = read_csv(in);
  EXPECT_TRUE(result.dataset.empty());
  EXPECT_TRUE(result.errors.empty());
}

TEST(CsvTest, MalformedRowsAreReportedWithLineNumbers) {
  std::istringstream in(std::string(kCsvHeader) +
                        "\n"
                        "1000,42,SelectMail,123.45,Business,Success\n"
                        "not_a_number,42,SelectMail,1,Business,Success\n"
                        "1000,42,UnknownAction,1,Business,Success\n"
                        "1000,42,SelectMail,xyz,Business,Success\n"
                        "1000,42,SelectMail,1,Alien,Success\n"
                        "1000,42,SelectMail,1,Business,Maybe\n"
                        "1000,42,SelectMail,1,Business\n"
                        "2000,43,Search,5,Consumer,Success\n");
  const auto result = read_csv(in);
  EXPECT_EQ(result.dataset.size(), 2u);
  ASSERT_EQ(result.errors.size(), 6u);
  EXPECT_EQ(result.errors[0].line, 3u);
  EXPECT_EQ(result.errors[0].message, "bad time_ms");
  EXPECT_EQ(result.errors[1].message, "unknown action type");
  EXPECT_EQ(result.errors[2].message, "bad latency_ms");
  EXPECT_EQ(result.errors[3].message, "unknown user class");
  EXPECT_EQ(result.errors[4].message, "unknown status");
  EXPECT_NE(result.errors[5].message.find("expected 6 fields"), std::string::npos);
}

TEST(CsvTest, BlankLinesAreSkipped) {
  std::istringstream in(std::string(kCsvHeader) +
                        "\n\n1000,42,SelectMail,1,Business,Success\n\n");
  const auto result = read_csv(in);
  EXPECT_EQ(result.dataset.size(), 1u);
  EXPECT_TRUE(result.errors.empty());
}

TEST(CsvTest, WhitespaceAndCrlfTolerated) {
  std::istringstream in(std::string(kCsvHeader) +
                        "\r\n 1000 , 42 , SelectMail , 1.5 , Business , Success \r\n");
  const auto result = read_csv(in);
  ASSERT_EQ(result.dataset.size(), 1u);
  EXPECT_TRUE(result.errors.empty());
  EXPECT_DOUBLE_EQ(result.dataset[0].latency_ms, 1.5);
}

TEST(CsvTest, ResultIsSortedByTime) {
  std::istringstream in(std::string(kCsvHeader) +
                        "\n"
                        "2000,1,SelectMail,1,Business,Success\n"
                        "1000,2,SelectMail,1,Business,Success\n");
  const auto result = read_csv(in);
  ASSERT_EQ(result.dataset.size(), 2u);
  EXPECT_EQ(result.dataset[0].time_ms, 1000);
  EXPECT_TRUE(result.dataset.is_sorted());
}

TEST(CsvTest, FileRoundtrip) {
  const auto original = sample_dataset();
  const std::string path = ::testing::TempDir() + "/autosens_csv_test.csv";
  write_csv_file(path, original);
  const auto result = read_csv_file(path);
  EXPECT_TRUE(result.errors.empty());
  ASSERT_EQ(result.dataset.size(), original.size());
  EXPECT_EQ(result.dataset[0], original[0]);
}

TEST(CsvTest, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/path/file.csv"), std::runtime_error);
}

}  // namespace
}  // namespace autosens::telemetry
