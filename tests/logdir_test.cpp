#include "telemetry/logdir.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "stats/rng.h"
#include "telemetry/binlog.h"

namespace autosens::telemetry {
namespace {

Dataset random_dataset(std::size_t n, std::uint64_t seed) {
  stats::Random random(seed);
  Dataset d;
  std::int64_t t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    t += static_cast<std::int64_t>(random.exponential(0.01)) + 1;
    d.add({.time_ms = t,
           .user_id = 1 + random.uniform_index(20),
           .latency_ms = std::round(random.lognormal(5.5, 0.4) * 100.0) / 100.0});
  }
  return d;
}

std::string temp_dir(const std::string& name) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(LogDirTest, ShardNamesSortLexicographically) {
  EXPECT_EQ(shard_name(0), "autosens-00000.bin");
  EXPECT_EQ(shard_name(42), "autosens-00042.bin");
  EXPECT_LT(shard_name(9), shard_name(10));
}

TEST(LogDirTest, WriteValidation) {
  EXPECT_THROW(write_sharded(temp_dir("ld0"), Dataset{}, 0), std::invalid_argument);
}

TEST(LogDirTest, RoundtripSingleShard) {
  const auto dir = temp_dir("ld1");
  const auto dataset = random_dataset(100, 1);
  const auto paths = write_sharded(dir, dataset, 1000);
  EXPECT_EQ(paths.size(), 1u);
  const auto merged = read_sharded(dir);
  ASSERT_EQ(merged.size(), dataset.size());
  for (std::size_t i = 0; i < merged.size(); ++i) EXPECT_EQ(merged[i], dataset[i]);
}

TEST(LogDirTest, RoundtripManyShards) {
  const auto dir = temp_dir("ld2");
  const auto dataset = random_dataset(1000, 2);
  const auto paths = write_sharded(dir, dataset, 137);
  EXPECT_EQ(paths.size(), (1000 + 136) / 137);
  const auto merged = read_sharded(dir);
  ASSERT_EQ(merged.size(), dataset.size());
  EXPECT_TRUE(merged.is_sorted());
  for (std::size_t i = 0; i < merged.size(); ++i) EXPECT_EQ(merged[i], dataset[i]);
}

TEST(LogDirTest, EmptyDatasetWritesMarkerShard) {
  const auto dir = temp_dir("ld3");
  const auto paths = write_sharded(dir, Dataset{}, 100);
  EXPECT_EQ(paths.size(), 1u);
  EXPECT_TRUE(read_sharded(dir).empty());
}

TEST(LogDirTest, MergesIndependentWrites) {
  // Two collectors write to the same directory under different names: the
  // reader merges whatever *.bin files are present.
  const auto dir = temp_dir("ld4");
  const auto a = random_dataset(200, 3);
  const auto b = random_dataset(300, 4);
  std::filesystem::create_directories(dir);
  write_binlog_file(dir + "/collector-a.bin", a);
  write_binlog_file(dir + "/collector-b.bin", b);
  const auto merged = read_sharded(dir);
  EXPECT_EQ(merged.size(), a.size() + b.size());
  EXPECT_TRUE(merged.is_sorted());
}

TEST(LogDirTest, IgnoresNonBinFiles) {
  const auto dir = temp_dir("ld5");
  write_sharded(dir, random_dataset(50, 5), 100);
  {
    std::ofstream junk(dir + "/notes.txt");
    junk << "not a shard";
  }
  EXPECT_EQ(read_sharded(dir).size(), 50u);
}

TEST(LogDirTest, MissingDirectoryThrows) {
  EXPECT_THROW(read_sharded("/nonexistent/autosens/dir"), std::runtime_error);
}

TEST(LogDirTest, CorruptShardThrows) {
  const auto dir = temp_dir("ld6");
  write_sharded(dir, random_dataset(50, 6), 100);
  {
    std::ofstream corrupt(dir + "/zz-corrupt.bin", std::ios::binary);
    corrupt << "garbage";
  }
  EXPECT_THROW(read_sharded(dir), std::runtime_error);
}

}  // namespace
}  // namespace autosens::telemetry
