#include "core/streaming.h"

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "simulate/generator.h"
#include "simulate/presets.h"
#include "telemetry/clock.h"
#include "telemetry/filter.h"
#include "telemetry/validate.h"

namespace autosens::core {
namespace {

telemetry::Dataset small_slice(std::uint64_t seed) {
  auto generated =
      simulate::WorkloadGenerator(simulate::paper_config(simulate::Scale::kSmall, seed))
          .generate();
  return telemetry::validate(generated.dataset)
      .dataset.filtered(telemetry::by_action(telemetry::ActionType::kSelectMail));
}

TEST(StreamingAutoSensTest, ValidatesOptionsEagerly) {
  AutoSensOptions bad_slot;
  bad_slot.alpha_slot_ms = 7 * telemetry::kMillisPerHour;
  EXPECT_THROW(StreamingAutoSens{bad_slot}, std::invalid_argument);
  AutoSensOptions bad_window;
  bad_window.smoothing.window = 10;
  EXPECT_THROW(StreamingAutoSens{bad_window}, std::invalid_argument);
}

TEST(StreamingAutoSensTest, EmptySnapshotThrows) {
  StreamingAutoSens stream{AutoSensOptions{}};
  EXPECT_THROW(stream.snapshot(), std::logic_error);
  EXPECT_THROW(stream.alpha_by_class(), std::logic_error);
}

TEST(StreamingAutoSensTest, RejectsOutOfOrderRecords) {
  StreamingAutoSens stream{AutoSensOptions{}};
  stream.feed({.time_ms = 1000, .user_id = 1, .latency_ms = 100.0});
  EXPECT_THROW(stream.feed({.time_ms = 999, .user_id = 1, .latency_ms = 100.0}),
               std::invalid_argument);
  EXPECT_NO_THROW(stream.feed({.time_ms = 1000, .user_id = 2, .latency_ms = 100.0}));
}

TEST(StreamingAutoSensTest, ScrubsErrorsAndBadLatencies) {
  StreamingAutoSens stream{AutoSensOptions{}};
  stream.feed({.time_ms = 1, .user_id = 1, .latency_ms = 100.0});
  stream.feed({.time_ms = 2, .user_id = 1, .latency_ms = 100.0,
               .status = telemetry::ActionStatus::kError});
  stream.feed({.time_ms = 3, .user_id = 1, .latency_ms = -5.0});
  EXPECT_EQ(stream.records_seen(), 3u);
  EXPECT_EQ(stream.records_used(), 1u);
}

TEST(StreamingAutoSensTest, SnapshotMatchesBatchAnalysis) {
  // The headline property: streaming over a sorted log converges to the
  // batch estimate (hold-last vs Voronoi weighting differ only by half-gap
  // boundary effects).
  const auto slice = small_slice(121);
  StreamingAutoSens stream{AutoSensOptions{}};
  for (const auto& record : slice.records()) stream.feed(record);
  const auto streaming = stream.snapshot();
  const auto batch = analyze(slice, AutoSensOptions{});
  for (const double latency : {400.0, 600.0, 800.0, 1000.0, 1200.0}) {
    if (!batch.covers(latency) || !streaming.covers(latency)) continue;
    EXPECT_NEAR(streaming.at(latency), batch.at(latency), 0.03) << latency;
  }
  EXPECT_EQ(stream.records_used(), slice.size());
}

TEST(StreamingAutoSensTest, AlphaMatchesDiurnalPattern) {
  const auto slice = small_slice(122);
  StreamingAutoSens stream{AutoSensOptions{}};
  for (const auto& record : slice.records()) stream.feed(record);
  const auto alpha = stream.alpha_by_class();
  ASSERT_EQ(alpha.size(), 24u);
  // Deep night classes are far quieter than late-morning ones.
  EXPECT_LT(alpha[3], 0.5 * alpha[10]);
}

TEST(StreamingAutoSensTest, SnapshotsAreRepeatableAndResumable) {
  const auto slice = small_slice(123);
  StreamingAutoSens stream{AutoSensOptions{}};
  const auto records = slice.records();
  const std::size_t half = records.size() / 2;
  for (std::size_t i = 0; i < half; ++i) stream.feed(records[i]);
  const auto mid1 = stream.snapshot();
  const auto mid2 = stream.snapshot();  // snapshot is const: identical
  ASSERT_EQ(mid1.normalized.size(), mid2.normalized.size());
  for (std::size_t i = 0; i < mid1.normalized.size(); ++i) {
    EXPECT_DOUBLE_EQ(mid1.normalized[i], mid2.normalized[i]);
  }
  // Continue feeding after the snapshot; the estimate keeps refining.
  for (std::size_t i = half; i < records.size(); ++i) stream.feed(records[i]);
  const auto full = stream.snapshot();
  EXPECT_EQ(stream.records_used(), records.size());
  const auto batch = analyze(slice, AutoSensOptions{});
  if (full.covers(800.0) && batch.covers(800.0)) {
    EXPECT_NEAR(full.at(800.0), batch.at(800.0), 0.03);
  }
}

TEST(StreamingAutoSensTest, NormalizationToggleHonored) {
  const auto slice = small_slice(124);
  AutoSensOptions naive_options;
  naive_options.normalize_time_confounder = false;
  StreamingAutoSens normalized{AutoSensOptions{}};
  StreamingAutoSens naive{naive_options};
  for (const auto& record : slice.records()) {
    normalized.feed(record);
    naive.feed(record);
  }
  const auto n = normalized.snapshot();
  const auto u = naive.snapshot();
  // With the confounder uncorrected the measured drop shrinks (cf. the
  // batch Ablation B).
  EXPECT_GT(1.0 - n.at(1000.0), 1.0 - u.at(1000.0));
}

}  // namespace
}  // namespace autosens::core
