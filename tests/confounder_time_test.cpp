#include "core/confounder_time.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/descriptive.h"
#include "stats/rng.h"
#include "simulate/generator.h"
#include "simulate/presets.h"
#include "telemetry/validate.h"

namespace autosens::core {
namespace {

constexpr std::int64_t kHour = telemetry::kMillisPerHour;
constexpr std::int64_t kDay = telemetry::kMillisPerDay;

TEST(TwoSlotExampleTest, ReproducesPaperTable1) {
  // The exact numbers of Table 1: day 90/140 actions at 30%/70% time,
  // night 26/4 actions at 80%/20% time (fractions in percent units, as the
  // paper's own arithmetic uses them).
  const auto r = normalize_two_slot_example(90, 140, 30, 70, 26, 4, 80, 20);
  EXPECT_NEAR(r.alpha_low, 0.108, 0.001);
  EXPECT_NEAR(r.alpha_high, 0.100, 0.001);
  EXPECT_NEAR(r.alpha, 0.104, 0.001);
  EXPECT_NEAR(r.normalized_low, 250.0, 1.0);
  EXPECT_NEAR(r.normalized_high, 38.0, 1.0);
  EXPECT_NEAR(r.activity_low, 3.09, 0.01);
  // The paper reports 1.97, having rounded the normalized count to 38
  // before dividing; unrounded the value is (140 + 38.47) / 90 = 1.983.
  EXPECT_NEAR(r.activity_high, 1.97, 0.02);
  // The naive estimate inverts the conclusion (more actions at high
  // latency). The paper's text computes (90+24)/(30+80) = 1.04 — the "24"
  // is a typo for the table's 26, giving 1.05 with the table's numbers.
  EXPECT_NEAR(r.naive_low, 1.05, 0.01);
  EXPECT_NEAR(r.naive_high, 1.6, 0.01);
  EXPECT_GT(r.naive_high, r.naive_low);
  // The normalized estimate restores the intuitive ordering.
  EXPECT_GT(r.activity_low, r.activity_high);
}

telemetry::Dataset synthetic_confounded_dataset() {
  // Two time-of-day regimes over several days: "day" hours (8-20) have
  // 5x the activity; latency is identical across hours, so every slot's
  // alpha should reflect activity alone.
  telemetry::Dataset d;
  stats::Random random(1);
  for (int day = 0; day < 10; ++day) {
    for (int hour = 0; hour < 24; ++hour) {
      const bool busy = hour >= 8 && hour < 20;
      const std::int64_t slot_begin = day * kDay + hour * kHour;
      const int count = busy ? 200 : 40;
      for (int i = 0; i < count; ++i) {
        d.add({.time_ms = slot_begin + static_cast<std::int64_t>(random.uniform() *
                                                                 static_cast<double>(kHour)),
               .user_id = 1,
               .latency_ms = 100.0 + random.uniform() * 200.0});
      }
    }
  }
  d.sort_by_time();
  return d;
}

TEST(TimeNormalizerTest, Validation) {
  AutoSensOptions options;
  EXPECT_THROW(TimeNormalizer(telemetry::Dataset{}, options), std::invalid_argument);
  options.alpha_slot_ms = 7 * kHour;  // does not divide a day
  EXPECT_THROW(TimeNormalizer(synthetic_confounded_dataset(), options),
               std::invalid_argument);
}

TEST(TimeNormalizerTest, OneSlotPerTimeOfDayClass) {
  AutoSensOptions options;
  const TimeNormalizer normalizer(synthetic_confounded_dataset(), options);
  EXPECT_EQ(normalizer.slots().size(), 24u);
}

TEST(TimeNormalizerTest, AlphaTracksPlantedActivityRatio) {
  AutoSensOptions options;
  const TimeNormalizer normalizer(synthetic_confounded_dataset(), options);
  // Busy hours have alpha ≈ 1 (references are busy), night ≈ 40/200 = 0.2.
  const double busy_alpha = normalizer.alpha_at(10 * kHour);
  const double night_alpha = normalizer.alpha_at(3 * kHour);
  EXPECT_NEAR(night_alpha / busy_alpha, 0.2, 0.05);
}

TEST(TimeNormalizerTest, AlphaIsSameForAllDaysAtSameHour) {
  AutoSensOptions options;
  const TimeNormalizer normalizer(synthetic_confounded_dataset(), options);
  EXPECT_DOUBLE_EQ(normalizer.alpha_at(10 * kHour),
                   normalizer.alpha_at(5 * kDay + 10 * kHour));
}

TEST(TimeNormalizerTest, NormalizedBiasedEqualizesSlotRates) {
  // After 1/alpha weighting, the histogram total should be roughly
  // 24 * (weight of a busy hour's records), i.e. night hours upweighted.
  AutoSensOptions options;
  const auto dataset = synthetic_confounded_dataset();
  const TimeNormalizer normalizer(dataset, options);
  const auto normalized = normalizer.normalized_biased(dataset);
  // Every hour contributes ~200 * 10 days of effective weight.
  EXPECT_NEAR(normalized.total_weight(), 24.0 * 200.0 * 10.0, 0.15 * 24.0 * 200.0 * 10.0);
}

TEST(TimeNormalizerTest, UniformActivityGivesUniformAlpha) {
  telemetry::Dataset d;
  stats::Random random(2);
  for (int day = 0; day < 6; ++day) {
    for (int hour = 0; hour < 24; ++hour) {
      for (int i = 0; i < 100; ++i) {
        d.add({.time_ms = day * kDay + hour * kHour +
                          static_cast<std::int64_t>(random.uniform() * kHour),
               .user_id = 1,
               .latency_ms = 200.0 + random.uniform() * 100.0});
      }
    }
  }
  d.sort_by_time();
  const TimeNormalizer normalizer(d, AutoSensOptions{});
  for (const auto& slot : normalizer.slots()) {
    EXPECT_NEAR(slot.alpha, 1.0, 0.15) << "slot " << slot.slot;
  }
}

TEST(TimeNormalizerTest, SlotStatsAccounting) {
  const auto dataset = synthetic_confounded_dataset();
  const TimeNormalizer normalizer(dataset, AutoSensOptions{});
  std::size_t total = 0;
  for (const auto& slot : normalizer.slots()) {
    total += slot.records;
    EXPECT_GT(slot.total_time_ms, 0.0);
  }
  EXPECT_EQ(total, dataset.size());
}

TEST(PeriodWindowsTest, CoverPeriodHours) {
  telemetry::Dataset d;
  d.add({.time_ms = 0, .user_id = 1, .latency_ms = 1.0});
  d.add({.time_ms = 3 * kDay - 1, .user_id = 1, .latency_ms = 1.0});
  const auto windows = period_windows(d, telemetry::DayPeriod::kMorning);
  // 3 full days → 3 morning windows of 6 h each.
  ASSERT_EQ(windows.size(), 3u);
  for (const auto& w : windows) {
    EXPECT_EQ(w.length(), 6 * kHour);
    EXPECT_EQ(telemetry::hour_of_day(w.begin_ms), 8);
  }
}

TEST(PeriodWindowsTest, EveningWrapsMidnight) {
  telemetry::Dataset d;
  d.add({.time_ms = 0, .user_id = 1, .latency_ms = 1.0});
  d.add({.time_ms = 2 * kDay - 1, .user_id = 1, .latency_ms = 1.0});
  const auto windows = period_windows(d, telemetry::DayPeriod::kEvening);
  // Day -1's evening [t=-4h, 2h) is clipped to [0, 2h); day 0 and day 1
  // contribute [20h, 26h) and [44h, 48h) (clipped).
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].begin_ms, 0);
  EXPECT_EQ(windows[0].end_ms, 2 * kHour);
  EXPECT_EQ(windows[1].begin_ms, 20 * kHour);
  EXPECT_EQ(windows[1].end_ms, 26 * kHour);
}

TEST(PeriodWindowsTest, TotalCoverageIsFullDataRange) {
  telemetry::Dataset d;
  d.add({.time_ms = 0, .user_id = 1, .latency_ms = 1.0});
  d.add({.time_ms = 5 * kDay - 1, .user_id = 1, .latency_ms = 1.0});
  std::int64_t covered = 0;
  for (int p = 0; p < telemetry::kDayPeriodCount; ++p) {
    for (const auto& w : period_windows(d, static_cast<telemetry::DayPeriod>(p))) {
      covered += w.length();
    }
  }
  // The four periods tile the half-open data range [0, 5*kDay) exactly
  // (end_time is one past the last record).
  EXPECT_EQ(covered, 5 * kDay);
}

TEST(AlphaByPeriodTest, RecoversPlantedDiurnalFactors) {
  // Full simulator: measured per-period alpha must match the planted
  // activity ratios (Fig 8 ground truth) and be flat across latency.
  const auto config = simulate::paper_config(simulate::Scale::kSmall, 11);
  auto generated = simulate::WorkloadGenerator(config).generate();
  const auto validated = telemetry::validate(generated.dataset);
  const auto expected = simulate::expected_alpha_by_period(config);
  const auto measured = alpha_by_period(validated.dataset, AutoSensOptions{});
  EXPECT_NEAR(measured[0].mean_alpha, 1.0, 0.05);  // reference period
  for (int p = 1; p < telemetry::kDayPeriodCount; ++p) {
    EXPECT_NEAR(measured[p].mean_alpha, expected[p], 0.12)
        << to_string(static_cast<telemetry::DayPeriod>(p));
  }
  // Ordering: morning > afternoon > evening > night.
  EXPECT_GT(measured[1].mean_alpha, measured[2].mean_alpha);
  EXPECT_GT(measured[2].mean_alpha, measured[3].mean_alpha);
}

TEST(AlphaByPeriodTest, AlphaIsFlatAcrossLatencyBins) {
  const auto config = simulate::paper_config(simulate::Scale::kSmall, 12);
  auto generated = simulate::WorkloadGenerator(config).generate();
  const auto validated = telemetry::validate(generated.dataset);
  const auto measured = alpha_by_period(validated.dataset, AutoSensOptions{});
  // Coefficient of variation of alpha across latency bins stays small
  // (paper: "α remains flat across the latency range").
  for (const auto& pa : measured) {
    stats::RunningStats s;
    for (std::size_t i = 0; i < pa.alpha.size(); ++i) {
      if (pa.valid[i]) s.add(pa.alpha[i]);
    }
    ASSERT_GT(s.count(), 3u);
    EXPECT_LT(s.stddev() / s.mean(), 0.30) << to_string(pa.period);
  }
}

TEST(AlphaByPeriodTest, EmptyDatasetThrows) {
  EXPECT_THROW(alpha_by_period(telemetry::Dataset{}, AutoSensOptions{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace autosens::core
