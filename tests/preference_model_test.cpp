#include "simulate/preference.h"

#include <gtest/gtest.h>

namespace autosens::simulate {
namespace {

using telemetry::ActionType;
using telemetry::DayPeriod;
using telemetry::UserClass;

TEST(PreferenceModelTest, BaseCurvesAreNormalizedAt300ms) {
  const PreferenceModel model;
  for (int i = 0; i < telemetry::kActionTypeCount; ++i) {
    EXPECT_NEAR(model.base_curve(static_cast<ActionType>(i))(300.0), 1.0, 1e-12);
  }
}

TEST(PreferenceModelTest, SelectMailMatchesPaperAnchors) {
  // Paper Fig 4 / §3.2: 0.88, 0.68, 0.61 at 500, 1000, 1500 ms.
  const PreferenceModel model;
  const auto& curve = model.base_curve(ActionType::kSelectMail);
  EXPECT_NEAR(curve(500.0), 0.88, 1e-12);
  EXPECT_NEAR(curve(1000.0), 0.68, 1e-12);
  EXPECT_NEAR(curve(1500.0), 0.61, 1e-12);
  EXPECT_NEAR(curve(2000.0), 0.59, 1e-12);  // §3.5
}

TEST(PreferenceModelTest, ActionTypeOrderingMatchesPaper) {
  // At every latency: SelectMail drops most, then SwitchFolder, then Search,
  // ComposeSend nearly flat (paper Fig 4).
  const PreferenceModel model;
  for (const double latency : {500.0, 800.0, 1200.0, 2000.0, 3000.0}) {
    const double select = model.base_curve(ActionType::kSelectMail)(latency);
    const double folder = model.base_curve(ActionType::kSwitchFolder)(latency);
    const double search = model.base_curve(ActionType::kSearch)(latency);
    const double compose = model.base_curve(ActionType::kComposeSend)(latency);
    EXPECT_LT(select, folder) << latency;
    EXPECT_LT(folder, search) << latency;
    EXPECT_LT(search, compose) << latency;
    EXPECT_GT(compose, 0.97) << latency;
  }
}

TEST(PreferenceModelTest, ConsumerDropIsShallower) {
  const PreferenceModel model;
  const double business = model.preference(ActionType::kSelectMail, UserClass::kBusiness,
                                           0.5, DayPeriod::kMorning, 1000.0);
  const double consumer = model.preference(ActionType::kSelectMail, UserClass::kConsumer,
                                           0.5, DayPeriod::kMorning, 1000.0);
  EXPECT_GT(consumer, business);  // paper Fig 5
}

TEST(PreferenceModelTest, UserDropScaleIsAffineInPercentile) {
  const PreferenceModel model;
  const auto& o = model.options();
  EXPECT_DOUBLE_EQ(model.user_drop_scale(0.0), o.user_drop_at_fastest);
  EXPECT_DOUBLE_EQ(model.user_drop_scale(1.0), o.user_drop_at_slowest);
  EXPECT_DOUBLE_EQ(model.user_drop_scale(0.5),
                   0.5 * (o.user_drop_at_fastest + o.user_drop_at_slowest));
  // Clamped outside [0,1].
  EXPECT_DOUBLE_EQ(model.user_drop_scale(-1.0), o.user_drop_at_fastest);
  EXPECT_DOUBLE_EQ(model.user_drop_scale(2.0), o.user_drop_at_slowest);
}

TEST(PreferenceModelTest, FasterUsersAreMoreSensitive) {
  // Paper Fig 6: Q1 (fastest) drops most.
  const PreferenceModel model;
  double previous = 0.0;
  for (const double percentile : {0.125, 0.375, 0.625, 0.875}) {
    const double pref = model.preference(ActionType::kSelectMail, UserClass::kConsumer,
                                         percentile, DayPeriod::kMorning, 1200.0);
    EXPECT_GT(pref, previous);
    previous = pref;
  }
}

TEST(PreferenceModelTest, DaytimeIsSteeperThanNight) {
  // Paper Fig 7: the 8am–2pm drop is sharpest, 2am–8am shallowest.
  const PreferenceModel model;
  const double morning = model.preference(ActionType::kSelectMail, UserClass::kBusiness,
                                          0.5, DayPeriod::kMorning, 1500.0);
  const double afternoon = model.preference(ActionType::kSelectMail, UserClass::kBusiness,
                                            0.5, DayPeriod::kAfternoon, 1500.0);
  const double evening = model.preference(ActionType::kSelectMail, UserClass::kBusiness,
                                          0.5, DayPeriod::kEvening, 1500.0);
  const double night = model.preference(ActionType::kSelectMail, UserClass::kBusiness,
                                        0.5, DayPeriod::kNight, 1500.0);
  EXPECT_LT(morning, afternoon);
  EXPECT_LT(afternoon, evening);
  EXPECT_LT(evening, night);
}

TEST(PreferenceModelTest, PreferenceIsBoundedAndPositive) {
  const PreferenceModel model;
  for (const double latency : {0.0, 100.0, 1000.0, 10'000.0}) {
    for (int t = 0; t < telemetry::kActionTypeCount; ++t) {
      const double p = model.preference(static_cast<ActionType>(t), UserClass::kBusiness,
                                        0.0, DayPeriod::kMorning, latency);
      EXPECT_GT(p, 0.0);
      EXPECT_LE(p, model.max_preference() + 1e-12);
    }
  }
}

TEST(PreferenceModelTest, MaxPreferenceBoundsLowLatencyBoost) {
  const PreferenceModel model;
  // Base curves exceed 1.0 below the reference; the bound must cover that.
  const double boosted = model.preference(ActionType::kSelectMail, UserClass::kBusiness,
                                          0.0, DayPeriod::kMorning, 0.0);
  EXPECT_GT(boosted, 1.0);
  EXPECT_LE(boosted, model.max_preference());
}

TEST(PreferenceModelTest, ExpectedCurveAppliesAllScales) {
  const PreferenceModel model;
  const auto curve = model.expected_curve(ActionType::kSelectMail, UserClass::kBusiness,
                                          /*mean_percentile=*/0.5, /*period_scale=*/1.0,
                                          /*ref_ms=*/300.0);
  // Midpoint percentile → scale 1.0: matches the base curve at anchors.
  EXPECT_NEAR(curve(500.0), 0.88, 1e-9);
  EXPECT_NEAR(curve(300.0), 1.0, 1e-9);

  const auto shallow = model.expected_curve(ActionType::kSelectMail, UserClass::kBusiness,
                                            0.5, /*period_scale=*/0.5, 300.0);
  EXPECT_NEAR(shallow(500.0), 1.0 - 0.5 * 0.12, 2e-3);  // half the drop
}

TEST(PreferenceModelTest, CustomOptionsPropagate) {
  PreferenceModel::Options options;
  options.consumer_drop_scale = 1.0;  // consumers identical to business
  const PreferenceModel model(options);
  EXPECT_DOUBLE_EQ(
      model.preference(ActionType::kSearch, UserClass::kBusiness, 0.5, DayPeriod::kMorning,
                       900.0),
      model.preference(ActionType::kSearch, UserClass::kConsumer, 0.5, DayPeriod::kMorning,
                       900.0));
}

}  // namespace
}  // namespace autosens::simulate
