// End-to-end determinism of the parallel execution layer: every analysis
// entry point must produce byte-identical results for threads = 1, 2, and 8.
// This is the hard contract of core/parallel.h (fixed chunk grids, chunk-
// ordered reductions, counter-seeded RNG substreams) verified at the API
// surface, including on a 1M-record dataset.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/confidence.h"
#include "core/pipeline.h"
#include "core/slices.h"
#include "stats/bootstrap.h"
#include "stats/rng.h"
#include "telemetry/clock.h"
#include "telemetry/dataset.h"

namespace autosens {
namespace {

using core::AutoSensOptions;
using core::PreferenceResult;

/// A sorted dataset with diurnal structure, several actions, both user
/// classes, and a latency mix that supports the default reference latency.
telemetry::Dataset synthetic_dataset(std::size_t n, int days, std::uint64_t seed) {
  stats::Random random(seed);
  telemetry::Dataset dataset;
  dataset.reserve(n);
  const std::int64_t begin = 400 * telemetry::kMillisPerDay;
  const auto span = static_cast<double>(days) * telemetry::kMillisPerDay;
  constexpr telemetry::ActionType kActions[] = {
      telemetry::ActionType::kSelectMail, telemetry::ActionType::kSwitchFolder,
      telemetry::ActionType::kSelectMail, telemetry::ActionType::kSearch,
      telemetry::ActionType::kComposeSend};
  for (std::size_t i = 0; i < n; ++i) {
    telemetry::ActionRecord record;
    record.time_ms =
        begin + static_cast<std::int64_t>(span * static_cast<double>(i) /
                                          static_cast<double>(n));
    const double hour =
        static_cast<double>(record.time_ms % telemetry::kMillisPerDay) /
        static_cast<double>(telemetry::kMillisPerHour);
    // Latency swings with time of day (this is exactly the confounder the
    // normalizer removes) plus an exponential tail.
    const double diurnal = 120.0 * std::sin(hour / 24.0 * 2.0 * 3.141592653589793);
    record.latency_ms = std::min(
        2900.0, 180.0 + diurnal + 250.0 * -std::log(1.0 - random.uniform(0.0, 1.0)));
    record.user_id = i % 499;
    record.action = kActions[i % 5];
    record.user_class =
        (i % 3 == 0) ? telemetry::UserClass::kBusiness : telemetry::UserClass::kConsumer;
    dataset.add(record);
  }
  dataset.sort_by_time();
  return dataset;
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_bitwise_equal(const std::vector<double>& a, const std::vector<double>& b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(bits(a[i]), bits(b[i])) << what << " differs at index " << i;
  }
}

void expect_identical(const PreferenceResult& a, const PreferenceResult& b) {
  expect_bitwise_equal(a.latency_ms, b.latency_ms, "latency_ms");
  expect_bitwise_equal(a.raw_ratio, b.raw_ratio, "raw_ratio");
  expect_bitwise_equal(a.smoothed, b.smoothed, "smoothed");
  expect_bitwise_equal(a.normalized, b.normalized, "normalized");
  ASSERT_EQ(a.valid, b.valid);
  EXPECT_EQ(bits(a.reference_latency_ms), bits(b.reference_latency_ms));
  EXPECT_EQ(a.biased_samples, b.biased_samples);
  EXPECT_EQ(a.support_begin, b.support_begin);
  EXPECT_EQ(a.support_end, b.support_end);
}

std::vector<core::TimeWindow> daily_windows(const telemetry::Dataset& dataset) {
  std::vector<core::TimeWindow> windows;
  const std::int64_t begin = dataset.begin_time();
  const std::int64_t end = dataset.end_time();
  for (std::int64_t day = telemetry::day_index(begin);
       day * telemetry::kMillisPerDay < end; ++day) {
    core::TimeWindow w{.begin_ms = std::max(begin, day * telemetry::kMillisPerDay),
                       .end_ms = std::min(end, (day + 1) * telemetry::kMillisPerDay)};
    if (w.end_ms > w.begin_ms) windows.push_back(w);
  }
  return windows;
}

constexpr std::size_t kThreadSweep[] = {1, 2, 8};

TEST(ParallelDeterminismTest, AnalyzeOneMillionRecordsBitIdenticalAt8Threads) {
  const auto dataset = synthetic_dataset(1'000'000, 14, 11);
  AutoSensOptions options;
  options.threads = 1;
  const auto serial = core::analyze(dataset, options);
  options.threads = 8;
  const auto parallel = core::analyze(dataset, options);
  expect_identical(serial, parallel);
}

TEST(ParallelDeterminismTest, AnalyzeVoronoiAcrossThreadCounts) {
  const auto dataset = synthetic_dataset(100'000, 10, 21);
  AutoSensOptions options;
  options.threads = 1;
  const auto baseline = core::analyze(dataset, options);
  for (const std::size_t threads : kThreadSweep) {
    options.threads = threads;
    expect_identical(baseline, core::analyze(dataset, options));
  }
}

TEST(ParallelDeterminismTest, AnalyzeMonteCarloAcrossThreadCounts) {
  const auto dataset = synthetic_dataset(60'000, 10, 22);
  AutoSensOptions options;
  options.unbiased_method = core::UnbiasedMethod::kMonteCarlo;
  options.threads = 1;
  const auto baseline = core::analyze(dataset, options);
  for (const std::size_t threads : kThreadSweep) {
    options.threads = threads;
    expect_identical(baseline, core::analyze(dataset, options));
  }
}

TEST(ParallelDeterminismTest, AnalyzeOverWindowsAcrossThreadCounts) {
  const auto dataset = synthetic_dataset(100'000, 10, 23);
  const auto windows = daily_windows(dataset);
  AutoSensOptions options;
  options.threads = 1;
  const auto baseline = core::analyze_over_windows(dataset, windows, options);
  for (const std::size_t threads : kThreadSweep) {
    options.threads = threads;
    const auto run = core::analyze_over_windows(dataset, windows, options);
    expect_identical(baseline.preference, run.preference);
  }
}

TEST(ParallelDeterminismTest, PreferenceByActionAcrossThreadCounts) {
  const auto dataset = synthetic_dataset(200'000, 10, 24);
  AutoSensOptions options;
  options.threads = 1;
  const auto baseline = core::preference_by_action(dataset, options);
  ASSERT_FALSE(baseline.empty());
  for (const std::size_t threads : kThreadSweep) {
    options.threads = threads;
    const auto run = core::preference_by_action(dataset, options);
    ASSERT_EQ(baseline.size(), run.size());
    for (std::size_t s = 0; s < baseline.size(); ++s) {
      EXPECT_EQ(baseline[s].name, run[s].name);
      EXPECT_EQ(baseline[s].records, run[s].records);
      expect_identical(baseline[s].result, run[s].result);
    }
  }
}

TEST(ParallelDeterminismTest, BootstrapIntervalsAcrossThreadCounts) {
  stats::Random data_rng(31);
  std::vector<double> sample(5000);
  for (auto& v : sample) v = data_rng.uniform(0.0, 100.0);
  const auto mean = [](std::span<const double> values) {
    double sum = 0.0;
    for (const double v : values) sum += v;
    return sum / static_cast<double>(values.size());
  };

  stats::Random base_rng(32);
  const auto baseline = stats::bootstrap_interval(sample, mean, 200, 0.95, base_rng, 1);
  for (const std::size_t threads : kThreadSweep) {
    stats::Random rng(32);
    const auto run = stats::bootstrap_interval(sample, mean, 200, 0.95, rng, threads);
    EXPECT_EQ(bits(baseline.lo), bits(run.lo)) << "threads=" << threads;
    EXPECT_EQ(bits(baseline.hi), bits(run.hi)) << "threads=" << threads;
  }

  const auto curve = [&sample](std::span<const std::size_t> indices) {
    double sum = 0.0, sq = 0.0;
    for (const std::size_t idx : indices) {
      sum += sample[idx];
      sq += sample[idx] * sample[idx];
    }
    const double n = static_cast<double>(indices.size());
    return std::vector<double>{sum / n, sq / n};
  };
  stats::Random curve_base(33);
  const auto curve_baseline =
      stats::bootstrap_curve_interval(sample.size(), curve, 100, 0.9, curve_base, 1);
  for (const std::size_t threads : kThreadSweep) {
    stats::Random rng(33);
    const auto run =
        stats::bootstrap_curve_interval(sample.size(), curve, 100, 0.9, rng, threads);
    ASSERT_EQ(curve_baseline.size(), run.size());
    for (std::size_t p = 0; p < run.size(); ++p) {
      EXPECT_EQ(bits(curve_baseline[p].lo), bits(run[p].lo));
      EXPECT_EQ(bits(curve_baseline[p].hi), bits(run[p].hi));
    }
  }
}

TEST(ParallelDeterminismTest, ConfidenceIntervalsAcrossThreadCounts) {
  const auto dataset = synthetic_dataset(20'000, 8, 41);
  AutoSensOptions options;
  core::ConfidenceOptions confidence;
  confidence.replicates = 8;

  options.threads = 1;
  stats::Random base_rng(55);
  const auto baseline = core::analyze_with_confidence(dataset, options, {500.0, 1000.0},
                                                      confidence, base_rng);
  for (const std::size_t threads : kThreadSweep) {
    options.threads = threads;
    stats::Random rng(55);
    const auto run = core::analyze_with_confidence(dataset, options, {500.0, 1000.0},
                                                   confidence, rng);
    expect_identical(baseline.point, run.point);
    EXPECT_EQ(baseline.usable_replicates, run.usable_replicates);
    ASSERT_EQ(baseline.intervals.size(), run.intervals.size());
    for (std::size_t p = 0; p < run.intervals.size(); ++p) {
      EXPECT_EQ(bits(baseline.intervals[p].lo), bits(run.intervals[p].lo));
      EXPECT_EQ(bits(baseline.intervals[p].hi), bits(run.intervals[p].hi));
    }
  }
}

}  // namespace
}  // namespace autosens
