#include "obs/trace.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <set>
#include <sstream>
#include <thread>

#include "core/parallel.h"
#include "obs/metrics.h"

namespace autosens::obs {
namespace {

/// Spans always file into the global tracer; enable it per test and scrub
/// the collected spans afterwards.
class ObsTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::global().set_enabled(true);
    Tracer::global().clear();
  }
  void TearDown() override {
    Tracer::global().set_enabled(false);
    Tracer::global().clear();
  }
};

const SpanRecord* find(const std::vector<SpanRecord>& spans, const std::string& name) {
  for (const auto& span : spans) {
    if (span.name == name) return &span;
  }
  return nullptr;
}

TEST_F(ObsTraceTest, DisabledSpansAreInert) {
  Tracer::global().set_enabled(false);
  {
    Span span("noop");
    span.attr("key", "value");
    EXPECT_FALSE(span.active());
  }
  EXPECT_TRUE(Tracer::global().snapshot().empty());
}

TEST_F(ObsTraceTest, NestingRecordsParentAndDepth) {
  {
    Span outer("outer");
    {
      Span inner("inner");
      Span leaf("leaf");
    }
    Span sibling("sibling");
  }
  const auto spans = Tracer::global().snapshot();
  ASSERT_EQ(spans.size(), 4u);
  const auto* outer = find(spans, "outer");
  const auto* inner = find(spans, "inner");
  const auto* leaf = find(spans, "leaf");
  const auto* sibling = find(spans, "sibling");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(leaf, nullptr);
  ASSERT_NE(sibling, nullptr);

  EXPECT_EQ(outer->parent, 0u);
  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(inner->parent, outer->id);
  EXPECT_EQ(inner->depth, 1u);
  EXPECT_EQ(leaf->parent, inner->id);
  EXPECT_EQ(leaf->depth, 2u);
  EXPECT_EQ(sibling->parent, outer->id);
  EXPECT_EQ(sibling->depth, 1u);
}

TEST_F(ObsTraceTest, TimingIsMonotonicAndNested) {
  {
    Span outer("outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    Span inner("inner");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto spans = Tracer::global().snapshot();
  const auto* outer = find(spans, "outer");
  const auto* inner = find(spans, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);

  EXPECT_GE(inner->start_us, outer->start_us);
  EXPECT_GE(inner->duration_us, 1000u);  // slept 2 ms inside.
  EXPECT_GE(outer->duration_us, inner->duration_us);
  // The child interval is contained in the parent interval.
  EXPECT_LE(inner->start_us + inner->duration_us, outer->start_us + outer->duration_us);
}

TEST_F(ObsTraceTest, SpanObservesLatencyHistogram) {
  set_enabled(true);
  Registry registry;
  auto& histogram = registry.histogram("span_ms", "", {1000.0});
  { Span span("timed", &histogram); }
  EXPECT_EQ(histogram.count(), 1u);
  set_enabled(false);
}

TEST_F(ObsTraceTest, AggregateRollsUpByNameAndOrdersParentsFirst) {
  {
    Span outer("outer");
    for (int i = 0; i < 3; ++i) {
      Span inner("inner");
    }
  }
  const auto aggregates = Tracer::global().aggregate();
  ASSERT_EQ(aggregates.size(), 2u);
  // Children close (and record) first; the rollup re-orders by start time
  // with parents before their children on ties.
  EXPECT_EQ(aggregates[0].name, "outer");
  EXPECT_EQ(aggregates[0].depth, 0u);
  EXPECT_EQ(aggregates[0].count, 1u);
  EXPECT_EQ(aggregates[1].name, "inner");
  EXPECT_EQ(aggregates[1].depth, 1u);
  EXPECT_EQ(aggregates[1].count, 3u);
  EXPECT_GE(aggregates[1].max_ms, aggregates[1].min_ms);
  EXPECT_GE(aggregates[0].total_ms, 0.0);
}

TEST_F(ObsTraceTest, ChromeTraceJsonShape) {
  {
    Span span("stage \"one\"");
    span.attr("records", std::int64_t{42});
    span.attr("method", "mc");
  }
  std::ostringstream out;
  Tracer::global().write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"stage \\\"one\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"records\": \"42\""), std::string::npos);
  EXPECT_NE(json.find("\"method\": \"mc\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": "), std::string::npos);
  EXPECT_NE(json.find("\"dur\": "), std::string::npos);
  // Balanced and terminated.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
}

TEST_F(ObsTraceTest, RecentRingKeepsNewestSpansOldestFirst) {
  Tracer::global().set_ring_capacity(3);
  for (int i = 0; i < 5; ++i) {
    Span span("span" + std::to_string(i));
  }
  const auto recent = Tracer::global().recent();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[0].name, "span2");
  EXPECT_EQ(recent[1].name, "span3");
  EXPECT_EQ(recent[2].name, "span4");
  // snapshot() still has all five; the ring only bounds /tracez.
  EXPECT_EQ(Tracer::global().snapshot().size(), 5u);
  Tracer::global().set_ring_capacity(512);
}

TEST_F(ObsTraceTest, ProcessTagSaltsSpanIds) {
  Tracer::global().set_process(7);
  std::uint64_t id = 0;
  {
    Span span("salted");
    id = span.id();
    EXPECT_NE(id, 0u);
  }
  EXPECT_EQ(id >> 56, 7u);
  Tracer::global().set_process(1);
  {
    Span span("default");
    EXPECT_EQ(span.id() >> 56, 1u);
  }
}

TEST_F(ObsTraceTest, EnsureTraceIdIsStickyAndNonzero) {
  Tracer::global().set_trace_id(0);
  const auto id = Tracer::global().ensure_trace_id();
  EXPECT_NE(id, 0u);
  EXPECT_EQ(Tracer::global().ensure_trace_id(), id);
  Tracer::global().set_trace_id(42);
  EXPECT_EQ(Tracer::global().ensure_trace_id(), 42u);
  Tracer::global().set_trace_id(0);
}

TEST_F(ObsTraceTest, LinkParentOverridesLocalNesting) {
  constexpr std::uint64_t kRemote = (2ULL << 56) | 99;
  {
    Span outer("outer");
    {
      Span inner("inner");
      inner.link_parent(kRemote);
      Span untouched("untouched");
      untouched.link_parent(0);  // no-op
    }
  }
  const auto spans = Tracer::global().snapshot();
  const auto* outer = find(spans, "outer");
  const auto* inner = find(spans, "inner");
  const auto* untouched = find(spans, "untouched");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(untouched, nullptr);
  EXPECT_EQ(inner->parent, kRemote);
  // link_parent(0) keeps the local parent (the still-open inner span).
  EXPECT_EQ(untouched->parent, inner->id);
  (void)outer;
}

TEST_F(ObsTraceTest, CurrentSpanIdTracksTheInnermostOpenSpan) {
  EXPECT_EQ(current_span_id(), 0u);
  {
    Span outer("outer");
    EXPECT_EQ(current_span_id(), outer.id());
    {
      Span inner("inner");
      EXPECT_EQ(current_span_id(), inner.id());
    }
    EXPECT_EQ(current_span_id(), outer.id());
  }
  EXPECT_EQ(current_span_id(), 0u);
}

TEST_F(ObsTraceTest, ChromeTraceAcrossThreadPoolThreads) {
  // Parent on the caller thread, children on pool workers: the exported
  // trace must carry the process tag as pid and distinct tid values, and
  // the flame rollup must attribute all chunk time under the region span.
  constexpr std::size_t kChunks = 4;
  {
    Span region("pool_region");
    core::ThreadPool::shared().run(kChunks, kChunks, [&region](std::size_t chunk) {
      Span work("pool_chunk");
      work.link_parent(region.id());
      work.attr("chunk", static_cast<std::int64_t>(chunk));
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    });
  }
  const auto spans = Tracer::global().snapshot();
  ASSERT_EQ(spans.size(), kChunks + 1);
  const auto* region = find(spans, "pool_region");
  ASSERT_NE(region, nullptr);
  std::set<std::uint64_t> threads;
  for (const auto& span : spans) {
    if (span.name != "pool_chunk") continue;
    EXPECT_EQ(span.parent, region->id);
    threads.insert(span.thread);
  }
  // The caller participates in the region, so at least two distinct thread
  // indices must show up among the chunk spans (1-CPU machines still spawn
  // real pool workers — concurrency is requested, not detected).
  EXPECT_GE(threads.size(), 2u);

  std::ostringstream out;
  Tracer::global().write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
  for (const auto tid : threads) {
    EXPECT_NE(json.find("\"tid\": " + std::to_string(tid)), std::string::npos);
  }
  EXPECT_NE(json.find("\"parent\": " + std::to_string(region->id)), std::string::npos);

  // Chunks on the caller thread nest under the region (depth 1) while
  // worker-thread chunks are stack roots (depth 0), so the (name, depth)
  // rollup may split them — the totals must still account for every chunk.
  const auto aggregates = Tracer::global().aggregate();
  std::size_t chunk_count = 0;
  double chunk_total_ms = 0.0;
  for (const auto& aggregate : aggregates) {
    if (aggregate.name == "pool_chunk") {
      chunk_count += aggregate.count;
      chunk_total_ms += aggregate.total_ms;
    }
  }
  EXPECT_EQ(chunk_count, kChunks);
  // Each chunk slept ~2 ms; the rollup total must account for all of them.
  EXPECT_GE(chunk_total_ms, 1.0 * static_cast<double>(kChunks));
}

TEST_F(ObsTraceTest, ClearDropsSpans) {
  { Span span("a"); }
  EXPECT_EQ(Tracer::global().snapshot().size(), 1u);
  Tracer::global().clear();
  EXPECT_TRUE(Tracer::global().snapshot().empty());
}

}  // namespace
}  // namespace autosens::obs
