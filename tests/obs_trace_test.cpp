#include "obs/trace.h"

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <thread>

#include "obs/metrics.h"

namespace autosens::obs {
namespace {

/// Spans always file into the global tracer; enable it per test and scrub
/// the collected spans afterwards.
class ObsTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::global().set_enabled(true);
    Tracer::global().clear();
  }
  void TearDown() override {
    Tracer::global().set_enabled(false);
    Tracer::global().clear();
  }
};

const SpanRecord* find(const std::vector<SpanRecord>& spans, const std::string& name) {
  for (const auto& span : spans) {
    if (span.name == name) return &span;
  }
  return nullptr;
}

TEST_F(ObsTraceTest, DisabledSpansAreInert) {
  Tracer::global().set_enabled(false);
  {
    Span span("noop");
    span.attr("key", "value");
    EXPECT_FALSE(span.active());
  }
  EXPECT_TRUE(Tracer::global().snapshot().empty());
}

TEST_F(ObsTraceTest, NestingRecordsParentAndDepth) {
  {
    Span outer("outer");
    {
      Span inner("inner");
      Span leaf("leaf");
    }
    Span sibling("sibling");
  }
  const auto spans = Tracer::global().snapshot();
  ASSERT_EQ(spans.size(), 4u);
  const auto* outer = find(spans, "outer");
  const auto* inner = find(spans, "inner");
  const auto* leaf = find(spans, "leaf");
  const auto* sibling = find(spans, "sibling");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(leaf, nullptr);
  ASSERT_NE(sibling, nullptr);

  EXPECT_EQ(outer->parent, 0u);
  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(inner->parent, outer->id);
  EXPECT_EQ(inner->depth, 1u);
  EXPECT_EQ(leaf->parent, inner->id);
  EXPECT_EQ(leaf->depth, 2u);
  EXPECT_EQ(sibling->parent, outer->id);
  EXPECT_EQ(sibling->depth, 1u);
}

TEST_F(ObsTraceTest, TimingIsMonotonicAndNested) {
  {
    Span outer("outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    Span inner("inner");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto spans = Tracer::global().snapshot();
  const auto* outer = find(spans, "outer");
  const auto* inner = find(spans, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);

  EXPECT_GE(inner->start_us, outer->start_us);
  EXPECT_GE(inner->duration_us, 1000u);  // slept 2 ms inside.
  EXPECT_GE(outer->duration_us, inner->duration_us);
  // The child interval is contained in the parent interval.
  EXPECT_LE(inner->start_us + inner->duration_us, outer->start_us + outer->duration_us);
}

TEST_F(ObsTraceTest, SpanObservesLatencyHistogram) {
  set_enabled(true);
  Registry registry;
  auto& histogram = registry.histogram("span_ms", "", {1000.0});
  { Span span("timed", &histogram); }
  EXPECT_EQ(histogram.count(), 1u);
  set_enabled(false);
}

TEST_F(ObsTraceTest, AggregateRollsUpByNameAndOrdersParentsFirst) {
  {
    Span outer("outer");
    for (int i = 0; i < 3; ++i) {
      Span inner("inner");
    }
  }
  const auto aggregates = Tracer::global().aggregate();
  ASSERT_EQ(aggregates.size(), 2u);
  // Children close (and record) first; the rollup re-orders by start time
  // with parents before their children on ties.
  EXPECT_EQ(aggregates[0].name, "outer");
  EXPECT_EQ(aggregates[0].depth, 0u);
  EXPECT_EQ(aggregates[0].count, 1u);
  EXPECT_EQ(aggregates[1].name, "inner");
  EXPECT_EQ(aggregates[1].depth, 1u);
  EXPECT_EQ(aggregates[1].count, 3u);
  EXPECT_GE(aggregates[1].max_ms, aggregates[1].min_ms);
  EXPECT_GE(aggregates[0].total_ms, 0.0);
}

TEST_F(ObsTraceTest, ChromeTraceJsonShape) {
  {
    Span span("stage \"one\"");
    span.attr("records", std::int64_t{42});
    span.attr("method", "mc");
  }
  std::ostringstream out;
  Tracer::global().write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"stage \\\"one\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"records\": \"42\""), std::string::npos);
  EXPECT_NE(json.find("\"method\": \"mc\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": "), std::string::npos);
  EXPECT_NE(json.find("\"dur\": "), std::string::npos);
  // Balanced and terminated.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
}

TEST_F(ObsTraceTest, ClearDropsSpans) {
  { Span span("a"); }
  EXPECT_EQ(Tracer::global().snapshot().size(), 1u);
  Tracer::global().clear();
  EXPECT_TRUE(Tracer::global().snapshot().empty());
}

}  // namespace
}  // namespace autosens::obs
