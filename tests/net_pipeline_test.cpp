// Integration tests of the emitter → collector telemetry path over loopback
// TCP: the stand-in for the paper's client-measured, server-logged latency
// pipeline (§3.1).
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "net/collector.h"
#include "net/emitter.h"
#include "net/fault.h"
#include "net/wire.h"
#include "stats/rng.h"
#include "telemetry/record.h"

namespace autosens::net {
namespace {

using telemetry::ActionRecord;

std::vector<ActionRecord> make_records(std::size_t n, std::uint64_t seed) {
  stats::Random random(seed);
  std::vector<ActionRecord> records;
  std::int64_t t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    t += static_cast<std::int64_t>(random.exponential(0.01)) + 1;
    // The wire codec carries latency at 10 µs resolution; emit values on
    // that grid so the roundtrip comparison can be exact.
    records.push_back({.time_ms = t,
                       .user_id = 1 + random.uniform_index(10),
                       .latency_ms = std::round(random.lognormal(5.0, 0.4) * 100.0) / 100.0,
                       .action = telemetry::ActionType::kSelectMail,
                       .user_class = telemetry::UserClass::kBusiness,
                       .status = telemetry::ActionStatus::kSuccess});
  }
  return records;
}

TEST(NetPipelineTest, SingleEmitterDeliversAllRecords) {
  CollectorThread collector(/*expected_goodbyes=*/1);
  const auto records = make_records(5000, 1);
  {
    Emitter emitter(collector.port(), {.batch_size = 128});
    for (const auto& r : records) emitter.record(r);
    emitter.close();
    EXPECT_EQ(emitter.sent_records(), records.size());
  }
  const auto dataset = collector.join();
  ASSERT_EQ(dataset.size(), records.size());
  EXPECT_TRUE(dataset.is_sorted());
  for (std::size_t i = 0; i < records.size(); ++i) EXPECT_EQ(dataset[i], records[i]);
}

TEST(NetPipelineTest, PartialBatchFlushedOnClose) {
  CollectorThread collector(1);
  {
    Emitter emitter(collector.port(), {.batch_size = 1000});
    for (const auto& r : make_records(7, 2)) emitter.record(r);
    emitter.close();
  }
  EXPECT_EQ(collector.join().size(), 7u);
}

TEST(NetPipelineTest, ExplicitFlushDeliversPending) {
  CollectorThread collector(1);
  Emitter emitter(collector.port(), {.batch_size = 1000});
  for (const auto& r : make_records(10, 3)) emitter.record(r);
  emitter.flush();
  emitter.close();
  const auto dataset = collector.join();
  EXPECT_EQ(dataset.size(), 10u);
  EXPECT_EQ(collector.stats().flushes, 1u);
}

TEST(NetPipelineTest, SequentialEmittersMerge) {
  CollectorThread collector(/*expected_goodbyes=*/3);
  const auto batch1 = make_records(100, 4);
  const auto batch2 = make_records(200, 5);
  const auto batch3 = make_records(50, 6);
  for (const auto* batch : {&batch1, &batch2, &batch3}) {
    Emitter emitter(collector.port());
    for (const auto& r : *batch) emitter.record(r);
    emitter.close();
  }
  const auto dataset = collector.join();
  EXPECT_EQ(dataset.size(), batch1.size() + batch2.size() + batch3.size());
  EXPECT_TRUE(dataset.is_sorted());
}

TEST(NetPipelineTest, RecordAfterCloseThrows) {
  CollectorThread collector(1);
  Emitter emitter(collector.port());
  emitter.close();
  EXPECT_THROW(emitter.record(ActionRecord{}), std::logic_error);
  EXPECT_THROW(emitter.flush(), std::logic_error);
  collector.join();
}

TEST(NetPipelineTest, CloseIsIdempotent) {
  CollectorThread collector(1);
  Emitter emitter(collector.port());
  emitter.record(ActionRecord{.time_ms = 1, .user_id = 1, .latency_ms = 10.0});
  emitter.close();
  emitter.close();  // no-op
  EXPECT_EQ(collector.join().size(), 1u);
}

TEST(NetPipelineTest, CollectorStatsAreAccurate) {
  CollectorThread collector(1);
  {
    Emitter emitter(collector.port(), {.batch_size = 10});
    for (const auto& r : make_records(25, 7)) emitter.record(r);
    emitter.flush();
    emitter.close();
  }
  collector.join();
  const auto stats = collector.stats();
  EXPECT_EQ(stats.connections, 1u);
  EXPECT_EQ(stats.records, 25u);
  EXPECT_EQ(stats.flushes, 1u);
  // hello + 2 full batches + flush marker + final partial batch + goodbye.
  EXPECT_EQ(stats.frames, 6u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(NetPipelineTest, StatsSnapshotIsReadableWhileServing) {
  // The stats cells are atomics precisely so this poll-while-serving pattern
  // is race-free; the TSan harness proves it, this checks the values.
  constexpr std::size_t kRecords = 500;
  CollectorThread collector(1);
  std::thread client([port = collector.port()] {
    Emitter emitter(port, {.batch_size = 32});
    for (const auto& r : make_records(kRecords, 3)) emitter.record(r);
    emitter.close();
  });
  std::size_t max_seen = 0;
  while (max_seen < kRecords) {
    const auto snapshot = collector.stats();
    EXPECT_GE(snapshot.records, max_seen);  // Counters are monotonic.
    max_seen = snapshot.records;
  }
  client.join();
  EXPECT_EQ(collector.join().size(), kRecords);
  EXPECT_EQ(collector.stats().records, kRecords);
}

TEST(NetPipelineTest, ConcurrentEmittersInterleave) {
  // The poll()-based collector must handle genuinely simultaneous clients
  // whose frames interleave on the wire.
  constexpr std::size_t kClients = 5;
  constexpr std::size_t kPerClient = 2000;
  CollectorThread collector(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([port = collector.port(), c] {
      Emitter emitter(port, {.batch_size = 64});
      for (const auto& r : make_records(kPerClient, 100 + c)) emitter.record(r);
      emitter.close();
    });
  }
  for (auto& t : clients) t.join();
  const auto dataset = collector.join();
  EXPECT_EQ(dataset.size(), kClients * kPerClient);
  EXPECT_TRUE(dataset.is_sorted());
  const auto stats = collector.stats();
  EXPECT_EQ(stats.connections, kClients);
  EXPECT_EQ(stats.records, kClients * kPerClient);
  EXPECT_EQ(stats.dropped_connections, 0u);
}

TEST(NetPipelineTest, MalformedStreamIsDroppedNotFatal) {
  CollectorThread collector(/*expected_goodbyes=*/1);
  {
    // A raw client that sends garbage.
    Socket bad = connect_tcp(collector.port());
    const std::vector<std::uint8_t> garbage = {99, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    write_all(bad, garbage);
  }
  // A well-behaved client afterwards still gets through.
  Emitter emitter(collector.port());
  for (const auto& r : make_records(10, 9)) emitter.record(r);
  emitter.close();
  const auto dataset = collector.join();
  EXPECT_EQ(dataset.size(), 10u);
  EXPECT_EQ(collector.stats().dropped_connections, 1u);
}

// --- Fault-injected resilience scenarios (satellite: deterministic via
// FaultPlan seeds; sleep_scale = 0 keeps backoff out of wall clock). ---

EmitterOptions faulty_options(FaultySocketOps& ops, std::size_t batch_size = 16) {
  return EmitterOptions{
      .batch_size = batch_size,
      .retry = {.max_attempts = 10, .backoff_initial_ms = 1, .seed = 0xabc},
      .on_give_up = EmitterOptions::GiveUp::kThrow,
      .ops = &ops,
  };
}

TEST(NetPipelineTest, DisconnectMidFrameIsRetriedToExactDelivery) {
  // Connections die mid-frame (half the frame delivered, then ECONNRESET).
  // The emitter reconnects and retransmits; (session, seq) dedup keeps the
  // dataset exactly-once; the collector resyncs past the torn half-frames.
  CollectorThread collector(/*expected_goodbyes=*/1);
  const auto records = make_records(800, 21);
  FaultySocketOps faulty(
      FaultPlan(0xfa117, {{.fault = FaultClass::kDisconnect,
                           .probability = 0.15,
                           .skip_ops = 1,  // let the first hello through
                           .max_injections = 12}}),
      real_socket_ops(), /*sleep_scale=*/0.0);
  {
    Emitter emitter(collector.port(), faulty_options(faulty));
    for (const auto& r : records) emitter.record(r);
    emitter.close();
    EXPECT_GT(faulty.plan().injected(FaultClass::kDisconnect), 0u);
    EXPECT_GT(emitter.stats().reconnects, 0u);
    EXPECT_GT(emitter.stats().retries, 0u);
    EXPECT_EQ(emitter.dropped_records(), 0u);
  }
  const auto dataset = collector.join();
  EXPECT_TRUE(collector.complete());
  ASSERT_EQ(dataset.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) EXPECT_EQ(dataset[i], records[i]);
  // Every reconnect is the sequel of a connection that ended mid-stream.
  EXPECT_EQ(collector.stats().interrupted_connections,
            collector.stats().session_reconnects);
}

TEST(NetPipelineTest, ConnectRefusedIsRetried) {
  CollectorThread collector(1);
  FaultySocketOps faulty(
      FaultPlan(7, {{.fault = FaultClass::kConnectRefused, .max_injections = 3}}),
      real_socket_ops(), 0.0);
  Emitter emitter(collector.port(), faulty_options(faulty));
  for (const auto& r : make_records(20, 22)) emitter.record(r);
  emitter.close();
  EXPECT_EQ(faulty.plan().injected(FaultClass::kConnectRefused), 3u);
  EXPECT_GE(emitter.stats().retries, 3u);
  EXPECT_GT(emitter.stats().backoff_ms, 0u);  // exponential backoff accounted
  EXPECT_EQ(collector.join().size(), 20u);
}

TEST(NetPipelineTest, SlowWriterEagainStallsAreAbsorbed) {
  // EAGAIN stalls on send: write_all must spin (with ops-mediated sleeps,
  // compressed to zero wall clock here) until the kernel accepts the bytes.
  CollectorThread collector(1);
  const auto records = make_records(300, 23);
  FaultySocketOps faulty(
      FaultPlan(0xea9a1, {{.fault = FaultClass::kEagain, .probability = 0.5}}),
      real_socket_ops(), 0.0);
  {
    Emitter emitter(collector.port(), faulty_options(faulty, 32));
    for (const auto& r : records) emitter.record(r);
    emitter.close();
  }
  EXPECT_GT(faulty.plan().injected(FaultClass::kEagain), 0u);
  const auto dataset = collector.join();
  EXPECT_TRUE(collector.complete());
  ASSERT_EQ(dataset.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) EXPECT_EQ(dataset[i], records[i]);
}

TEST(NetPipelineTest, ClientExitsWithoutGoodbyeKeepsRecordsAndCounts) {
  // A raw sender that vanishes after valid data: its records are kept, the
  // connection is counted dropped (no goodbye), and later clients still work.
  CollectorThread collector(/*expected_goodbyes=*/1);
  const auto abandoned = make_records(30, 24);
  {
    Socket raw = connect_tcp(collector.port());
    send_records(raw, abandoned);
  }  // closes without kGoodbye
  Emitter emitter(collector.port());
  for (const auto& r : make_records(10, 25)) emitter.record(r);
  emitter.close();
  const auto dataset = collector.join();
  EXPECT_EQ(dataset.size(), 40u);
  EXPECT_EQ(collector.stats().dropped_connections, 1u);
}

TEST(NetPipelineTest, TwoEmittersOneFaultyBothDeliver) {
  // A healthy emitter must be unaffected by a faulty sibling sharing the
  // collector; both streams arrive complete.
  constexpr std::size_t kPerClient = 400;
  CollectorThread collector(/*expected_goodbyes=*/2);
  std::thread healthy([port = collector.port()] {
    Emitter emitter(port, {.batch_size = 32});
    for (const auto& r : make_records(kPerClient, 26)) emitter.record(r);
    emitter.close();
  });
  std::thread flaky([port = collector.port()] {
    FaultySocketOps faulty(
        FaultPlan(0xbad, {{.fault = FaultClass::kDisconnect,
                           .probability = 0.2,
                           .skip_ops = 1,
                           .max_injections = 8}}),
        real_socket_ops(), 0.0);
    Emitter emitter(port, faulty_options(faulty, 32));
    for (const auto& r : make_records(kPerClient, 27)) emitter.record(r);
    emitter.close();
  });
  healthy.join();
  flaky.join();
  const auto dataset = collector.join();
  EXPECT_TRUE(collector.complete());
  EXPECT_EQ(dataset.size(), 2 * kPerClient);
  EXPECT_TRUE(dataset.is_sorted());
}

TEST(NetPipelineTest, RetryExhaustionDropsWithExactAccounting) {
  // With retries effectively disabled and kDropFrame, every lost frame's
  // records are declared in dropped_records — the degradation contract.
  CollectorThread collector(/*expected_goodbyes=*/1, CollectorOptions{},
                            /*timeout_ms=*/2000);
  const auto records = make_records(200, 28);
  FaultySocketOps faulty(
      FaultPlan(0xdead, {{.fault = FaultClass::kDisconnect,
                          .probability = 1.0,
                          .skip_ops = 1,
                          .max_injections = 4}}),
      real_socket_ops(), 0.0);
  std::size_t delivered = 0;
  std::size_t dropped = 0;
  {
    Emitter emitter(collector.port(),
                    {.batch_size = 16,
                     .retry = {.max_attempts = 2, .backoff_initial_ms = 1, .seed = 1},
                     .on_give_up = EmitterOptions::GiveUp::kDropFrame,
                     .ops = &faulty});
    for (const auto& r : records) emitter.record(r);
    emitter.close();
    delivered = emitter.sent_records();
    dropped = emitter.dropped_records();
  }
  EXPECT_GT(dropped, 0u);
  EXPECT_EQ(delivered + dropped, records.size());
  const auto dataset = collector.join();
  EXPECT_EQ(dataset.size(), delivered);
  EXPECT_EQ(records.size() - dataset.size(), dropped);
}

TEST(NetPipelineTest, EmitterValidatesBatchSize) {
  CollectorThread collector(1);
  EXPECT_THROW(Emitter(collector.port(), {.batch_size = 0}), std::invalid_argument);
  // Unblock the collector.
  Emitter emitter(collector.port());
  emitter.close();
  collector.join();
}

}  // namespace
}  // namespace autosens::net
