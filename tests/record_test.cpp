#include "telemetry/record.h"

#include <gtest/gtest.h>

namespace autosens::telemetry {
namespace {

TEST(RecordTest, ActionTypeRoundtrip) {
  for (int i = 0; i < kActionTypeCount; ++i) {
    const auto type = static_cast<ActionType>(i);
    const auto parsed = parse_action_type(to_string(type));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, type);
  }
}

TEST(RecordTest, UserClassRoundtrip) {
  for (int i = 0; i < kUserClassCount; ++i) {
    const auto user_class = static_cast<UserClass>(i);
    const auto parsed = parse_user_class(to_string(user_class));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, user_class);
  }
}

TEST(RecordTest, StatusRoundtrip) {
  for (const auto status : {ActionStatus::kSuccess, ActionStatus::kError}) {
    const auto parsed = parse_action_status(to_string(status));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, status);
  }
}

TEST(RecordTest, ParseRejectsUnknownNames) {
  EXPECT_FALSE(parse_action_type("DeleteMail").has_value());
  EXPECT_FALSE(parse_action_type("selectmail").has_value());  // case-sensitive
  EXPECT_FALSE(parse_user_class("Admin").has_value());
  EXPECT_FALSE(parse_action_status("Timeout").has_value());
  EXPECT_FALSE(parse_action_type("").has_value());
}

TEST(RecordTest, NamesMatchPaperTerminology) {
  EXPECT_EQ(to_string(ActionType::kSelectMail), "SelectMail");
  EXPECT_EQ(to_string(ActionType::kSwitchFolder), "SwitchFolder");
  EXPECT_EQ(to_string(ActionType::kSearch), "Search");
  EXPECT_EQ(to_string(ActionType::kComposeSend), "ComposeSend");
  EXPECT_EQ(to_string(UserClass::kBusiness), "Business");
  EXPECT_EQ(to_string(UserClass::kConsumer), "Consumer");
}

TEST(RecordTest, EqualityComparesAllFields) {
  ActionRecord a{.time_ms = 1,
                 .user_id = 2,
                 .latency_ms = 3.0,
                 .action = ActionType::kSearch,
                 .user_class = UserClass::kBusiness,
                 .status = ActionStatus::kSuccess};
  ActionRecord b = a;
  EXPECT_EQ(a, b);
  b.latency_ms = 3.5;
  EXPECT_NE(a, b);
  b = a;
  b.status = ActionStatus::kError;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace autosens::telemetry
