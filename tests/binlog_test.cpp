#include "telemetry/binlog.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "stats/rng.h"

namespace autosens::telemetry {
namespace {

Dataset random_dataset(std::size_t n, std::uint64_t seed) {
  stats::Random random(seed);
  Dataset d;
  std::int64_t t = 1'600'000'000'000;
  for (std::size_t i = 0; i < n; ++i) {
    t += static_cast<std::int64_t>(random.exponential(0.001));
    d.add({.time_ms = t,
           .user_id = 1000 + random.uniform_index(50),
           .latency_ms = std::round(random.lognormal(5.5, 0.5) * 100.0) / 100.0,
           .action = static_cast<ActionType>(random.uniform_index(kActionTypeCount)),
           .user_class = static_cast<UserClass>(random.uniform_index(kUserClassCount)),
           .status = random.bernoulli(0.05) ? ActionStatus::kError : ActionStatus::kSuccess});
  }
  return d;
}

TEST(CodecTest, VarintRoundtripSmallValues) {
  for (const std::uint64_t v : {0ull, 1ull, 127ull, 128ull, 300ull, 16'384ull}) {
    std::vector<std::uint8_t> buf;
    codec::put_varint(buf, v);
    std::size_t offset = 0;
    std::uint64_t out = 0;
    ASSERT_TRUE(codec::get_varint(buf, offset, out));
    EXPECT_EQ(out, v);
    EXPECT_EQ(offset, buf.size());
  }
}

TEST(CodecTest, VarintRoundtripLargeValues) {
  for (const std::uint64_t v :
       {~std::uint64_t{0}, std::uint64_t{1} << 63, std::uint64_t{0xdeadbeefcafebabe}}) {
    std::vector<std::uint8_t> buf;
    codec::put_varint(buf, v);
    std::size_t offset = 0;
    std::uint64_t out = 0;
    ASSERT_TRUE(codec::get_varint(buf, offset, out));
    EXPECT_EQ(out, v);
  }
}

TEST(CodecTest, VarintDetectsTruncation) {
  std::vector<std::uint8_t> buf;
  codec::put_varint(buf, 1'000'000);
  buf.pop_back();
  std::size_t offset = 0;
  std::uint64_t out = 0;
  EXPECT_FALSE(codec::get_varint(buf, offset, out));
}

TEST(CodecTest, ZigzagRoundtrip) {
  for (const std::int64_t v :
       std::initializer_list<std::int64_t>{0, 1, -1, 1234567, -1234567,
                                           std::numeric_limits<std::int64_t>::max(),
                                           std::numeric_limits<std::int64_t>::min()}) {
    EXPECT_EQ(codec::zigzag_decode(codec::zigzag_encode(v)), v);
  }
}

TEST(CodecTest, ZigzagMapsSmallMagnitudesToSmallCodes) {
  EXPECT_EQ(codec::zigzag_encode(0), 0u);
  EXPECT_EQ(codec::zigzag_encode(-1), 1u);
  EXPECT_EQ(codec::zigzag_encode(1), 2u);
  EXPECT_EQ(codec::zigzag_encode(-2), 3u);
}

TEST(CodecTest, Crc32KnownVector) {
  // CRC-32 of "123456789" is 0xCBF43926 (IEEE).
  const std::string s = "123456789";
  const auto crc = codec::crc32(
      std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  EXPECT_EQ(crc, 0xCBF43926u);
}

TEST(CodecTest, Crc32EmptyIsZero) {
  EXPECT_EQ(codec::crc32({}), 0u);
}

// Long inputs take the SIMD folding path where available; writers and
// readers share codec::crc32, so a broken fold would still roundtrip.
// Pin it to an independent bytewise computation at lengths around the
// 64-byte dispatch threshold and the 16-byte fold granularity.
TEST(CodecTest, Crc32LongBufferMatchesBytewise) {
  const auto bytewise = [](std::span<const std::uint8_t> data) {
    std::uint32_t crc = 0xffffffffu;
    for (const std::uint8_t byte : data) {
      crc ^= byte;
      for (int k = 0; k < 8; ++k) crc = (crc & 1) ? 0xedb88320u ^ (crc >> 1) : crc >> 1;
    }
    return crc ^ 0xffffffffu;
  };
  std::vector<std::uint8_t> data(4099);
  std::uint32_t state = 0x12345678u;
  for (auto& byte : data) {
    state = state * 1664525u + 1013904223u;
    byte = static_cast<std::uint8_t>(state >> 24);
  }
  for (const std::size_t len : {0u, 1u, 7u, 63u, 64u, 65u, 80u, 127u, 1024u, 4099u}) {
    const std::span<const std::uint8_t> view(data.data(), len);
    EXPECT_EQ(codec::crc32(view), bytewise(view)) << "length " << len;
  }
}

TEST(CodecTest, BatchRoundtrip) {
  const auto dataset = random_dataset(500, 1);
  const auto payload = codec::encode_batch(dataset.records());
  const auto decoded = codec::decode_batch(payload);
  ASSERT_EQ(decoded.size(), dataset.size());
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_EQ(decoded[i], dataset[i]);
  }
}

TEST(CodecTest, BatchPreservesSubCentLatencyResolution) {
  Dataset d;
  d.add({.time_ms = 1, .user_id = 1, .latency_ms = 123.45});
  const auto decoded = codec::decode_batch(codec::encode_batch(d.records()));
  EXPECT_DOUBLE_EQ(decoded[0].latency_ms, 123.45);
}

TEST(CodecTest, DecodeBatchIntoReusesScratchAcrossCalls) {
  // The ingest hot loop decodes every frame into one scratch vector; the
  // reused buffer must produce the same records as the allocating overload
  // and keep its capacity once grown.
  std::vector<ActionRecord> scratch;
  for (const std::size_t n : {500u, 100u, 300u}) {
    const Dataset dataset = random_dataset(n, 7 + n);
    const auto payload = codec::encode_batch(dataset.records());
    codec::decode_batch_into(payload, scratch);
    const auto fresh = codec::decode_batch(payload);
    ASSERT_EQ(scratch.size(), n);
    ASSERT_EQ(scratch, fresh);
  }
  // Capacity from the 500-record call survived the smaller decodes.
  EXPECT_GE(scratch.capacity(), 500u);
}

TEST(CodecTest, EmptyBatchRoundtrip) {
  const auto payload = codec::encode_batch({});
  EXPECT_TRUE(codec::decode_batch(payload).empty());
}

TEST(CodecTest, DecodeRejectsTruncatedPayload) {
  const auto dataset = random_dataset(10, 2);
  auto payload = codec::encode_batch(dataset.records());
  payload.resize(payload.size() / 2);
  EXPECT_THROW(codec::decode_batch(payload), std::runtime_error);
}

TEST(CodecTest, DecodeRejectsTrailingBytes) {
  const auto dataset = random_dataset(3, 3);
  auto payload = codec::encode_batch(dataset.records());
  payload.push_back(0);
  EXPECT_THROW(codec::decode_batch(payload), std::runtime_error);
}

TEST(CodecTest, DecodeRejectsInvalidEnums) {
  Dataset d;
  d.add({.time_ms = 1, .user_id = 1, .latency_ms = 1.0});
  auto payload = codec::encode_batch(d.records());
  payload[payload.size() - 3] = 99;  // action byte
  EXPECT_THROW(codec::decode_batch(payload), std::runtime_error);
}

TEST(BinlogTest, StreamRoundtrip) {
  const auto dataset = random_dataset(2000, 4);
  std::stringstream stream;
  write_binlog(stream, dataset, /*batch_size=*/256);
  const auto decoded = read_binlog(stream);
  ASSERT_EQ(decoded.size(), dataset.size());
  for (std::size_t i = 0; i < decoded.size(); ++i) EXPECT_EQ(decoded[i], dataset[i]);
}

TEST(BinlogTest, ZeroBatchSizeThrows) {
  std::stringstream stream;
  EXPECT_THROW(write_binlog(stream, Dataset{}, 0), std::invalid_argument);
}

TEST(BinlogTest, EmptyDatasetRoundtrip) {
  std::stringstream stream;
  write_binlog(stream, Dataset{});
  EXPECT_TRUE(read_binlog(stream).empty());
}

TEST(BinlogTest, BadMagicThrows) {
  std::istringstream in("XXXX");
  EXPECT_THROW(read_binlog(in), std::runtime_error);
}

TEST(BinlogTest, CorruptedPayloadFailsCrc) {
  const auto dataset = random_dataset(100, 5);
  std::stringstream stream;
  write_binlog(stream, dataset);
  std::string bytes = stream.str();
  bytes[20] ^= 0x40;  // flip a bit inside the first frame payload
  std::istringstream in(bytes);
  EXPECT_THROW(read_binlog(in), std::runtime_error);
}

TEST(BinlogTest, TruncatedFileThrows) {
  const auto dataset = random_dataset(100, 6);
  std::stringstream stream;
  write_binlog(stream, dataset);
  std::string bytes = stream.str();
  bytes.resize(bytes.size() - 3);
  std::istringstream in(bytes);
  EXPECT_THROW(read_binlog(in), std::runtime_error);
}

TEST(CodecTest, DecodeRejectsHugeClaimedCount) {
  // A tiny payload claiming 2^60 records must fail the per-record truncation
  // check (runtime_error), not die in reserve() with bad_alloc/length_error.
  std::vector<std::uint8_t> payload;
  codec::put_varint(payload, std::uint64_t{1} << 60);
  EXPECT_THROW(codec::decode_batch(payload), std::runtime_error);
}

namespace {

/// Assembles one ASL2 envelope frame (length + payload + CRC) from raw bytes.
std::string frame_bytes(const std::vector<std::uint8_t>& payload) {
  std::string out;
  const auto put_u32 = [&out](std::uint32_t v) {
    for (int shift = 0; shift < 32; shift += 8) {
      out.push_back(static_cast<char>((v >> shift) & 0xff));
    }
  };
  put_u32(static_cast<std::uint32_t>(payload.size()));
  out.append(payload.begin(), payload.end());
  put_u32(codec::crc32(payload));
  return out;
}

}  // namespace

TEST(BinlogTest, RejectsOverflowingV2RecordCount) {
  // Because 27 (the fixed bytes-per-record) is odd, it is invertible mod
  // 2^64: for any payload remainder L there is a huge count whose product
  // `count * 27` wraps to exactly L. A multiplication-based size check
  // accepts such frames and the loader then reads ~1e18 records out of
  // bounds. Craft the two-frame variant of that attack (counts summing to
  // 2 mod 2^64, so even the total looks sane) and require a clean throw.
  std::uint64_t inv = 1;
  for (int i = 0; i < 6; ++i) inv *= 2 - 27 * inv;  // Newton: 27^{-1} mod 2^64
  ASSERT_EQ(inv * 27, 1u);

  std::vector<std::uint8_t> payload1;
  codec::put_varint(payload1, inv);  // inv * 27 == 1 (mod 2^64)
  payload1.push_back(0);             // 1 byte of "records"

  const std::uint64_t count2 = 2 - inv;  // count2 * 27 == 53 (mod 2^64)
  std::vector<std::uint8_t> payload2;
  codec::put_varint(payload2, count2);
  payload2.insert(payload2.end(), 53, 0);

  std::string bytes = "ASL2";
  bytes += frame_bytes(payload1);
  bytes += frame_bytes(payload2);
  std::istringstream in(bytes);
  EXPECT_THROW(read_binlog(in), std::runtime_error);
}

TEST(BinlogTest, V2EmptyFramesProduceEmptyDataset) {
  // write_binlog never emits count-0 frames, but the format allows them;
  // reading them must not touch the (possibly nullptr) column buffers.
  std::vector<std::uint8_t> empty_payload;
  codec::put_varint(empty_payload, 0);
  std::string bytes = "ASL2";
  bytes += frame_bytes(empty_payload);
  bytes += frame_bytes(empty_payload);
  std::istringstream in(bytes);
  EXPECT_TRUE(read_binlog(in).empty());
}

TEST(BinlogTest, FileRoundtrip) {
  const auto dataset = random_dataset(300, 7);
  const std::string path = ::testing::TempDir() + "/autosens_binlog_test.bin";
  write_binlog_file(path, dataset);
  const auto decoded = read_binlog_file(path);
  ASSERT_EQ(decoded.size(), dataset.size());
  EXPECT_EQ(decoded[0], dataset[0]);
  EXPECT_EQ(decoded[decoded.size() - 1], dataset[dataset.size() - 1]);
}

TEST(BinlogTest, V1CompressionBeatsCsvForDenseLogs) {
  const auto dataset = random_dataset(5000, 8);
  std::stringstream bin;
  // The delta-varint property belongs to the legacy row format; ASL2 trades
  // size (fixed 27 bytes/record) for zero-copy loads.
  write_binlog_v1(bin, dataset);
  EXPECT_LT(bin.str().size(), dataset.size() * 20);  // < 20 bytes/record
}

TEST(BinlogTest, ReadsLegacyV1Files) {
  const auto dataset = random_dataset(500, 8);
  std::stringstream stream;
  write_binlog_v1(stream, dataset, /*batch_size=*/128);
  const auto decoded = read_binlog(stream);
  ASSERT_EQ(decoded.size(), dataset.size());
  for (std::size_t i = 0; i < decoded.size(); ++i) EXPECT_EQ(decoded[i], dataset[i]);
}

/// Property: roundtrip across batch sizes, including batch = 1 and batch
/// larger than the dataset.
class BinlogBatchProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BinlogBatchProperty, RoundtripAnyBatchSize) {
  const auto dataset = random_dataset(257, 9);
  std::stringstream stream;
  write_binlog(stream, dataset, GetParam());
  const auto decoded = read_binlog(stream);
  ASSERT_EQ(decoded.size(), dataset.size());
  for (std::size_t i = 0; i < decoded.size(); ++i) EXPECT_EQ(decoded[i], dataset[i]);
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, BinlogBatchProperty,
                         ::testing::Values(1, 2, 100, 256, 257, 1000));

}  // namespace
}  // namespace autosens::telemetry
