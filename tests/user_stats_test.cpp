#include "telemetry/user_stats.h"

#include <gtest/gtest.h>

#include "simulate/generator.h"
#include "simulate/presets.h"
#include "telemetry/filter.h"

namespace autosens::telemetry {
namespace {

ActionRecord make_record(std::uint64_t user, double latency,
                         UserClass user_class = UserClass::kBusiness) {
  static std::int64_t t = 0;
  return {.time_ms = ++t,
          .user_id = user,
          .latency_ms = latency,
          .action = ActionType::kSelectMail,
          .user_class = user_class,
          .status = ActionStatus::kSuccess};
}

TEST(UserAccumulatorTest, EmptyAccumulator) {
  const UserAccumulator acc;
  EXPECT_EQ(acc.user_count(), 0u);
  EXPECT_TRUE(acc.summaries().empty());
  EXPECT_TRUE(acc.median_latency().empty());
}

TEST(UserAccumulatorTest, ExactStatsForSmallUsers) {
  UserAccumulator acc;
  acc.add(make_record(1, 10.0));
  acc.add(make_record(1, 30.0));
  acc.add(make_record(1, 20.0));
  acc.add(make_record(2, 100.0, UserClass::kConsumer));
  ASSERT_EQ(acc.user_count(), 2u);
  const auto medians = acc.median_latency();
  EXPECT_DOUBLE_EQ(medians.at(1), 20.0);
  EXPECT_DOUBLE_EQ(medians.at(2), 100.0);
  for (const auto& summary : acc.summaries()) {
    if (summary.user_id == 1) {
      EXPECT_EQ(summary.actions, 3u);
      EXPECT_DOUBLE_EQ(summary.mean_latency_ms, 20.0);
      EXPECT_EQ(summary.user_class, UserClass::kBusiness);
    } else {
      EXPECT_EQ(summary.actions, 1u);
      EXPECT_EQ(summary.user_class, UserClass::kConsumer);
    }
  }
}

TEST(UserAccumulatorTest, StreamingMedianTracksExactMedianOnWorkload) {
  auto generated =
      simulate::WorkloadGenerator(simulate::paper_config(simulate::Scale::kTiny, 31))
          .generate();
  UserAccumulator acc;
  for (const auto& r : generated.dataset.records()) acc.add(r);
  const auto exact = generated.dataset.per_user_median_latency();
  const auto streaming = acc.median_latency();
  ASSERT_EQ(streaming.size(), exact.size());
  std::size_t close = 0;
  for (const auto& [user, median] : exact) {
    ASSERT_TRUE(streaming.contains(user));
    if (std::abs(streaming.at(user) / median - 1.0) < 0.10) ++close;
  }
  // P² is an approximation: the overwhelming majority must be within 10 %.
  EXPECT_GT(close, exact.size() * 9 / 10);
}

TEST(UserAccumulatorTest, StreamingQuartilesMatchExactQuartilesMostly) {
  // The end use: quartile assignment from streaming medians should agree
  // with exact assignment for nearly all users.
  auto generated =
      simulate::WorkloadGenerator(simulate::paper_config(simulate::Scale::kTiny, 32))
          .generate();
  UserAccumulator acc;
  for (const auto& r : generated.dataset.records()) acc.add(r);
  const UserQuartiles exact(generated.dataset);
  const UserQuartiles streaming(acc.median_latency());
  std::size_t agree = 0;
  std::size_t total = 0;
  for (const auto& summary : acc.summaries()) {
    ++total;
    if (exact.quartile_of(summary.user_id) == streaming.quartile_of(summary.user_id)) {
      ++agree;
    }
  }
  EXPECT_GT(agree, total * 8 / 10);
}

TEST(UserQuartilesTest, FromPrecomputedMedians) {
  std::unordered_map<std::uint64_t, double> medians;
  for (std::uint64_t u = 1; u <= 8; ++u) medians[u] = static_cast<double>(u * 10);
  const UserQuartiles quartiles(medians);
  EXPECT_EQ(quartiles.quartile_of(1), 0);
  EXPECT_EQ(quartiles.quartile_of(8), 3);
  EXPECT_THROW(UserQuartiles(std::unordered_map<std::uint64_t, double>{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace autosens::telemetry
