#include "stats/savitzky_golay.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "stats/rng.h"

namespace autosens::stats {
namespace {

TEST(SavitzkyGolayTest, RejectsEvenWindow) {
  EXPECT_THROW(SavitzkyGolay({.window = 100, .degree = 3}), std::invalid_argument);
  EXPECT_THROW(SavitzkyGolay({.window = 0, .degree = 0}), std::invalid_argument);
}

TEST(SavitzkyGolayTest, RejectsDegreeNotBelowWindow) {
  EXPECT_THROW(SavitzkyGolay({.window = 5, .degree = 5}), std::invalid_argument);
  EXPECT_THROW(SavitzkyGolay({.window = 5, .degree = 7}), std::invalid_argument);
}

TEST(SavitzkyGolayTest, KernelSumsToOne) {
  const SavitzkyGolay filter({.window = 11, .degree = 3});
  double sum = 0.0;
  for (const double k : filter.kernel()) sum += k;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(SavitzkyGolayTest, KernelIsSymmetric) {
  const SavitzkyGolay filter({.window = 9, .degree = 2});
  const auto kernel = filter.kernel();
  for (std::size_t i = 0; i < kernel.size() / 2; ++i) {
    EXPECT_NEAR(kernel[i], kernel[kernel.size() - 1 - i], 1e-12);
  }
}

TEST(SavitzkyGolayTest, MatchesClassicQuadraticCoefficients) {
  // The classic SG(5, 2) kernel is (-3, 12, 17, 12, -3) / 35.
  const SavitzkyGolay filter({.window = 5, .degree = 2});
  const auto kernel = filter.kernel();
  const std::vector<double> expected = {-3.0 / 35, 12.0 / 35, 17.0 / 35, 12.0 / 35,
                                        -3.0 / 35};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(kernel[i], expected[i], 1e-12);
  }
}

TEST(SavitzkyGolayTest, EmptySignalGivesEmptyOutput) {
  const SavitzkyGolay filter({.window = 5, .degree = 2});
  EXPECT_TRUE(filter.smooth({}).empty());
}

TEST(SavitzkyGolayTest, ShortSignalUsesWholeFit) {
  const SavitzkyGolay filter({.window = 101, .degree = 3});
  // Signal shorter than the window: should fit one cubic, here exact.
  std::vector<double> signal;
  for (int i = 0; i < 20; ++i) signal.push_back(1.0 + 0.5 * i - 0.01 * i * i);
  const auto smoothed = filter.smooth(signal);
  ASSERT_EQ(smoothed.size(), signal.size());
  for (std::size_t i = 0; i < signal.size(); ++i) {
    EXPECT_NEAR(smoothed[i], signal[i], 1e-9);
  }
}

TEST(SavitzkyGolayTest, PreservesConstantSignal) {
  const SavitzkyGolay filter({.window = 11, .degree = 3});
  const std::vector<double> signal(100, 4.2);
  for (const double v : filter.smooth(signal)) EXPECT_NEAR(v, 4.2, 1e-12);
}

TEST(SavitzkyGolayTest, ReducesNoiseVariance) {
  Random random(3);
  std::vector<double> signal(2000);
  for (auto& v : signal) v = random.normal();
  const auto smoothed = savgol_smooth(signal, 101, 3);
  double var_in = 0.0;
  double var_out = 0.0;
  for (std::size_t i = 0; i < signal.size(); ++i) {
    var_in += signal[i] * signal[i];
    var_out += smoothed[i] * smoothed[i];
  }
  EXPECT_LT(var_out, 0.2 * var_in);
}

TEST(SavitzkyGolayTest, TracksSmoothSignal) {
  std::vector<double> signal(500);
  for (std::size_t i = 0; i < signal.size(); ++i) {
    signal[i] = std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 500.0);
  }
  const auto smoothed = savgol_smooth(signal, 51, 3);
  for (std::size_t i = 0; i < signal.size(); ++i) {
    EXPECT_NEAR(smoothed[i], signal[i], 0.01);
  }
}

TEST(SavitzkyGolayTest, EdgeHandlingIsExactOnPolynomials) {
  // "interp" edges: a polynomial of the filter degree passes through
  // unchanged everywhere INCLUDING the first/last half-window.
  std::vector<double> signal(300);
  for (std::size_t i = 0; i < signal.size(); ++i) {
    const double x = static_cast<double>(i);
    signal[i] = 5.0 - 0.3 * x + 0.002 * x * x + 1e-6 * x * x * x;
  }
  const auto smoothed = savgol_smooth(signal, 101, 3);
  for (std::size_t i = 0; i < signal.size(); ++i) {
    EXPECT_NEAR(smoothed[i], signal[i], 1e-6) << "at index " << i;
  }
}

/// Property: polynomials of degree <= filter degree are fixed points, for a
/// sweep of (window, degree) configurations — the defining SG property.
using SgConfig = std::pair<std::size_t, std::size_t>;
class SavitzkyGolayPolynomialProperty : public ::testing::TestWithParam<SgConfig> {};

TEST_P(SavitzkyGolayPolynomialProperty, PolynomialIsFixedPoint) {
  const auto [window, degree] = GetParam();
  const SavitzkyGolay filter({.window = window, .degree = degree});
  std::vector<double> signal(window * 3);
  for (std::size_t i = 0; i < signal.size(); ++i) {
    double v = 0.0;
    double p = 1.0;
    const double x = static_cast<double>(i) / static_cast<double>(signal.size());
    for (std::size_t d = 0; d <= degree; ++d) {
      v += p;
      p *= x;
    }
    signal[i] = v;
  }
  const auto smoothed = filter.smooth(signal);
  for (std::size_t i = 0; i < signal.size(); ++i) {
    EXPECT_NEAR(smoothed[i], signal[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, SavitzkyGolayPolynomialProperty,
                         ::testing::Values(SgConfig{5, 2}, SgConfig{7, 3}, SgConfig{21, 2},
                                           SgConfig{51, 3}, SgConfig{101, 3},
                                           SgConfig{101, 5}, SgConfig{11, 0}));

}  // namespace
}  // namespace autosens::stats
