#!/usr/bin/env bash
# End-to-end check of the `store` subcommands against one generated dataset:
#
#   1. `store build` spills a generated binlog into an ASL3 directory;
#   2. `store info` must render the partition manifest table (per-partition
#      rows/time range/compression) plus the summary line;
#   3. `store analyze` streams windowed preference curves off the store;
#   4. `store export` -> `store build` must reproduce every partition file
#      byte-for-byte (the round-trip golden property).
#
# Usage: cli_store_e2e.sh <autosens_cli>
set -euo pipefail

CLI="$1"
WORK="$(mktemp -d)"
cleanup() { rm -rf "$WORK"; }
trap cleanup EXIT

"$CLI" generate --out "$WORK/data.bin" --scale tiny --seed 42 --days 3 >/dev/null

# Small partitions/blocks so the tiny dataset still yields several shards.
"$CLI" store build --in "$WORK/data.bin" --out "$WORK/store" \
    --partition-rows 4096 --block-rows 512 > "$WORK/build.out"
grep -Eq '^wrote [0-9]+ rows in [0-9]+ partitions to ' "$WORK/build.out" || {
  echo "FAIL: store build did not report rows/partitions" >&2
  cat "$WORK/build.out" >&2
  exit 1
}
rows="$(sed -n 's/^wrote \([0-9]*\) rows in .*/\1/p' "$WORK/build.out")"
[[ -f "$WORK/store/MANIFEST" ]] || { echo "FAIL: no MANIFEST written" >&2; exit 1; }

# The partition manifest table: every header column, at least one partition
# row (day-000000 shard 0), and a summary whose row count matches the build.
"$CLI" store info --in "$WORK/store" > "$WORK/info.out"
for column in partition day rows "time range (ms)" "raw MiB" "stored MiB" ratio; do
  grep -q "$column" "$WORK/info.out" || {
    echo "FAIL: store info table lacks column '$column'" >&2
    cat "$WORK/info.out" >&2
    exit 1
  }
done
grep -q 'day-000000\.0' "$WORK/info.out" || {
  echo "FAIL: store info lists no day-000000.0 partition" >&2
  cat "$WORK/info.out" >&2
  exit 1
}
grep -Eq "^[0-9]+ partitions, $rows rows, " "$WORK/info.out" || {
  echo "FAIL: store info summary disagrees with build ($rows rows)" >&2
  cat "$WORK/info.out" >&2
  exit 1
}

# Windowed analysis straight off the store.
"$CLI" store analyze --in "$WORK/store" --window-days 2 > "$WORK/analyze.out"
grep -q 'NLP@500' "$WORK/analyze.out"
grep -Eq '^[0-9]+ windows, ' "$WORK/analyze.out" || {
  echo "FAIL: store analyze produced no summary" >&2
  cat "$WORK/analyze.out" >&2
  exit 1
}

# Round trip: export the store to a binlog, rebuild, compare byte-for-byte.
"$CLI" store export --in "$WORK/store" --out "$WORK/back.bin" --batch 1000 \
    > "$WORK/export.out"
grep -Eq "^exported $rows rows to " "$WORK/export.out"
"$CLI" store build --in "$WORK/back.bin" --out "$WORK/store2" \
    --partition-rows 4096 --block-rows 512 >/dev/null
diff -rq "$WORK/store" "$WORK/store2" >/dev/null || {
  echo "FAIL: rebuilt store differs from the original" >&2
  diff -rq "$WORK/store" "$WORK/store2" >&2 || true
  exit 1
}

echo "PASS: cli store e2e ($rows rows)"
