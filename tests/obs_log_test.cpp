#include "obs/log.h"

#include <gtest/gtest.h>

#include <sstream>

namespace autosens::obs {
namespace {

/// Redirect the sink per test and restore the defaults afterwards.
class ObsLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_log_sink(&out_);
    set_log_level(LogLevel::kInfo);
  }
  void TearDown() override {
    set_log_sink(nullptr);
    set_log_level(LogLevel::kInfo);
  }
  std::ostringstream out_;
};

TEST_F(ObsLogTest, InfoLevelDropsDebug) {
  log_debug("hidden");
  EXPECT_EQ(out_.str(), "");
  log_info("shown", {{"port", 9091}});
  EXPECT_EQ(out_.str(), "info: shown port=9091\n");
}

TEST_F(ObsLogTest, DebugLevelShowsBoth) {
  set_log_level(LogLevel::kDebug);
  log_debug("first");
  log_info("second");
  EXPECT_EQ(out_.str(), "debug: first\ninfo: second\n");
}

TEST_F(ObsLogTest, QuietSilencesEverything) {
  set_log_level(LogLevel::kQuiet);
  log_info("a");
  log_debug("b");
  EXPECT_EQ(out_.str(), "");
}

TEST_F(ObsLogTest, FieldsQuoteWhenNeeded) {
  log_info("event", {{"plain", "value"},
                     {"spaced", "two words"},
                     {"quoted", "say \"hi\""},
                     {"flag", true},
                     {"ratio", 0.5}});
  EXPECT_EQ(out_.str(),
            "info: event plain=value spaced=\"two words\" "
            "quoted=\"say \\\"hi\\\"\" flag=true ratio=0.5\n");
}

TEST_F(ObsLogTest, ParseLogLevel) {
  EXPECT_EQ(parse_log_level("quiet"), LogLevel::kQuiet);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
}

TEST_F(ObsLogTest, NullSinkRestoresStderr) {
  set_log_sink(nullptr);
  // Nothing to assert on stderr content; just exercise the path.
  set_log_level(LogLevel::kQuiet);
  log_info("dropped");
  SUCCEED();
}

}  // namespace
}  // namespace autosens::obs
