#include "stats/histogram.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace autosens::stats {
namespace {

TEST(HistogramTest, ConstructorValidatesArguments) {
  EXPECT_THROW(Histogram(0.0, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, -1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(HistogramTest, CoveringComputesBinCount) {
  const auto h = Histogram::covering(0.0, 100.0, 10.0);
  EXPECT_EQ(h.size(), 10u);
  EXPECT_DOUBLE_EQ(h.bin_width(), 10.0);
}

TEST(HistogramTest, CoveringRoundsUp) {
  const auto h = Histogram::covering(0.0, 95.0, 10.0);
  EXPECT_EQ(h.size(), 10u);
}

TEST(HistogramTest, CoveringValidates) {
  EXPECT_THROW(Histogram::covering(10.0, 10.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Histogram::covering(0.0, 10.0, 0.0), std::invalid_argument);
}

TEST(HistogramTest, BinIndexMapsValues) {
  const Histogram h(0.0, 10.0, 10);
  EXPECT_EQ(h.bin_index(0.0), 0u);
  EXPECT_EQ(h.bin_index(9.999), 0u);
  EXPECT_EQ(h.bin_index(10.0), 1u);
  EXPECT_EQ(h.bin_index(55.0), 5u);
}

TEST(HistogramTest, OutOfRangeValuesClampIntoEdgeBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(-50.0);
  h.add(1e9);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(9), 1.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 2.0);  // weight conserved
}

TEST(HistogramTest, BinEdgesAndCenters) {
  const Histogram h(100.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_left(0), 100.0);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 105.0);
  EXPECT_DOUBLE_EQ(h.bin_left(4), 140.0);
}

TEST(HistogramTest, WeightedAdds) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.5, 2.5);
  h.add(1.5, 0.5);
  EXPECT_DOUBLE_EQ(h.count(0), 2.5);
  EXPECT_DOUBLE_EQ(h.count(1), 0.5);
  EXPECT_DOUBLE_EQ(h.total_weight(), 3.0);
}

TEST(HistogramTest, AddAllFillsFromSpan) {
  Histogram h(0.0, 1.0, 3);
  const std::vector<double> values = {0.1, 1.1, 2.1, 0.2};
  h.add_all(values);
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
  EXPECT_DOUBLE_EQ(h.count(2), 1.0);
}

TEST(HistogramTest, SetCountKeepsTotalConsistent) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.set_count(0, 5.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 6.0);
}

TEST(HistogramTest, ScaleMultipliesEverything) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.5);
  h.add(1.5, 3.0);
  h.scale(2.0);
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(1), 6.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 8.0);
}

TEST(HistogramTest, MergeAddsBinWise) {
  Histogram a(0.0, 1.0, 3);
  Histogram b(0.0, 1.0, 3);
  a.add(0.5);
  b.add(0.5);
  b.add(2.5);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.count(0), 2.0);
  EXPECT_DOUBLE_EQ(a.count(2), 1.0);
  EXPECT_DOUBLE_EQ(a.total_weight(), 3.0);
}

TEST(HistogramTest, MergeRejectsGeometryMismatch) {
  Histogram a(0.0, 1.0, 3);
  Histogram b(0.0, 2.0, 3);
  Histogram c(0.0, 1.0, 4);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(HistogramTest, PdfIntegratesToOne) {
  Histogram h(0.0, 0.5, 20);
  for (int i = 0; i < 100; ++i) h.add(i * 0.1);
  const auto pdf = h.pdf();
  double integral = 0.0;
  for (const double d : pdf) integral += d * h.bin_width();
  EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(HistogramTest, PdfOfEmptyHistogramIsZero) {
  const Histogram h(0.0, 1.0, 5);
  for (const double d : h.pdf()) EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST(HistogramTest, CdfIsMonotoneAndEndsAtOne) {
  Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 50; ++i) h.add(i * 0.2);
  const auto cdf = h.cdf();
  for (std::size_t i = 1; i < cdf.size(); ++i) EXPECT_GE(cdf[i], cdf[i - 1]);
  EXPECT_NEAR(cdf.back(), 1.0, 1e-12);
}

TEST(HistogramTest, QuantileValidation) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_THROW(h.quantile(0.5), std::invalid_argument);  // empty
  h.add(0.5);
  EXPECT_THROW(h.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(h.quantile(1.1), std::invalid_argument);
}

TEST(HistogramTest, QuantileInterpolatesWithinBin) {
  Histogram h(0.0, 10.0, 2);
  h.add(5.0, 10.0);  // all mass in bin [0, 10)
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1e-9);
  EXPECT_NEAR(h.quantile(0.25), 2.5, 1e-9);
}

TEST(HistogramTest, MeanOfUniformFill) {
  Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.mean(), 5.0, 1e-12);
}

TEST(HistogramTest, MeanOfEmptyIsZero) {
  const Histogram h(0.0, 1.0, 10);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

/// Property over bin widths: every added value lands in the bin whose range
/// contains it, and totals are exact.
class HistogramBinWidthProperty : public ::testing::TestWithParam<double> {};

TEST_P(HistogramBinWidthProperty, ValuesLandInContainingBin) {
  const double width = GetParam();
  const auto h = Histogram::covering(0.0, 100.0, width);
  for (double v = 0.05; v < 100.0; v += 0.7) {
    const std::size_t idx = h.bin_index(v);
    EXPECT_LE(h.bin_left(idx), v);
    if (idx + 1 < h.size()) {
      EXPECT_LT(v, h.bin_left(idx + 1));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, HistogramBinWidthProperty,
                         ::testing::Values(0.5, 1.0, 3.0, 10.0, 33.0));

}  // namespace
}  // namespace autosens::stats
