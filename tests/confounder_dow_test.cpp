#include "core/confounder_dow.h"

#include <gtest/gtest.h>

#include "simulate/generator.h"
#include "simulate/presets.h"
#include "telemetry/clock.h"
#include "telemetry/filter.h"
#include "telemetry/validate.h"

namespace autosens::core {
namespace {

constexpr std::int64_t kDay = telemetry::kMillisPerDay;

TEST(DayClassTest, EpochMappingIsThursdayBased) {
  EXPECT_EQ(day_class(0), DayClass::kWeekday);            // Thursday
  EXPECT_EQ(day_class(1 * kDay), DayClass::kWeekday);     // Friday
  EXPECT_EQ(day_class(2 * kDay), DayClass::kWeekend);     // Saturday
  EXPECT_EQ(day_class(3 * kDay), DayClass::kWeekend);     // Sunday
  EXPECT_EQ(day_class(4 * kDay), DayClass::kWeekday);     // Monday
  EXPECT_EQ(day_class(9 * kDay), DayClass::kWeekend);     // next Saturday
}

TEST(DayClassTest, Names) {
  EXPECT_EQ(to_string(DayClass::kWeekday), "weekday");
  EXPECT_EQ(to_string(DayClass::kWeekend), "weekend");
}

TEST(DayClassWindowsTest, PartitionsDataRange) {
  telemetry::Dataset d;
  d.add({.time_ms = 0, .user_id = 1, .latency_ms = 1.0});
  d.add({.time_ms = 14 * kDay - 1, .user_id = 1, .latency_ms = 1.0});
  const auto weekday = day_class_windows(d, DayClass::kWeekday);
  const auto weekend = day_class_windows(d, DayClass::kWeekend);
  EXPECT_EQ(weekday.size(), 10u);  // 14 days starting Thursday: 10 weekdays
  EXPECT_EQ(weekend.size(), 4u);
  std::int64_t covered = 0;
  for (const auto& w : weekday) covered += w.length();
  for (const auto& w : weekend) covered += w.length();
  EXPECT_EQ(covered, 14 * kDay);
}

TEST(DayClassActivityTest, EmptyDatasetThrows) {
  EXPECT_THROW(day_class_activity(telemetry::Dataset{}, AutoSensOptions{}),
               std::invalid_argument);
}

TEST(DayClassActivityTest, RecoversPlantedWeekendFactor) {
  auto config = simulate::paper_config(simulate::Scale::kSmall, 81);
  config.weekend_factor = 0.5;
  auto generated = simulate::WorkloadGenerator(config).generate();
  const auto validated = telemetry::validate(generated.dataset);
  const auto activity = day_class_activity(validated.dataset, AutoSensOptions{});
  EXPECT_NEAR(activity.beta_weekend, 0.5, 0.08);
  EXPECT_GT(activity.weekday_records, activity.weekend_records);
}

TEST(DayClassActivityTest, NoWeekendEffectGivesBetaNearOne) {
  auto config = simulate::paper_config(simulate::Scale::kSmall, 82);
  config.weekend_factor = 1.0;
  auto generated = simulate::WorkloadGenerator(config).generate();
  const auto validated = telemetry::validate(generated.dataset);
  const auto activity = day_class_activity(validated.dataset, AutoSensOptions{});
  EXPECT_NEAR(activity.beta_weekend, 1.0, 0.08);
}

TEST(DayClassActivityTest, BetaIsFlatAcrossLatency) {
  auto config = simulate::paper_config(simulate::Scale::kSmall, 83);
  config.weekend_factor = 0.6;
  auto generated = simulate::WorkloadGenerator(config).generate();
  const auto validated = telemetry::validate(generated.dataset);
  const auto activity = day_class_activity(validated.dataset, AutoSensOptions{});
  std::size_t valid_bins = 0;
  for (std::size_t i = 0; i < activity.beta_by_bin.size(); ++i) {
    if (!activity.valid[i]) continue;
    ++valid_bins;
    EXPECT_NEAR(activity.beta_by_bin[i], 0.6, 0.25) << "bin " << i;
  }
  EXPECT_GT(valid_bins, 5u);
}

TEST(PreferenceByDayClassTest, ProducesBothSlices) {
  auto config = simulate::paper_config(simulate::Scale::kSmall, 84);
  auto generated = simulate::WorkloadGenerator(config).generate();
  const auto validated = telemetry::validate(generated.dataset);
  const auto slice = validated.dataset.filtered(
      telemetry::by_action(telemetry::ActionType::kSelectMail));
  const auto curves = preference_by_day_class(slice, AutoSensOptions{});
  ASSERT_EQ(curves.size(), 2u);
  EXPECT_EQ(curves[0].day_class, DayClass::kWeekday);
  EXPECT_EQ(curves[1].day_class, DayClass::kWeekend);
  // Preference is planted identically on weekdays and weekends (only the
  // activity LEVEL differs), so the curves should roughly agree.
  for (const double latency : {500.0, 1000.0}) {
    if (curves[0].preference.covers(latency) && curves[1].preference.covers(latency)) {
      EXPECT_NEAR(curves[0].preference.at(latency), curves[1].preference.at(latency), 0.08)
          << latency;
    }
  }
}

TEST(PreferenceByDayClassTest, EmptyInputGivesNoCurves) {
  EXPECT_TRUE(preference_by_day_class(telemetry::Dataset{}, AutoSensOptions{}).empty());
}

}  // namespace
}  // namespace autosens::core
