// Property tests over the three serialization formats: for randomized
// datasets of varying shapes, every format must round-trip records exactly
// (binary log bit-exact at its 10 µs latency grid; CSV and JSON-lines via
// their decimal representations) and agree with each other.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "stats/rng.h"
#include "telemetry/binlog.h"
#include "telemetry/csv.h"
#include "telemetry/jsonl.h"

namespace autosens::telemetry {
namespace {

struct DatasetShape {
  std::size_t records;
  double time_rate;        ///< Mean gap control (per ms).
  double latency_sigma;    ///< Lognormal spread.
  double duplicate_p;      ///< Probability of duplicated timestamps.
  std::uint64_t users;
};

Dataset random_dataset(const DatasetShape& shape, std::uint64_t seed) {
  stats::Random random(seed);
  Dataset d;
  std::int64_t t = 1'700'000'000'000;
  for (std::size_t i = 0; i < shape.records; ++i) {
    if (!random.bernoulli(shape.duplicate_p)) {
      t += static_cast<std::int64_t>(random.exponential(shape.time_rate)) + 1;
    }
    d.add({.time_ms = t,
           .user_id = 1 + random.uniform_index(shape.users),
           // Keep latencies on the binary format's 10 µs grid so every
           // format can be compared exactly.
           .latency_ms = std::round(random.lognormal(5.5, shape.latency_sigma) * 100.0) /
                         100.0,
           .action = static_cast<ActionType>(random.uniform_index(kActionTypeCount)),
           .user_class = static_cast<UserClass>(random.uniform_index(kUserClassCount)),
           .status = random.bernoulli(0.03) ? ActionStatus::kError : ActionStatus::kSuccess});
  }
  d.sort_by_time();
  return d;
}

class RoundtripProperty : public ::testing::TestWithParam<int> {
 protected:
  static DatasetShape shape_for(int index) {
    switch (index) {
      case 0: return {.records = 1, .time_rate = 0.01, .latency_sigma = 0.3,
                      .duplicate_p = 0.0, .users = 1};
      case 1: return {.records = 100, .time_rate = 0.001, .latency_sigma = 0.1,
                      .duplicate_p = 0.0, .users = 3};
      case 2: return {.records = 2500, .time_rate = 0.05, .latency_sigma = 0.8,
                      .duplicate_p = 0.3, .users = 50};
      case 3: return {.records = 777, .time_rate = 1.0, .latency_sigma = 0.5,
                      .duplicate_p = 0.9, .users = 7};  // heavy timestamp ties
      default: return {.records = 5000, .time_rate = 0.01, .latency_sigma = 0.4,
                       .duplicate_p = 0.05, .users = 200};
    }
  }
};

TEST_P(RoundtripProperty, BinlogExact) {
  const auto original = random_dataset(shape_for(GetParam()), 1000 + GetParam());
  std::stringstream stream;
  write_binlog(stream, original, /*batch_size=*/97);
  const auto decoded = read_binlog(stream);
  ASSERT_EQ(decoded.size(), original.size());
  for (std::size_t i = 0; i < decoded.size(); ++i) EXPECT_EQ(decoded[i], original[i]);
}

TEST_P(RoundtripProperty, CsvExact) {
  const auto original = random_dataset(shape_for(GetParam()), 2000 + GetParam());
  std::stringstream stream;
  write_csv(stream, original);
  const auto result = read_csv(stream);
  EXPECT_TRUE(result.errors.empty());
  ASSERT_EQ(result.dataset.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(result.dataset[i].time_ms, original[i].time_ms);
    EXPECT_EQ(result.dataset[i].user_id, original[i].user_id);
    EXPECT_EQ(result.dataset[i].action, original[i].action);
    EXPECT_EQ(result.dataset[i].user_class, original[i].user_class);
    EXPECT_EQ(result.dataset[i].status, original[i].status);
    // operator<< prints enough digits for the 10 µs grid.
    EXPECT_NEAR(result.dataset[i].latency_ms, original[i].latency_ms,
                original[i].latency_ms * 1e-5);
  }
}

TEST_P(RoundtripProperty, JsonlMatchesCsv) {
  const auto original = random_dataset(shape_for(GetParam()), 3000 + GetParam());
  std::stringstream csv_stream;
  write_csv(csv_stream, original);
  const auto from_csv = read_csv(csv_stream);

  std::stringstream jsonl_stream;
  write_jsonl(jsonl_stream, original);
  const auto from_jsonl = read_jsonl(jsonl_stream);

  EXPECT_TRUE(from_jsonl.errors.empty());
  ASSERT_EQ(from_jsonl.dataset.size(), from_csv.dataset.size());
  for (std::size_t i = 0; i < from_csv.dataset.size(); ++i) {
    EXPECT_EQ(from_jsonl.dataset[i], from_csv.dataset[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, RoundtripProperty, ::testing::Values(0, 1, 2, 3, 4));

}  // namespace
}  // namespace autosens::telemetry
