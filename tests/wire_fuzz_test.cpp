// Seeded fuzz corpus for the wire decode path (satellite of the fault
// tentpole): mutated byte streams — truncations, garbage prefixes, bit
// flips, pure noise — must never crash, over-read, or throw out of
// FrameDecoder, and the accounting invariants must hold on every input.
// Deterministic: every mutation is drawn from a fixed-seed RNG, so a
// failure reproduces from the iteration index alone. Run under
// ASan/UBSan (tools/run_sanitizers.sh) this is the memory-safety net for
// the resync scanner.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/collector.h"
#include "net/emitter.h"
#include "net/wire.h"
#include "stats/rng.h"
#include "telemetry/record.h"

namespace autosens::net {
namespace {

std::vector<std::uint8_t> valid_stream(stats::Random& random, std::size_t frames) {
  std::vector<std::uint8_t> stream;
  for (std::size_t i = 0; i < frames; ++i) {
    Frame frame;
    const auto pick = random.uniform_index(4);
    frame.type = static_cast<FrameType>(1 + pick);
    frame.seq = static_cast<std::uint32_t>(i + 1);
    if (frame.type == FrameType::kHello) {
      frame = make_hello(1 + random.uniform_index(1 << 20));
      frame.seq = static_cast<std::uint32_t>(i + 1);
    } else if (frame.type == FrameType::kData) {
      frame.payload.resize(random.uniform_index(64));
      for (auto& b : frame.payload) b = static_cast<std::uint8_t>(random.uniform_index(256));
    }
    const auto bytes = encode_frame(frame);
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  return stream;
}

/// Feed `stream` to a decoder in randomly-sized chunks, draining after each
/// feed; returns the number of decoded frames. Asserts the accounting
/// invariants that hold for ANY input.
std::size_t drain_all(stats::Random& random, const std::vector<std::uint8_t>& stream) {
  FrameDecoder decoder;
  std::size_t decoded = 0;
  std::size_t offset = 0;
  while (offset < stream.size()) {
    const std::size_t chunk =
        std::min(stream.size() - offset, 1 + random.uniform_index(97));
    decoder.feed(std::span<const std::uint8_t>(stream.data() + offset, chunk));
    offset += chunk;
    while (auto frame = decoder.next()) {
      ++decoded;
      EXPECT_GE(static_cast<std::uint8_t>(frame->type), 1u);
      EXPECT_LE(static_cast<std::uint8_t>(frame->type), 4u);
    }
  }
  EXPECT_LE(decoder.skipped_bytes(), stream.size());
  EXPECT_LE(decoder.resyncs(), decoder.skipped_bytes());
  EXPECT_LE(decoder.pending_bytes(), stream.size());
  return decoded;
}

TEST(WireFuzzTest, PureNoiseDecodesNothing) {
  stats::Random random(0xf022);
  for (int iter = 0; iter < 50; ++iter) {
    SCOPED_TRACE(iter);
    std::vector<std::uint8_t> noise(random.uniform_index(4096));
    for (auto& b : noise) b = static_cast<std::uint8_t>(random.uniform_index(256));
    // A valid frame needs a matching CRC; noise passing it is ~2^-32.
    drain_all(random, noise);
  }
}

TEST(WireFuzzTest, TruncatedStreamsNeverThrow) {
  stats::Random random(0xf023);
  for (int iter = 0; iter < 60; ++iter) {
    SCOPED_TRACE(iter);
    auto stream = valid_stream(random, 1 + random.uniform_index(8));
    stream.resize(random.uniform_index(stream.size() + 1));  // cut anywhere
    drain_all(random, stream);
  }
}

TEST(WireFuzzTest, GarbagePrefixIsSkippedToFirstFrame) {
  stats::Random random(0xf024);
  for (int iter = 0; iter < 60; ++iter) {
    SCOPED_TRACE(iter);
    const std::size_t frames = 1 + random.uniform_index(6);
    std::vector<std::uint8_t> stream(1 + random.uniform_index(512));
    for (auto& b : stream) b = static_cast<std::uint8_t>(random.uniform_index(256));
    const auto tail = valid_stream(random, frames);
    stream.insert(stream.end(), tail.begin(), tail.end());
    // The garbage may or may not swallow the first real frame boundary (a
    // random prefix can end in a plausible-but-incomplete header); the
    // guarantee is no crash, bounded skipping, and at most `frames` frames.
    const std::size_t decoded = drain_all(random, stream);
    EXPECT_LE(decoded, frames + stream.size() / kFrameOverheadBytes);
  }
}

TEST(WireFuzzTest, BitFlippedStreamsKeepInvariants) {
  stats::Random random(0xf025);
  for (int iter = 0; iter < 80; ++iter) {
    SCOPED_TRACE(iter);
    const std::size_t frames = 1 + random.uniform_index(8);
    auto stream = valid_stream(random, frames);
    const std::size_t flips = 1 + random.uniform_index(8);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t bit = random.uniform_index(stream.size() * 8);
      stream[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    const std::size_t decoded = drain_all(random, stream);
    // Flips can only destroy frames (CRC), never mint extra valid ones
    // beyond vanishing odds; every surviving frame was in the original.
    EXPECT_LE(decoded, frames);
  }
}

TEST(WireFuzzTest, CollectorSurvivesFuzzedConnections) {
  // End-to-end: garbage connections against a live collector must neither
  // kill the serve loop nor poison the clean emitter that follows.
  stats::Random random(0xf026);
  CollectorThread collector(/*expected_goodbyes=*/1);
  for (int iter = 0; iter < 10; ++iter) {
    Socket bad = connect_tcp(collector.port());
    // kData/kFlush only: a goodbye surviving its flips would end the serve
    // loop before the clean emitter gets its turn.
    std::vector<std::uint8_t> stream;
    const std::size_t frames = 1 + random.uniform_index(3);
    for (std::size_t i = 0; i < frames; ++i) {
      Frame frame{.type = random.uniform_index(2) == 0 ? FrameType::kFlush
                                                       : FrameType::kData,
                  .seq = 0,
                  .payload = {}};
      frame.payload.resize(random.uniform_index(64));
      for (auto& b : frame.payload) {
        b = static_cast<std::uint8_t>(random.uniform_index(256));
      }
      const auto bytes = encode_frame(frame);
      stream.insert(stream.end(), bytes.begin(), bytes.end());
    }
    for (int f = 0; f < 12; ++f) {
      const std::size_t bit = random.uniform_index(stream.size() * 8);
      stream[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    write_all(bad, stream);
  }
  Emitter emitter(collector.port());
  emitter.record(telemetry::ActionRecord{.time_ms = 1, .user_id = 1, .latency_ms = 5.0});
  emitter.close();
  const auto dataset = collector.join();
  EXPECT_TRUE(collector.complete());
  EXPECT_GE(dataset.size(), 1u);  // fuzzed kData frames may decode or not
}

}  // namespace
}  // namespace autosens::net
