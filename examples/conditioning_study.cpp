// Conditioning-to-speed study (paper §3.4): do users who are used to a fast
// service react more strongly to latency? Groups users into quartiles by
// their per-user median latency and compares the quartiles' normalized
// latency preference at a probe latency, including bootstrap confidence
// intervals on the per-quartile drop.
#include <iostream>
#include <vector>

#include "core/pipeline.h"
#include "core/slices.h"
#include "report/ascii_chart.h"
#include "report/csvout.h"
#include "report/table.h"
#include "simulate/generator.h"
#include "simulate/presets.h"
#include "stats/bootstrap.h"
#include "telemetry/filter.h"
#include "telemetry/validate.h"

int main() {
  using namespace autosens;

  std::cout << "generating synthetic workload...\n";
  auto generated =
      simulate::WorkloadGenerator(simulate::paper_config(simulate::Scale::kSmall, 13))
          .generate();
  const auto validated = telemetry::validate(generated.dataset);
  const auto consumers = validated.dataset.filtered(
      telemetry::by_user_class(telemetry::UserClass::kConsumer));

  const telemetry::UserQuartiles quartiles(consumers);
  std::cout << "users: " << quartiles.user_count()
            << ", median-latency quartile boundaries: " << quartiles.boundaries()[0] << " / "
            << quartiles.boundaries()[1] << " / " << quartiles.boundaries()[2] << " ms\n\n";

  core::AutoSensOptions options;
  const auto curves = core::preference_by_quartile(consumers, consumers, options,
                                                   telemetry::ActionType::kSelectMail);

  constexpr double kProbeMs = 1000.0;
  report::Table table({"quartile", "records", "NLP@1000ms", "drop", "drop 90% CI"});
  stats::Random random(17);
  for (std::size_t q = 0; q < curves.size(); ++q) {
    const auto& curve = curves[q];
    if (!curve.result.covers(kProbeMs)) {
      table.add_row({curve.name, std::to_string(curve.records), "-", "-", "-"});
      continue;
    }
    const double nlp = curve.result.at(kProbeMs);

    // Bootstrap the drop by resampling users' records within the quartile.
    const auto slice = consumers.filtered(telemetry::all_of(
        {telemetry::by_action(telemetry::ActionType::kSelectMail),
         quartiles.in_quartile(static_cast<int>(q))}));
    const auto statistic = [&](std::span<const std::size_t> indices) {
      telemetry::Dataset resampled;
      for (const auto idx : indices) resampled.append_from(slice, idx);
      resampled.sort_by_time();
      try {
        const auto result = core::analyze(resampled, options);
        return std::vector<double>{result.covers(kProbeMs) ? 1.0 - result.at(kProbeMs) : 0.0};
      } catch (const std::exception&) {
        return std::vector<double>{0.0};
      }
    };
    const auto intervals =
        stats::bootstrap_curve_interval(slice.size(), statistic, 20, 0.9, random);
    // Built by append (not operator+) to dodge a GCC 12 -Wrestrict false
    // positive at -O3 that breaks Release -Werror builds.
    std::string interval("[");
    interval += report::Table::num(intervals[0].lo);
    interval += ", ";
    interval += report::Table::num(intervals[0].hi);
    interval += "]";
    table.add_row({curve.name, std::to_string(curve.records), report::Table::num(nlp),
                   report::Table::num(1.0 - nlp), std::move(interval)});
  }
  table.print(std::cout);
  std::cout << "\nExpected (planted): the drop decreases monotonically from Q1 (fastest\n"
               "users, most sensitive) to Q4 (slowest users, least sensitive).\n\n";

  std::vector<report::Series> chart;
  for (const auto& curve : curves) chart.push_back(report::to_series(curve));
  report::ChartOptions chart_options;
  chart_options.title = "conditioning to speed: preference by quartile";
  chart_options.x_label = "latency (ms)";
  chart_options.y_label = "preference";
  render_chart(std::cout, chart, chart_options);
  return 0;
}
