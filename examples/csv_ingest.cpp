// Telemetry ingestion round trip: export a workload to CSV (the
// interoperable format), re-ingest it, scrub it, and run AutoSens — the
// workflow a downstream user with their own service logs would follow.
// Also converts to the compact binary log and reports the size ratio.
//
// Usage:
//   csv_ingest [output_directory]
#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/pipeline.h"
#include "report/table.h"
#include "simulate/generator.h"
#include "simulate/presets.h"
#include "telemetry/binlog.h"
#include "telemetry/csv.h"
#include "telemetry/filter.h"
#include "telemetry/validate.h"

int main(int argc, char** argv) {
  using namespace autosens;
  const std::filesystem::path dir = argc > 1 ? argv[1] : std::filesystem::temp_directory_path();
  const auto csv_path = (dir / "autosens_telemetry.csv").string();
  const auto bin_path = (dir / "autosens_telemetry.bin").string();

  // 1. Produce a telemetry file, as a real service's log exporter would.
  std::cout << "generating workload and exporting to " << csv_path << "\n";
  auto generated =
      simulate::WorkloadGenerator(simulate::paper_config(simulate::Scale::kTiny, 23))
          .generate();
  telemetry::write_csv_file(csv_path, generated.dataset);
  telemetry::write_binlog_file(bin_path, generated.dataset);

  const auto csv_size = std::filesystem::file_size(csv_path);
  const auto bin_size = std::filesystem::file_size(bin_path);
  std::cout << "csv: " << csv_size << " bytes, binlog: " << bin_size << " bytes ("
            << report::Table::num(static_cast<double>(csv_size) /
                                      static_cast<double>(bin_size),
                                  1)
            << "x smaller)\n\n";

  // 2. Ingest, reporting malformed rows instead of silently dropping them.
  auto read = telemetry::read_csv_file(csv_path);
  if (!read.errors.empty()) {
    std::cout << read.errors.size() << " malformed rows:\n";
    for (const auto& error : read.errors) {
      std::cout << "  line " << error.line << ": " << error.message << "\n";
    }
  }

  // 3. Scrub and analyze.
  const auto validated = telemetry::validate(read.dataset);
  std::cout << validated.report.summary() << "\n\n";
  const auto slice = validated.dataset.filtered(
      telemetry::by_action(telemetry::ActionType::kSelectMail));

  core::AutoSensOptions options;
  const auto result = core::analyze(slice, options);
  report::Table table({"latency (ms)", "normalized latency preference"});
  for (const double latency : {300.0, 500.0, 750.0, 1000.0}) {
    table.add_row({report::Table::num(latency, 0),
                   result.covers(latency) ? report::Table::num(result.at(latency)) : "-"});
  }
  table.print(std::cout);

  std::filesystem::remove(csv_path);
  std::filesystem::remove(bin_path);
  return 0;
}
