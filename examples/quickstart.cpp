// Quickstart: generate a synthetic OWA-like workload with a planted latency
// preference, run the AutoSens pipeline on it, and print the recovered
// normalized latency preference next to the planted ground truth.
//
// This is the smallest end-to-end use of the library:
//   WorkloadGenerator -> validate -> analyze -> PreferenceResult
#include <cstdio>
#include <iostream>

#include "core/pipeline.h"
#include "report/table.h"
#include "simulate/generator.h"
#include "simulate/presets.h"
#include "telemetry/filter.h"
#include "telemetry/validate.h"

int main() {
  using namespace autosens;

  // 1. A two-week synthetic workload (use Scale::kFull for the paper runs).
  const auto config = simulate::paper_config(simulate::Scale::kSmall, /*seed=*/1);
  simulate::WorkloadGenerator generator(config);
  std::cout << "generating workload..." << std::flush;
  auto generated = generator.generate();
  std::cout << " " << generated.accepted << " actions from " << generated.candidates
            << " candidates\n";

  // 2. Scrub the telemetry (drop errors and absurd latencies), as the paper
  //    does by analyzing successful actions only.
  const auto validated = telemetry::validate(generated.dataset);
  std::cout << validated.report.summary() << "\n";

  // 3. Slice: SelectMail by business users (the paper's headline slice).
  const auto slice = validated.dataset.filtered(telemetry::all_of(
      {telemetry::by_action(telemetry::ActionType::kSelectMail),
       telemetry::by_user_class(telemetry::UserClass::kBusiness)}));
  std::cout << "SelectMail/business slice: " << slice.size() << " records\n\n";

  // 4. Run AutoSens.
  core::AutoSensOptions options;
  const auto result = core::analyze(slice, options);

  // 5. Compare with the planted ground truth at a few anchor latencies.
  const auto planted = simulate::expected_pooled_curve(
      config, telemetry::ActionType::kSelectMail, telemetry::UserClass::kBusiness,
      options.reference_latency_ms);
  report::Table table({"latency (ms)", "planted", "recovered"});
  for (const double latency : {300.0, 500.0, 750.0, 1000.0, 1500.0, 2000.0}) {
    table.add_row({report::Table::num(latency, 0), report::Table::num(planted(latency)),
                   result.covers(latency) ? report::Table::num(result.at(latency))
                                          : "(no support)"});
  }
  table.print(std::cout);
  std::cout << "\nnormalized latency preference at reference ("
            << options.reference_latency_ms << " ms) = 1 by construction\n";
  return 0;
}
