// Live telemetry collection demo: the measurement path of the paper (§3.1)
// on loopback TCP. Simulated web clients measure per-action latency and
// beacon it to a collector server; the collector's dataset then feeds the
// AutoSens analysis — no files in between.
//
// Pipeline: WorkloadGenerator → N Emitters (clients) → Collector (server)
//           → validate → analyze.
#include <iostream>
#include <vector>

#include "core/pipeline.h"
#include "net/collector.h"
#include "net/emitter.h"
#include "report/table.h"
#include "simulate/generator.h"
#include "simulate/presets.h"
#include "telemetry/filter.h"
#include "telemetry/validate.h"

int main() {
  using namespace autosens;
  constexpr std::size_t kClientCount = 4;

  // The collector is the "server side": it logs whatever clients report.
  net::CollectorThread collector(/*expected_goodbyes=*/kClientCount);
  std::cout << "collector listening on 127.0.0.1:" << collector.port() << "\n";

  // Generate the ground-truth workload and shard it across clients, as if
  // each client batch-uploaded its own users' actions.
  auto generated =
      simulate::WorkloadGenerator(simulate::paper_config(simulate::Scale::kTiny, 29))
          .generate();
  const auto& generated_dataset = generated.dataset;
  std::cout << "replaying " << generated_dataset.size() << " actions through " << kClientCount
            << " emitters\n";

  for (std::size_t c = 0; c < kClientCount; ++c) {
    net::Emitter emitter(collector.port(), {.batch_size = 256});
    for (std::size_t i = c; i < generated_dataset.size(); i += kClientCount) {
      emitter.record(generated_dataset[i]);
    }
    emitter.flush();
    emitter.close();
    std::cout << "  client " << c + 1 << ": sent " << emitter.sent_records() << " records in "
              << emitter.sent_frames() << " frames\n";
  }

  const auto collected = collector.join();
  const auto stats = collector.stats();
  std::cout << "collector: " << stats.connections << " connections, " << stats.frames
            << " frames, " << stats.records << " records\n\n";

  const auto validated = telemetry::validate(collected);
  const auto slice = validated.dataset.filtered(
      telemetry::by_action(telemetry::ActionType::kSelectMail));
  core::AutoSensOptions options;
  const auto result = core::analyze(slice, options);

  report::Table table({"latency (ms)", "normalized latency preference"});
  for (const double latency : {300.0, 500.0, 750.0, 1000.0}) {
    table.add_row({report::Table::num(latency, 0),
                   result.covers(latency) ? report::Table::num(result.at(latency)) : "-"});
  }
  table.print(std::cout);
  std::cout << "\n(live-collected telemetry analyzed without touching disk)\n";
  return 0;
}
