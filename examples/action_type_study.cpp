// Action-type study: the paper's Fig 4 workflow as a reusable program.
// Generates (or ingests) telemetry, slices by action type, and reports how
// latency sensitivity differs between interactive actions (SelectMail),
// search, and fire-and-forget actions (ComposeSend).
//
// Usage:
//   action_type_study                # synthetic workload, business users
//   action_type_study consumer       # consumer users instead
//   action_type_study all <log.csv>  # analyze an existing CSV telemetry log
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/slices.h"
#include "report/ascii_chart.h"
#include "report/csvout.h"
#include "report/table.h"
#include "simulate/generator.h"
#include "simulate/presets.h"
#include "telemetry/csv.h"
#include "telemetry/validate.h"

int main(int argc, char** argv) {
  using namespace autosens;

  std::optional<telemetry::UserClass> user_class = telemetry::UserClass::kBusiness;
  if (argc > 1) {
    const std::string arg = argv[1];
    if (arg == "consumer") {
      user_class = telemetry::UserClass::kConsumer;
    } else if (arg == "all") {
      user_class = std::nullopt;
    } else if (arg != "business") {
      std::cerr << "usage: action_type_study [business|consumer|all] [telemetry.csv]\n";
      return 2;
    }
  }

  telemetry::Dataset raw;
  if (argc > 2) {
    std::cout << "reading telemetry from " << argv[2] << "\n";
    auto read = telemetry::read_csv_file(argv[2]);
    for (const auto& error : read.errors) {
      std::cerr << "  line " << error.line << ": " << error.message << "\n";
    }
    raw = std::move(read.dataset);
  } else {
    std::cout << "generating synthetic OWA-like workload...\n";
    raw = simulate::WorkloadGenerator(simulate::paper_config(simulate::Scale::kSmall, 7))
              .generate()
              .dataset;
  }

  const auto validated = telemetry::validate(raw);
  std::cout << validated.report.summary() << "\n\n";

  core::AutoSensOptions options;
  const auto curves = core::preference_by_action(validated.dataset, options, user_class);
  if (curves.empty()) {
    std::cout << "no action slice had enough data to estimate a curve\n";
    return 1;
  }

  report::Table table({"action", "records", "NLP@500ms", "NLP@1000ms", "NLP@1500ms",
                       "verdict"});
  for (const auto& curve : curves) {
    const auto value = [&curve](double latency) {
      return curve.result.covers(latency) ? report::Table::num(curve.result.at(latency))
                                          : std::string("-");
    };
    // Rough qualitative classification of sensitivity from the 1s drop.
    std::string verdict = "-";
    if (curve.result.covers(1000.0)) {
      const double drop = 1.0 - curve.result.at(1000.0);
      verdict = drop > 0.15 ? "highly latency-sensitive"
                            : (drop > 0.05 ? "moderately sensitive" : "insensitive");
    }
    table.add_row({curve.name, std::to_string(curve.records), value(500.0), value(1000.0),
                   value(1500.0), verdict});
  }
  table.print(std::cout);
  std::cout << '\n';

  std::vector<report::Series> chart;
  for (const auto& curve : curves) chart.push_back(report::to_series(curve));
  report::ChartOptions chart_options;
  chart_options.title = "normalized latency preference by action type";
  chart_options.x_label = "latency (ms)";
  chart_options.y_label = "preference";
  render_chart(std::cout, chart, chart_options);
  return 0;
}
