// Incident post-mortem study: a service had outage episodes during the
// measurement window — can we still trust the latency-sensitivity estimate,
// and what did the incidents cost in user activity?
//
// Demonstrates: failure injection in the simulator, the screening test,
// robustness of the preference estimate, and bootstrap confidence intervals.
#include <cmath>
#include <iostream>

#include "core/confidence.h"
#include "core/pipeline.h"
#include "core/sensitivity.h"
#include "report/table.h"
#include "simulate/generator.h"
#include "simulate/presets.h"
#include "telemetry/clock.h"
#include "telemetry/filter.h"
#include "telemetry/validate.h"

int main() {
  using namespace autosens;
  constexpr std::int64_t kDay = telemetry::kMillisPerDay;
  constexpr std::int64_t kHour = telemetry::kMillisPerHour;

  // A two-week trace with two severe business-hour incidents (~2.7x latency).
  auto config = simulate::paper_config(simulate::Scale::kSmall, 47);
  config.latency.incidents = {
      {.begin_ms = 3 * kDay + 9 * kHour, .end_ms = 3 * kDay + 15 * kHour, .log_shift = 1.0},
      {.begin_ms = 10 * kDay + 13 * kHour, .end_ms = 10 * kDay + 17 * kHour,
       .log_shift = 1.0}};

  std::cout << "simulating a 14-day trace with 2 injected incidents...\n";
  simulate::WorkloadGenerator generator(config);
  auto generated = generator.generate();
  const auto validated = telemetry::validate(generated.dataset);
  const auto slice = validated.dataset.filtered(
      telemetry::by_action(telemetry::ActionType::kSelectMail));
  std::cout << "SelectMail slice: " << slice.size() << " records\n\n";

  // 1. What did each incident cost? Compare in-incident action rate to the
  //    same hours on other days.
  report::Table cost({"incident", "actions during", "typical for those hours", "activity lost"});
  for (std::size_t i = 0; i < config.latency.incidents.size(); ++i) {
    const auto& incident = config.latency.incidents[i];
    std::size_t during = 0;
    std::size_t typical_total = 0;
    std::size_t typical_days = 0;
    const int from_hour = telemetry::hour_of_day(incident.begin_ms);
    const int hours = static_cast<int>((incident.end_ms - incident.begin_ms) / kHour);
    const std::int64_t incident_day = telemetry::day_index(incident.begin_ms);
    for (const std::int64_t time_ms : slice.times()) {
      const int hour = telemetry::hour_of_day(time_ms);
      if (hour < from_hour || hour >= from_hour + hours) continue;
      if (telemetry::day_index(time_ms) == incident_day) {
        ++during;
      } else if (telemetry::day_of_week(time_ms) ==
                 telemetry::day_of_week(incident.begin_ms)) {
        ++typical_total;
        // count this day once per record; day count tracked separately
      }
    }
    // Same weekday occurs twice in 14 days → one comparable day.
    typical_days = 1;
    const double typical = static_cast<double>(typical_total) /
                           static_cast<double>(typical_days);
    // Built by append (not operator+) to dodge a GCC 12 -Wrestrict false
    // positive at -O3 that breaks Release -Werror builds.
    std::string label("#");
    label += std::to_string(i + 1);
    label += " (day ";
    label += std::to_string(incident_day);
    label += ", ";
    label += std::to_string(hours);
    label += "h)";
    cost.add_row({std::move(label),
                  std::to_string(during), report::Table::num(typical, 0),
                  report::Table::num(100.0 * (1.0 - static_cast<double>(during) /
                                                        std::max(typical, 1.0)),
                                     0) +
                      "%"});
  }
  cost.print(std::cout);
  std::cout << '\n';

  // 2. Is the sensitivity estimate still trustworthy? Screen + estimate with
  //    confidence intervals.
  core::AutoSensOptions options;
  const auto screening = core::screen(slice, options);
  std::cout << "screening: TV distance " << report::Table::num(screening.total_variation, 3)
            << ", mean shift " << report::Table::num(screening.mean_shift_ms, 1)
            << " ms -> " << (screening.worth_analyzing ? "analyze" : "skip") << "\n\n";

  stats::Random random(7);
  const auto result = core::analyze_with_confidence(slice, options,
                                                    {500.0, 1000.0, 1500.0},
                                                    {.replicates = 30}, random);
  report::Table curve({"latency (ms)", "NLP", "90% CI"});
  for (std::size_t p = 0; p < result.probe_latency_ms.size(); ++p) {
    if (!result.point.covers(result.probe_latency_ms[p])) continue;
    std::string interval("[");
    interval += report::Table::num(result.intervals[p].lo);
    interval += ", ";
    interval += report::Table::num(result.intervals[p].hi);
    interval += "]";
    curve.add_row({report::Table::num(result.probe_latency_ms[p], 0),
                   report::Table::num(result.point.at(result.probe_latency_ms[p])),
                   std::move(interval)});
  }
  curve.print(std::cout);

  const auto summary = core::summarize(result.point);
  std::cout << "\nverdict: SelectMail is " << core::to_string(summary.classification)
            << " (drop at 1 s: " << report::Table::num(summary.drop_at_1000ms) << ")\n";
  std::cout << "(incidents contribute genuine high-latency evidence; the preference\n"
               " estimate remains stable because AutoSens compares distributions, not\n"
               " absolute volumes)\n";
  return 0;
}
