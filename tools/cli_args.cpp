#include "tools/cli_args.h"

#include <charconv>
#include <stdexcept>

namespace autosens::cli {

Args::Args(int argc, const char* const* argv, int begin,
           const std::set<std::string>& boolean_flags) {
  for (int i = begin; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0 || arg.size() <= 2) {
      throw std::invalid_argument("expected --flag, got: " + arg);
    }
    const std::string name = arg.substr(2);
    if (boolean_flags.contains(name)) {
      flags_.insert(name);
      continue;
    }
    if (i + 1 >= argc) {
      throw std::invalid_argument("flag --" + name + " needs a value");
    }
    values_[name] = argv[++i];
  }
}

bool Args::has(const std::string& name) const {
  return flags_.contains(name) || values_.contains(name);
}

std::optional<std::string> Args::get(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Args::get_or(const std::string& name, const std::string& fallback) const {
  return get(name).value_or(fallback);
}

std::string Args::require(const std::string& name) const {
  const auto value = get(name);
  if (!value) throw std::invalid_argument("missing required flag --" + name);
  return *value;
}

std::int64_t Args::get_int(const std::string& name, std::int64_t fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  std::int64_t out = 0;
  const auto result = std::from_chars(value->data(), value->data() + value->size(), out);
  if (result.ec != std::errc{} || result.ptr != value->data() + value->size()) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got: " + *value);
  }
  return out;
}

double Args::get_double(const std::string& name, double fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  double out = 0.0;
  const auto result = std::from_chars(value->data(), value->data() + value->size(), out);
  if (result.ec != std::errc{} || result.ptr != value->data() + value->size()) {
    throw std::invalid_argument("flag --" + name + " expects a number, got: " + *value);
  }
  return out;
}

void Args::allow_only(const std::set<std::string>& allowed) const {
  for (const auto& flag : flags_) {
    if (!allowed.contains(flag)) throw std::invalid_argument("unknown flag --" + flag);
  }
  for (const auto& [name, value] : values_) {
    if (!allowed.contains(name)) throw std::invalid_argument("unknown flag --" + name);
  }
}

}  // namespace autosens::cli
