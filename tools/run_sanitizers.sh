#!/usr/bin/env bash
# Build and run the concurrency-sensitive test suites under sanitizers, in
# two dedicated build trees:
#   <repo>/build-asan — AUTOSENS_SANITIZE=address + AUTOSENS_UBSAN=ON
#   <repo>/build-tsan — AUTOSENS_SANITIZE=thread
#
# Each tree runs the net, parallel, obs, simd, and store ctest labels (the
# fault-injection matrix, the wire fuzz corpus, the emitter/collector
# pipeline, the parallel execution layer, the metrics registry, the
# introspection HTTP server scraped live under a concurrent analyze, the
# wire trace propagation suite, the runtime-dispatched SIMD kernels with
# their scalar-vs-vector golden suite, and the out-of-core columnar store
# whose mmap/varint decode paths are exactly where ASan/UBSan earn their
# keep) —
# the code where memory-safety and data-race bugs would actually live. Pass
# --soak to also run the slow-labelled soak tests (ctest -C soak -L slow) in
# each tree.
#
# Only the test targets for those labels are built, not the whole tree, so a
# sanitizer pass stays affordable on a small machine.
#
# Usage: tools/run_sanitizers.sh [--soak] [--asan-dir DIR] [--tsan-dir DIR]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
asan_dir="${repo_root}/build-asan"
tsan_dir="${repo_root}/build-tsan"
soak=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --soak) soak=1; shift ;;
    --asan-dir) asan_dir="$2"; shift 2 ;;
    --tsan-dir) tsan_dir="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

# The test executables behind the net/parallel/obs/simd/store ctest labels.
targets=(wire_test net_pipeline_test fault_test wire_fuzz_test
         net_fault_matrix_test net_trace_test spsc_test net_shard_test
         net_udp_test parallel_test
         parallel_determinism_test obs_metrics_test obs_trace_test
         obs_log_test obs_server_test simd_kernels_test simd_dispatch_test
         store_test store_prune_test store_soak_test)

jobs="$(nproc 2>/dev/null || echo 2)"

run_tree() {
  local dir="$1"; shift
  local label="$1"; shift
  echo "=== [$label] configure: $dir ==="
  cmake -B "$dir" -S "$repo_root" "$@" > /dev/null
  echo "=== [$label] build: ${targets[*]} ==="
  cmake --build "$dir" -j "$jobs" --target "${targets[@]}"
  echo "=== [$label] ctest -L 'net|parallel|obs|simd|store' ==="
  ctest --test-dir "$dir" -L 'net|parallel|obs|simd|store' -LE slow --output-on-failure -j "$jobs"
  if [[ "$soak" -eq 1 ]]; then
    echo "=== [$label] soak: ctest -C soak -L slow ==="
    ctest --test-dir "$dir" -C soak -L slow --output-on-failure
  fi
}

run_tree "$asan_dir" "ASan+UBSan" \
  -DAUTOSENS_SANITIZE=address -DAUTOSENS_UBSAN=ON
run_tree "$tsan_dir" "TSan" \
  -DAUTOSENS_SANITIZE=thread

echo "sanitizer suites passed: ASan+UBSan ($asan_dir), TSan ($tsan_dir)"
