#!/usr/bin/env python3
"""Verify that Chrome trace files from cooperating processes form ONE tree.

Usage: check_trace_tree.py replay_trace.json collect_trace.json [more.json...]

The wire v2 trace extension promises that a `replay | collect` pair exports
spans that stitch into a single connected trace: the emitter stamps its
send/connect span ids into the frames and the hello, and the collector links
its decode/hello/dedup spans onto those remote ids. This checker merges the
per-process trace_event files and enforces exactly that contract:

  * every file contributes at least one complete ("ph": "X") span event;
  * the files carry distinct pids (the per-process tracer tags);
  * span ids are globally unique across the files (the pid salt in the top
    byte is what makes this possible);
  * exactly one span has no parent (the replay-side root), and every other
    span's parent id resolves to a recorded span — i.e. the merged graph is
    one connected tree, not a forest;
  * at least one edge crosses processes (a child whose parent lives under a
    different pid), which is the stitch itself.

Exits 0 quietly-ish on success, 1 with a diagnostic on any violation.
"""

import json
import sys


def load_spans(path):
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    events = document.get("traceEvents", [])
    spans = []
    for event in events:
        if event.get("ph") != "X":
            continue
        args = event.get("args", {})
        if "id" not in args:
            continue
        spans.append(
            {
                "name": event.get("name", "?"),
                "pid": event.get("pid"),
                "id": int(args["id"]),
                "parent": int(args.get("parent", 0)),
                "file": path,
            }
        )
    return spans


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2

    per_file = {path: load_spans(path) for path in argv[1:]}
    for path, spans in per_file.items():
        if not spans:
            print(f"FAIL: {path} contains no complete spans", file=sys.stderr)
            return 1

    merged = [span for spans in per_file.values() for span in spans]
    pids = {span["pid"] for span in merged}
    if len(pids) < len(per_file):
        print(f"FAIL: expected a distinct pid per process, got {sorted(pids)}",
              file=sys.stderr)
        return 1

    by_id = {}
    for span in merged:
        if span["id"] in by_id:
            other = by_id[span["id"]]
            print(f"FAIL: span id {span['id']} duplicated between "
                  f"{other['file']} and {span['file']}", file=sys.stderr)
            return 1
        by_id[span["id"]] = span

    roots = [span for span in merged if span["parent"] == 0]
    if len(roots) != 1:
        names = [(span["name"], span["file"]) for span in roots]
        print(f"FAIL: expected exactly one root span, got {len(roots)}: {names}",
              file=sys.stderr)
        return 1

    cross_edges = 0
    for span in merged:
        if span["parent"] == 0:
            continue
        parent = by_id.get(span["parent"])
        if parent is None:
            print(f"FAIL: {span['name']} (id {span['id']}, {span['file']}) has "
                  f"unresolved parent {span['parent']}", file=sys.stderr)
            return 1
        if parent["pid"] != span["pid"]:
            cross_edges += 1
    if cross_edges == 0:
        print("FAIL: no cross-process edges — the traces are two local trees, "
              "not one stitched one", file=sys.stderr)
        return 1

    print(f"OK: {len(merged)} spans across {len(per_file)} processes form one "
          f"tree rooted at '{roots[0]['name']}' with {cross_edges} "
          f"cross-process edges")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
