// Minimal command-line flag parser for the autosens CLI: `--name value`
// and `--flag` style options after a positional subcommand. No dependency,
// strict by default (unknown flags are errors).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace autosens::cli {

class Args {
 public:
  /// Parse argv after the subcommand. `boolean_flags` names flags that take
  /// no value. Throws std::invalid_argument on malformed input.
  Args(int argc, const char* const* argv, int begin,
       const std::set<std::string>& boolean_flags);

  bool has(const std::string& name) const;
  std::optional<std::string> get(const std::string& name) const;
  std::string get_or(const std::string& name, const std::string& fallback) const;
  /// Throws std::invalid_argument when missing.
  std::string require(const std::string& name) const;

  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;

  /// Verify every provided flag is in `allowed`; throws otherwise (lists
  /// the offending flag).
  void allow_only(const std::set<std::string>& allowed) const;

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> flags_;
};

}  // namespace autosens::cli
