// autosens_cli — command-line frontend to the AutoSens library.
//
//   autosens_cli generate  --out telemetry.csv [--scale small] [--seed 42]
//                          [--days N] [--users N] [--format csv|bin]
//   autosens_cli analyze   --in telemetry.csv [--action SelectMail]
//                          [--class Business|Consumer] [--ref 300]
//                          [--no-normalize] [--mc] [--confidence]
//                          [--threads N] [--out curve.csv]
//
// --threads N runs the analysis — and the parallel file ingest — on N worker
// threads (0 = all hardware threads, 1 = serial); results are byte-identical
// for every value. Also accepted by slices, summary, screen, locality,
// alpha, and replay.
//   autosens_cli slices    --in telemetry.csv --by action|class|quartile|
//                          period|month|dayclass [--action A] [--class C]
//   autosens_cli summary   --in telemetry.csv [--action A] [--class C]
//   autosens_cli screen    --in telemetry.csv [--action A]
//   autosens_cli locality  --in telemetry.csv [--action A]
//   autosens_cli alpha     --in telemetry.csv [--action A] [--class C]
//   autosens_cli collect   --out log.bin [--port 0] [--expect 1]
//                          [--timeout-ms 30000] [--read-deadline-ms -1]
//                          [--max-resync-bytes 1048576] [--checkpoint FILE]
//                          [--shards 1] [--transport tcp|udp] [--rcvbuf BYTES]
//   autosens_cli replay    --in log.bin --port PORT [--batch 1024]
//                          [--retries 5] [--backoff-ms 1] [--backoff-max-ms 1000]
//                          [--drop-on-exhausted] [--transport tcp|udp]
//   autosens_cli loadgen   --port PORT [--sessions 64] [--records 1024]
//                          [--concurrency 16] [--batch 256] [--transport tcp|udp]
//                          [--seed 42]
//   autosens_cli metrics   --in metrics.txt [--filter substr]
//   autosens_cli watch     URL [--interval-ms 1000] [--count 0] [--filter s]
//                          [--all]
//   autosens_cli store build   --in log.{csv,jsonl,bin} --out STORE_DIR
//                              [--partition-rows N] [--block-rows N]
//                              [--no-compress] [--threads N]
//   autosens_cli store info    --in STORE_DIR
//   autosens_cli store export  --in STORE_DIR --out log.bin [--batch 4096]
//   autosens_cli store analyze --in STORE_DIR [--window-days 7] [--action A]
//                              [--class C] [--ref 300] [--no-normalize] [--mc]
//                              [--confidence] [--replicates N] [--threads N]
//
// `store` converts telemetry into an ASL3 partitioned columnar directory and
// analyzes it window-by-window with O(window) memory — the out-of-core path
// for datasets larger than RAM (DESIGN.md §6e).
//
// Every command additionally accepts the observability flags (all off by
// default):
//   --metrics-out FILE   write a Prometheus text metrics snapshot on exit
//   --trace-out FILE     write a Chrome trace_event JSON file on exit
//   --stats              print a per-stage flame summary + metrics to stderr
//   --log-level LEVEL    quiet | info (default) | debug
//   --obs-listen SPEC    serve the live introspection plane (/metrics,
//                        /metrics.json, /healthz, /statusz, /tracez) on
//                        loopback while the command runs; SPEC is
//                        [127.0.0.1:]PORT (0 = ephemeral, port printed to
//                        stderr). Also starts the /proc runtime sampler.
//
// `watch` polls a live /metrics endpoint (typically another autosens process
// started with --obs-listen) and renders a top-style table of levels and
// per-second counter rates.
//
// Input files ending in .bin are read as AutoSens binary logs, anything else
// as CSV. Every analysis subcommand scrubs the input (successful actions,
// sane latencies) before running.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/confidence.h"
#include "core/confounder_dow.h"
#include "core/confounder_time.h"
#include "core/locality.h"
#include "core/pipeline.h"
#include "core/sensitivity.h"
#include "core/slices.h"
#include "core/store_analyze.h"
#include "net/collector.h"
#include "net/emitter.h"
#include "net/udp.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/server.h"
#include "obs/trace.h"
#include "report/ascii_chart.h"
#include "report/csvout.h"
#include "report/table.h"
#include "report/watch.h"
#include "simulate/generator.h"
#include "simulate/presets.h"
#include "telemetry/binlog.h"
#include "telemetry/csv.h"
#include "telemetry/store/store.h"
#include "telemetry/store/writer.h"
#include "telemetry/jsonl.h"
#include "telemetry/filter.h"
#include "telemetry/validate.h"
#include "tools/cli_args.h"

namespace {

using namespace autosens;

int usage() {
  std::cerr <<
      R"(usage: autosens_cli <command> [flags]

commands:
  generate   synthesize an OWA-like telemetry log with planted ground truth
  analyze    estimate the normalized latency preference of one slice
  slices     estimate curves for a family of slices (paper Figs 4-9)
  summary    one-number sensitivity summary of a slice
  screen     quick B-vs-U divergence check (is analysis worthwhile?)
  locality   MSD/MAD + density/latency locality report (paper Figs 1-2)
  alpha      time-of-day and weekday/weekend activity factors (paper Fig 8)
  collect    run a telemetry collector server, write a binary log
  replay     stream an existing log to a collector
  loadgen    drive synthetic emitter sessions at a collector (tcp or udp)
  metrics    pretty-print a Prometheus metrics snapshot written by --metrics-out
  watch      poll a live /metrics URL, render a top-style level + rate table
  store      out-of-core partitioned columnar store (build|info|export|analyze)

every command also accepts --metrics-out FILE, --trace-out FILE, --stats,
--log-level {quiet,info,debug}, and --obs-listen [127.0.0.1:]PORT, which
serves /metrics, /metrics.json, /healthz, /statusz, and /tracez on loopback
while the command runs (all observability is off by default).
run a command with wrong flags to see its flag list.
)";
  return 2;
}

/// Adds the observability flags accepted by every subcommand to a command's
/// allow-list.
std::set<std::string> with_obs(std::set<std::string> allowed) {
  allowed.insert({"metrics-out", "trace-out", "stats", "log-level", "obs-listen"});
  return allowed;
}

/// Parses a loopback endpoint spec — [http://][127.0.0.1|localhost:]PORT
/// with an optional path suffix — into the port. The introspection plane
/// binds loopback only, so any other host is rejected up front.
std::uint16_t parse_loopback_port(std::string spec, const std::string& what) {
  const std::string original = spec;
  if (spec.starts_with("http://")) spec = spec.substr(7);
  if (const auto slash = spec.find('/'); slash != std::string::npos) {
    spec = spec.substr(0, slash);
  }
  if (const auto colon = spec.rfind(':'); colon != std::string::npos) {
    const std::string host = spec.substr(0, colon);
    if (!host.empty() && host != "127.0.0.1" && host != "localhost") {
      throw std::invalid_argument(what + ": the introspection plane is loopback-only, got host '" +
                                  host + "'");
    }
    spec = spec.substr(colon + 1);
  }
  if (spec.empty() || spec.size() > 5 ||
      spec.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument(what + ": expected [127.0.0.1:]PORT, got '" + original + "'");
  }
  const long port = std::stol(spec);
  if (port > 65535) {
    throw std::invalid_argument(what + ": port out of range: " + original);
  }
  return static_cast<std::uint16_t>(port);
}

/// The live introspection plane of one CLI run: the /metrics+/statusz HTTP
/// server plus the /proc runtime sampler, both torn down when the command
/// body returns (members stop their threads in reverse order).
struct ObsPlane {
  std::optional<obs::ObsServer> server;
  std::optional<obs::RuntimeSampler> sampler;
};

/// Starts the plane when --obs-listen was given; implies full metrics +
/// trace instrumentation (an exporter over a disabled registry is useless).
void start_obs_plane(const cli::Args& args, ObsPlane& plane) {
  const auto listen = args.get("obs-listen");
  if (!listen) return;
  const auto port = parse_loopback_port(*listen, "--obs-listen");
  obs::set_enabled(true);
  obs::Tracer::global().set_enabled(true);
  plane.server.emplace(obs::ObsServerOptions{.port = port});
  plane.sampler.emplace();
  // Stderr, like the logs: stdout stays machine-readable.
  std::cerr << "obs: serving http://127.0.0.1:" << plane.server->port() << "/statusz\n";
}

/// Turns the instrumentation on before the command runs, driven by flags.
void setup_observability(const cli::Args& args) {
  if (const auto level = args.get("log-level")) {
    const auto parsed = obs::parse_log_level(*level);
    if (!parsed) {
      throw std::invalid_argument("unknown --log-level: " + *level +
                                  " (expected quiet, info, or debug)");
    }
    obs::set_log_level(*parsed);
  }
  if (args.has("metrics-out") || args.has("stats")) obs::set_enabled(true);
  if (args.has("trace-out") || args.has("stats")) obs::Tracer::global().set_enabled(true);
}

/// Counters and histogram counts are integral; print them without decimals.
std::string metric_value(double value) {
  if (std::abs(value) < 1e15 &&
      value == static_cast<double>(static_cast<std::int64_t>(value))) {
    return std::to_string(static_cast<std::int64_t>(value));
  }
  return report::Table::num(value);
}

/// The --stats flame summary: per-stage span rollup (indented by nesting
/// depth) plus every nonzero metric, both on stderr so stdout stays
/// machine-readable.
void print_stats(std::ostream& out) {
  const auto aggregates = obs::Tracer::global().aggregate();
  if (!aggregates.empty()) {
    double root_total_ms = 0.0;
    for (const auto& agg : aggregates) {
      if (agg.depth == 0) root_total_ms += agg.total_ms;
    }
    out << "stage timing:\n";
    report::Table table({"stage", "count", "total (ms)", "mean (ms)", "max (ms)", "% run"});
    for (const auto& agg : aggregates) {
      const double share = root_total_ms > 0.0 ? 100.0 * agg.total_ms / root_total_ms : 0.0;
      table.add_row({std::string(2 * agg.depth, ' ') + agg.name, std::to_string(agg.count),
                     report::Table::num(agg.total_ms, 2),
                     report::Table::num(agg.total_ms / static_cast<double>(agg.count)),
                     report::Table::num(agg.max_ms), report::Table::num(share, 1)});
    }
    table.print(out);
  }

  report::Table metric_table({"metric", "value"});
  std::size_t rows = 0;
  for (const auto& sample : obs::registry().samples()) {
    if (sample.value == 0.0) continue;
    // Bucket series are noise at a glance; _sum/_count still show up.
    if (sample.name.find("_bucket{") != std::string::npos) continue;
    metric_table.add_row({sample.name, metric_value(sample.value)});
    ++rows;
  }
  if (rows > 0) {
    out << "metrics:\n";
    metric_table.print(out);
  }
}

/// Writes the --metrics-out / --trace-out files and prints --stats after the
/// command body finished.
void finish_observability(const cli::Args& args) {
  if (const auto path = args.get("metrics-out")) {
    std::ofstream out(*path);
    if (!out) throw std::runtime_error("cannot write --metrics-out file: " + *path);
    obs::registry().write_prometheus(out);
    obs::log_debug("metrics.written", {{"path", *path}});
  }
  if (const auto path = args.get("trace-out")) {
    std::ofstream out(*path);
    if (!out) throw std::runtime_error("cannot write --trace-out file: " + *path);
    obs::Tracer::global().write_chrome_trace(out);
    obs::log_debug("trace.written",
                   {{"path", *path}, {"spans", obs::Tracer::global().snapshot().size()}});
  }
  if (args.has("stats")) print_stats(std::cerr);
}

/// --threads also drives the parallel ingest engine, so one flag controls
/// both the parse and the analysis thread counts.
telemetry::IngestOptions ingest_options_from_flags(const cli::Args& args) {
  telemetry::IngestOptions options;
  options.threads = static_cast<std::size_t>(args.get_int("threads", 0));
  return options;
}

telemetry::Dataset load(const std::string& path, const telemetry::IngestOptions& ingest = {}) {
  obs::Span span("load");
  span.attr("path", path);
  telemetry::Dataset dataset;
  if (path.ends_with(".bin")) {
    dataset = telemetry::read_binlog_file(path, ingest);
  } else if (path.ends_with(".jsonl")) {
    auto read = telemetry::read_jsonl_file(path, ingest);
    for (const auto& error : read.errors) {
      obs::log_info("load.parse_error", {{"line", error.line}, {"message", error.message}});
    }
    dataset = std::move(read.dataset);
  } else {
    auto read = telemetry::read_csv_file(path, ingest);
    for (const auto& error : read.errors) {
      obs::log_info("load.parse_error", {{"line", error.line}, {"message", error.message}});
    }
    dataset = std::move(read.dataset);
  }
  span.attr("records", static_cast<std::int64_t>(dataset.size()));
  return dataset;
}

telemetry::ValidatedDataset load_scrubbed(const std::string& path,
                                          const telemetry::IngestOptions& ingest = {}) {
  auto loaded = load(path, ingest);
  obs::Span span("validate");
  auto validated = telemetry::validate(loaded);
  span.attr("kept", static_cast<std::int64_t>(validated.report.kept));
  span.attr("dropped", static_cast<std::int64_t>(validated.report.dropped()));
  obs::log_debug("validate", {{"summary", validated.report.summary()}});
  return validated;
}

telemetry::Dataset apply_slice_flags(const telemetry::Dataset& dataset,
                                     const cli::Args& args) {
  obs::Span span("slice");
  std::vector<telemetry::RecordPredicate> predicates;
  if (const auto action = args.get("action")) {
    const auto type = telemetry::parse_action_type(*action);
    if (!type) throw std::invalid_argument("unknown action type: " + *action);
    predicates.push_back(telemetry::by_action(*type));
  }
  if (const auto user_class = args.get("class")) {
    const auto parsed = telemetry::parse_user_class(*user_class);
    if (!parsed) throw std::invalid_argument("unknown user class: " + *user_class);
    predicates.push_back(telemetry::by_user_class(*parsed));
  }
  if (predicates.empty()) return dataset;
  return dataset.filtered(telemetry::all_of(std::move(predicates)));
}

core::AutoSensOptions options_from_flags(const cli::Args& args) {
  core::AutoSensOptions options;
  options.reference_latency_ms = args.get_double("ref", options.reference_latency_ms);
  options.bin_width_ms = args.get_double("bin", options.bin_width_ms);
  options.max_latency_ms = args.get_double("max-latency", options.max_latency_ms);
  if (args.has("no-normalize")) options.normalize_time_confounder = false;
  if (args.has("mc")) options.unbiased_method = core::UnbiasedMethod::kMonteCarlo;
  const auto threads = args.get_int("threads", 0);
  if (threads < 0) throw std::invalid_argument("--threads must be >= 0");
  options.threads = static_cast<std::size_t>(threads);
  return options;
}

void print_curve(const core::PreferenceResult& result) {
  report::Table table({"latency (ms)", "normalized preference"});
  for (double latency = 100.0; latency <= 2500.0; latency += 100.0) {
    if (!result.covers(latency)) continue;
    table.add_row({report::Table::num(latency, 0), report::Table::num(result.at(latency))});
  }
  table.print(std::cout);
}

int cmd_generate(const cli::Args& args) {
  args.allow_only(with_obs({"out", "scale", "seed", "days", "users", "format"}));
  const std::string out = args.require("out");
  const std::string scale_name = args.get_or("scale", "small");
  simulate::Scale scale = simulate::Scale::kSmall;
  if (scale_name == "tiny") scale = simulate::Scale::kTiny;
  else if (scale_name == "small") scale = simulate::Scale::kSmall;
  else if (scale_name == "medium") scale = simulate::Scale::kMedium;
  else if (scale_name == "full") scale = simulate::Scale::kFull;
  else throw std::invalid_argument("unknown scale: " + scale_name);

  auto config = simulate::paper_config(
      scale, static_cast<std::uint64_t>(args.get_int("seed", 42)));
  if (const auto days = args.get_int("days", 0); days > 0) {
    config.end_ms = config.begin_ms + days * telemetry::kMillisPerDay;
  }
  if (const auto users = args.get_int("users", 0); users > 0) {
    config.population.user_count = static_cast<std::size_t>(users);
  }

  obs::log_info("generate.start",
                {{"users", config.population.user_count},
                 {"days", (config.end_ms - config.begin_ms) / telemetry::kMillisPerDay}});
  simulate::GeneratorResult generated;
  {
    obs::Span span("generate");
    generated = simulate::WorkloadGenerator(config).generate();
    span.attr("actions", static_cast<std::int64_t>(generated.accepted));
  }
  obs::log_info("generate.done", {{"actions", generated.accepted}});

  const std::string format = args.get_or(
      "format",
      out.ends_with(".bin") ? "bin" : (out.ends_with(".jsonl") ? "jsonl" : "csv"));
  if (format == "bin") {
    telemetry::write_binlog_file(out, generated.dataset);
  } else if (format == "csv") {
    telemetry::write_csv_file(out, generated.dataset);
  } else if (format == "jsonl") {
    telemetry::write_jsonl_file(out, generated.dataset);
  } else {
    throw std::invalid_argument("unknown format: " + format);
  }
  std::cout << "wrote " << generated.dataset.size() << " records to " << out << "\n";
  return 0;
}

int cmd_analyze(const cli::Args& args) {
  args.allow_only(with_obs({"in", "action", "class", "ref", "bin", "max-latency",
                            "no-normalize", "mc", "confidence", "replicates", "threads",
                            "out"}));
  const auto validated = load_scrubbed(args.require("in"), ingest_options_from_flags(args));
  const auto& dataset = validated.dataset;
  const auto slice = apply_slice_flags(dataset, args);
  obs::log_debug("analyze.slice", {{"records", slice.size()}});
  const auto options = options_from_flags(args);
  // Satellite: always report what the validation scrub dropped, one line on
  // stderr, however the analysis itself ends.
  struct ValidationSummary {
    const telemetry::ValidationReport& report;
    ~ValidationSummary() { std::cerr << "validation: " << report.one_line() << "\n"; }
  } summary_on_exit{validated.report};

  if (args.has("confidence")) {
    stats::Random random(17);
    core::ConfidenceOptions confidence;
    confidence.replicates =
        static_cast<std::size_t>(args.get_int("replicates", 50));
    const auto result = core::analyze_with_confidence(
        slice, options, {500.0, 750.0, 1000.0, 1500.0, 2000.0}, confidence, random);
    report::Table table({"latency (ms)", "NLP", "90% CI"});
    for (std::size_t p = 0; p < result.probe_latency_ms.size(); ++p) {
      const double latency = result.probe_latency_ms[p];
      if (!result.point.covers(latency)) continue;
      // Built by append (not operator+) to dodge a GCC 12 -Wrestrict false
      // positive at -O3 that breaks Release -Werror builds.
      std::string interval("[");
      interval += report::Table::num(result.intervals[p].lo);
      interval += ", ";
      interval += report::Table::num(result.intervals[p].hi);
      interval += "]";
      table.add_row({report::Table::num(latency, 0),
                     report::Table::num(result.point.at(latency)),
                     std::move(interval)});
    }
    table.print(std::cout);
    std::cout << "(" << result.usable_replicates << " usable bootstrap replicates)\n";
    return 0;
  }

  const auto result = core::analyze(slice, options);
  print_curve(result);
  if (const auto out = args.get("out")) {
    const std::vector<core::NamedPreference> curves = {{"preference", result, slice.size()}};
    report::write_preference_csv_file(*out, curves);
    std::cout << "curve written to " << *out << "\n";
  }
  return 0;
}

int cmd_slices(const cli::Args& args) {
  args.allow_only(with_obs({"in", "by", "action", "class", "ref", "bin", "max-latency",
                            "no-normalize", "mc", "threads", "out"}));
  const auto dataset = load_scrubbed(args.require("in"), ingest_options_from_flags(args)).dataset;
  const std::string by = args.require("by");
  const auto options = options_from_flags(args);

  const auto action_or = [&args](telemetry::ActionType fallback) {
    if (const auto name = args.get("action")) {
      const auto type = telemetry::parse_action_type(*name);
      if (!type) throw std::invalid_argument("unknown action type: " + *name);
      return *type;
    }
    return fallback;
  };
  std::optional<telemetry::UserClass> user_class;
  if (const auto name = args.get("class")) {
    user_class = telemetry::parse_user_class(*name);
    if (!user_class) throw std::invalid_argument("unknown user class: " + *name);
  }

  std::vector<core::NamedPreference> curves;
  if (by == "action") {
    curves = core::preference_by_action(dataset, options, user_class);
  } else if (by == "class") {
    curves = core::preference_by_user_class(dataset, options,
                                            action_or(telemetry::ActionType::kSelectMail));
  } else if (by == "quartile") {
    curves = core::preference_by_quartile(dataset, dataset, options,
                                          action_or(telemetry::ActionType::kSelectMail),
                                          user_class);
  } else if (by == "period") {
    curves = core::preference_by_period(
        dataset, options, action_or(telemetry::ActionType::kSelectMail),
        user_class.value_or(telemetry::UserClass::kBusiness));
  } else if (by == "month") {
    curves = core::preference_by_month(dataset, options,
                                       action_or(telemetry::ActionType::kSelectMail));
  } else if (by == "dayclass") {
    auto slice = dataset;
    if (const auto name = args.get("action")) {
      slice = apply_slice_flags(dataset, args);
    }
    for (auto& entry : core::preference_by_day_class(slice, options)) {
      curves.push_back({std::string(core::to_string(entry.day_class)),
                        std::move(entry.preference), entry.records});
    }
  } else {
    throw std::invalid_argument("unknown --by: " + by);
  }

  report::Table table({"slice", "records", "NLP@500", "NLP@1000", "NLP@1500"});
  for (const auto& curve : curves) {
    const auto value = [&curve](double latency) {
      return curve.result.covers(latency) ? report::Table::num(curve.result.at(latency))
                                          : std::string("-");
    };
    table.add_row({curve.name, std::to_string(curve.records), value(500.0), value(1000.0),
                   value(1500.0)});
  }
  table.print(std::cout);

  std::vector<report::Series> chart;
  for (const auto& curve : curves) chart.push_back(report::to_series(curve));
  report::ChartOptions chart_options;
  chart_options.x_label = "latency (ms)";
  chart_options.y_label = "preference";
  render_chart(std::cout, chart, chart_options);

  if (const auto out = args.get("out")) {
    report::write_preference_csv_file(*out, curves);
    std::cout << "series written to " << *out << "\n";
  }
  return 0;
}

int cmd_summary(const cli::Args& args) {
  args.allow_only(with_obs({"in", "action", "class", "ref", "bin", "max-latency",
                            "no-normalize", "mc", "threads"}));
  const auto dataset = load_scrubbed(args.require("in"), ingest_options_from_flags(args)).dataset;
  const auto slice = apply_slice_flags(dataset, args);
  const auto options = options_from_flags(args);
  const auto result = core::analyze(slice, options);
  const auto summary = core::summarize(result);

  report::Table table({"metric", "value"});
  table.add_row({"records", std::to_string(slice.size())});
  table.add_row({"drop at 500 ms", report::Table::num(summary.drop_at_500ms)});
  table.add_row({"drop at 1000 ms", report::Table::num(summary.drop_at_1000ms)});
  table.add_row({"drop at 2000 ms", report::Table::num(summary.drop_at_2000ms)});
  table.add_row({"slope per 100 ms", report::Table::num(summary.slope_per_100ms, 4)});
  table.add_row({"latency at NLP 0.8",
                 summary.latency_at_nlp_08 > 0.0
                     ? report::Table::num(summary.latency_at_nlp_08, 0) + " ms"
                     : "never (within support)"});
  table.add_row({"classification", std::string(core::to_string(summary.classification))});
  table.print(std::cout);
  return 0;
}

int cmd_screen(const cli::Args& args) {
  args.allow_only(
      with_obs({"in", "action", "class", "ref", "bin", "max-latency", "mc", "threads"}));
  const auto dataset = load_scrubbed(args.require("in"), ingest_options_from_flags(args)).dataset;
  const auto slice = apply_slice_flags(dataset, args);
  const auto report = core::screen(slice, options_from_flags(args));
  report::Table table({"metric", "value"});
  table.add_row({"total variation (B vs U)", report::Table::num(report.total_variation, 4)});
  table.add_row({"KS statistic", report::Table::num(report.kolmogorov_smirnov, 4)});
  table.add_row({"mean shift (ms)", report::Table::num(report.mean_shift_ms, 1)});
  table.add_row({"worth full analysis", report.worth_analyzing ? "yes" : "no"});
  table.print(std::cout);
  return 0;
}

int cmd_locality(const cli::Args& args) {
  args.allow_only(with_obs({"in", "action", "class", "window-min", "threads"}));
  const auto dataset = load_scrubbed(args.require("in"), ingest_options_from_flags(args)).dataset;
  const auto slice = apply_slice_flags(dataset, args);
  stats::Random random(7);
  core::LocalityOptions options;
  options.window_ms = args.get_int("window-min", 1) * telemetry::kMillisPerMinute;
  const auto report = core::analyze_locality(slice, options, random);
  report::Table table({"metric", "value"});
  table.add_row({"samples", std::to_string(report.samples)});
  table.add_row({"MSD/MAD actual", report::Table::num(report.msd_mad_actual)});
  table.add_row({"MSD/MAD shuffled", report::Table::num(report.msd_mad_shuffled)});
  table.add_row({"MSD/MAD sorted", report::Table::num(report.msd_mad_sorted)});
  table.add_row({"density-latency corr (raw)",
                 report::Table::num(report.density_latency_correlation)});
  table.add_row({"density-latency corr (detrended)",
                 report::Table::num(report.detrended_density_latency_correlation)});
  table.print(std::cout);
  return 0;
}

int cmd_alpha(const cli::Args& args) {
  args.allow_only(with_obs({"in", "action", "class", "threads"}));
  const auto dataset = load_scrubbed(args.require("in"), ingest_options_from_flags(args)).dataset;
  const auto slice = apply_slice_flags(dataset, args);
  core::AutoSensOptions options;
  options.threads = static_cast<std::size_t>(args.get_int("threads", 0));

  const auto periods = core::alpha_by_period(slice, options);
  report::Table period_table({"period", "records", "mean alpha"});
  for (const auto& pa : periods) {
    period_table.add_row({std::string(telemetry::to_string(pa.period)),
                          std::to_string(pa.records), report::Table::num(pa.mean_alpha)});
  }
  std::cout << "time-of-day activity factor (ref 8am-2pm):\n";
  period_table.print(std::cout);

  const auto dow = core::day_class_activity(slice, options);
  std::cout << "\nweekday/weekend activity factor (ref weekday):\n";
  report::Table dow_table({"class", "records", "beta"});
  dow_table.add_row({"weekday", std::to_string(dow.weekday_records), "1.000"});
  dow_table.add_row({"weekend", std::to_string(dow.weekend_records),
                     report::Table::num(dow.beta_weekend)});
  dow_table.print(std::cout);
  return 0;
}

/// --transport tcp|udp (shared by collect, replay, loadgen).
net::Transport parse_transport(const cli::Args& args) {
  const std::string transport = args.get_or("transport", "tcp");
  if (transport == "tcp") return net::Transport::kTcp;
  if (transport == "udp") return net::Transport::kUdp;
  throw std::invalid_argument("--transport must be tcp or udp, got: " + transport);
}

int cmd_collect(const cli::Args& args) {
  args.allow_only(with_obs({"out", "port", "expect", "timeout-ms", "read-deadline-ms",
                            "max-resync-bytes", "checkpoint", "shards", "transport",
                            "rcvbuf"}));
  const std::string out = args.require("out");
  net::CollectorOptions options;
  options.port = static_cast<std::uint16_t>(args.get_int("port", 0));
  options.read_deadline_ms = static_cast<int>(args.get_int("read-deadline-ms", -1));
  options.max_resync_bytes =
      static_cast<std::size_t>(args.get_int("max-resync-bytes", 1 << 20));
  options.shards = static_cast<std::size_t>(args.get_int("shards", 1));
  options.transport = parse_transport(args);
  // UDP defaults to a large receive buffer (capped by net.core.rmem_max):
  // emitters send unpaced bursts, and the system default (~200 KB) drops
  // most of a burst before the collector ever sees it.
  options.rcvbuf_bytes = static_cast<std::size_t>(args.get_int(
      "rcvbuf", options.transport == net::Transport::kUdp ? (1 << 22) : 0));
  net::Collector collector(options);
  std::cout << "listening on 127.0.0.1:" << collector.port() << "\n" << std::flush;
  const bool complete = collector.serve_until_goodbye(
      static_cast<std::size_t>(args.get_int("expect", 1)),
      static_cast<int>(args.get_int("timeout-ms", 30'000)));
  // Graceful degradation: on timeout, optionally checkpoint whatever arrived
  // to a separate path before (also) writing the main log, so a partial
  // collection is preserved and labelled as such.
  if (!complete && args.has("checkpoint")) {
    const std::string checkpoint = args.require("checkpoint");
    const auto written = collector.checkpoint(checkpoint);
    std::cout << "checkpointed " << written << " records to " << checkpoint << "\n";
  }
  const auto dataset = collector.take_dataset();
  const auto& stats = collector.stats();
  std::cout << "collected " << dataset.size() << " records over " << stats.connections
            << " connections (" << (complete ? "all goodbyes received" : "timed out")
            << ")\n";
  if (stats.resyncs > 0 || stats.duplicate_frames > 0 || stats.deadline_drops > 0) {
    std::cout << "recovery: " << stats.resyncs << " resyncs (" << stats.resync_bytes
              << " bytes skipped), " << stats.duplicate_frames << " duplicates dropped, "
              << stats.session_reconnects << " reconnects, " << stats.deadline_drops
              << " deadline drops\n";
  }
  if (options.transport == net::Transport::kUdp) {
    std::cout << "udp: " << stats.udp_datagrams << " datagrams, " << stats.udp_lost
              << " lost, " << stats.udp_duplicate_datagrams << " duplicates, "
              << stats.udp_rejected << " rejected\n";
  }
  telemetry::write_binlog_file(out, dataset);
  std::cout << "wrote " << out << "\n";
  return complete ? 0 : 1;
}

int cmd_replay(const cli::Args& args) {
  args.allow_only(with_obs({"in", "port", "batch", "threads", "retries", "backoff-ms",
                            "backoff-max-ms", "drop-on-exhausted", "transport"}));
  // One root span over the whole command — load, connect, emit loop — so
  // every local span and, via the wire trace context, the collector's spans
  // in the peer process hang off a single trace tree.
  obs::Span replay_span("replay");
  const auto dataset = load(args.require("in"), ingest_options_from_flags(args));
  replay_span.attr("records", static_cast<std::int64_t>(dataset.size()));
  if (parse_transport(args) == net::Transport::kUdp) {
    net::UdpEmitterOptions options;
    options.batch_size = static_cast<std::size_t>(args.get_int("batch", 1024));
    net::UdpEmitter emitter(static_cast<std::uint16_t>(args.get_int("port", 0)), options);
    for (std::size_t i = 0; i < dataset.size(); ++i) emitter.record(dataset[i]);
    emitter.close();
    std::cout << "replayed " << emitter.sent_records() << " records in "
              << emitter.sent_frames() << " frames\n";
    std::cout << "udp: " << emitter.sent_datagrams() << " datagrams sent\n";
    return 0;
  }
  net::EmitterOptions options;
  options.batch_size = static_cast<std::size_t>(args.get_int("batch", 1024));
  options.retry.max_attempts = static_cast<std::size_t>(args.get_int("retries", 5));
  options.retry.backoff_initial_ms =
      static_cast<std::uint32_t>(args.get_int("backoff-ms", 1));
  options.retry.backoff_max_ms =
      static_cast<std::uint32_t>(args.get_int("backoff-max-ms", 1000));
  options.on_give_up = args.has("drop-on-exhausted")
                           ? net::EmitterOptions::GiveUp::kDropFrame
                           : net::EmitterOptions::GiveUp::kThrow;
  net::Emitter emitter(static_cast<std::uint16_t>(args.get_int("port", 0)), options);
  for (std::size_t i = 0; i < dataset.size(); ++i) emitter.record(dataset[i]);
  emitter.close();
  std::cout << "replayed " << emitter.sent_records() << " records in "
            << emitter.sent_frames() << " frames\n";
  const auto& stats = emitter.stats();
  if (stats.retries > 0 || stats.dropped_records > 0) {
    std::cout << "resilience: " << stats.retries << " retries, " << stats.reconnects
              << " reconnects, " << stats.backoff_ms << " ms backoff, "
              << stats.dropped_records << " records dropped after exhaustion\n";
  }
  return stats.dropped_records == 0 ? 0 : 1;
}

int cmd_loadgen(const cli::Args& args) {
  // Synthetic fan-in driver for the sharded collector: --sessions emitter
  // sessions, each shipping --records synthetic records, at most
  // --concurrency in flight at once (a bounded client pool working through a
  // larger session population, like the saturation bench). Pairs with
  // `collect --expect SESSIONS [--shards N] [--transport udp]`.
  args.allow_only(with_obs(
      {"port", "sessions", "records", "concurrency", "batch", "transport", "seed"}));
  const auto port = static_cast<std::uint16_t>(args.get_int("port", 0));
  const auto sessions = static_cast<std::size_t>(args.get_int("sessions", 64));
  const auto per_session = static_cast<std::size_t>(args.get_int("records", 1024));
  const auto concurrency =
      std::min(sessions, static_cast<std::size_t>(args.get_int("concurrency", 16)));
  const auto batch = static_cast<std::size_t>(args.get_int("batch", 256));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const bool udp = parse_transport(args) == net::Transport::kUdp;
  if (port == 0) throw std::invalid_argument("loadgen requires --port");

  // One shared record batch: loadgen measures the collector's fan-in, not
  // record variety; time_ms stays unique so the merged dataset sorts stably.
  std::vector<telemetry::ActionRecord> records;
  records.reserve(per_session);
  for (std::size_t i = 0; i < per_session; ++i) {
    records.push_back({.time_ms = static_cast<std::int64_t>(i + 1),
                       .user_id = 1 + (seed + i) % 997,
                       .latency_ms = 1.0 + 0.01 * static_cast<double>((seed + i) % 1000),
                       .action = telemetry::ActionType::kSearch,
                       .user_class = telemetry::UserClass::kConsumer,
                       .status = telemetry::ActionStatus::kSuccess});
  }

  const auto start = std::chrono::steady_clock::now();
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> sent{0};
  std::vector<std::thread> pool;
  pool.reserve(concurrency);
  for (std::size_t t = 0; t < concurrency; ++t) {
    pool.emplace_back([&] {
      for (std::size_t s = next.fetch_add(1); s < sessions; s = next.fetch_add(1)) {
        if (udp) {
          net::UdpEmitterOptions options;
          options.batch_size = batch;
          options.session_id = seed * 1'000'003 + s + 1;
          net::UdpEmitter emitter(port, options);
          for (const auto& r : records) emitter.record(r);
          emitter.close();
          sent.fetch_add(emitter.sent_records());
        } else {
          net::EmitterOptions options;
          options.batch_size = batch;
          options.session_id = seed * 1'000'003 + s + 1;
          net::Emitter emitter(port, options);
          for (const auto& r : records) emitter.record(r);
          emitter.close();
          sent.fetch_add(emitter.sent_records());
        }
      }
    });
  }
  for (auto& thread : pool) thread.join();
  const auto elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start);
  const double rate = elapsed.count() > 0.0
                          ? static_cast<double>(sent.load()) / elapsed.count()
                          : 0.0;
  std::cout << "loadgen: " << sent.load() << " records over " << sessions << " "
            << (udp ? "udp" : "tcp") << " sessions in "
            << static_cast<std::int64_t>(elapsed.count() * 1000.0) << " ms ("
            << static_cast<std::int64_t>(rate) << " records/s)\n";
  return 0;
}

int cmd_metrics(const cli::Args& args) {
  args.allow_only(with_obs({"in", "filter"}));
  const std::string path = args.require("in");
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open metrics file: " + path);
  const auto samples = obs::parse_prometheus(in);
  const std::string filter = args.get_or("filter", "");

  report::Table table({"metric", "value"});
  std::size_t shown = 0;
  for (const auto& sample : samples) {
    if (!filter.empty() && sample.name.find(filter) == std::string::npos) continue;
    table.add_row({sample.name, metric_value(sample.value)});
    ++shown;
  }
  table.print(std::cout);
  std::cout << shown << "/" << samples.size() << " samples\n";
  return 0;
}

int cmd_watch(const std::string& url, const cli::Args& args) {
  args.allow_only(with_obs({"interval-ms", "count", "filter", "all"}));
  const std::uint16_t port = parse_loopback_port(url, "watch URL");
  const auto interval_ms = args.get_int("interval-ms", 1000);
  if (interval_ms <= 0) throw std::invalid_argument("--interval-ms must be > 0");
  const auto count = args.get_int("count", 0);  // 0 = until interrupted
  const std::string filter = args.get_or("filter", "");
  // Only a real terminal gets the clear-screen top-style refresh; piped
  // output gets one table per scrape.
  const bool tty = ::isatty(STDOUT_FILENO) != 0;

  std::vector<obs::Sample> previous;
  auto last_scrape = std::chrono::steady_clock::now();
  for (std::int64_t scrape = 0; count == 0 || scrape < count; ++scrape) {
    if (scrape > 0) std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    const auto response = obs::http_get(port, "/metrics");
    if (response.status != 200) {
      throw std::runtime_error("scrape failed: HTTP " + std::to_string(response.status));
    }
    std::istringstream body(response.body);
    auto samples = obs::parse_prometheus(body);
    const auto now = std::chrono::steady_clock::now();
    const double dt = std::chrono::duration<double>(now - last_scrape).count();
    last_scrape = now;

    auto rows = report::watch_rows(previous, samples, scrape == 0 ? 0.0 : dt);
    if (!filter.empty()) {
      std::erase_if(rows, [&filter](const report::WatchRow& row) {
        return row.name.find(filter) == std::string::npos;
      });
    }
    if (tty && count != 1) std::cout << "\x1b[2J\x1b[H";
    std::cout << "autosens watch 127.0.0.1:" << port << "  scrape " << (scrape + 1) << "  ("
              << samples.size() << " samples, " << rows.size() << " matched)\n";
    report::watch_table(rows, !args.has("all")).print(std::cout);
    std::cout << std::flush;
    previous = std::move(samples);
  }
  return 0;
}

int store_usage() {
  std::cerr << "usage: autosens_cli store <build|info|export|analyze> [flags]\n"
               "  build   --in log.{csv,jsonl,bin} --out STORE_DIR [--partition-rows N]\n"
               "          [--block-rows N] [--no-compress] [--threads N]\n"
               "  info    --in STORE_DIR\n"
               "  export  --in STORE_DIR --out log.bin [--batch 4096]\n"
               "  analyze --in STORE_DIR [--window-days 7] [--action A] [--class C]\n"
               "          [--ref 300] [--no-normalize] [--mc] [--confidence]\n"
               "          [--replicates N] [--threads N]\n";
  return 2;
}

std::string mib(std::uint64_t bytes) {
  return report::Table::num(static_cast<double>(bytes) / (1024.0 * 1024.0), 2);
}

int cmd_store_build(const cli::Args& args) {
  args.allow_only(with_obs(
      {"in", "out", "partition-rows", "block-rows", "no-compress", "threads"}));
  const std::string in = args.require("in");
  const std::string out = args.require("out");
  telemetry::store::StoreOptions options;
  options.partition_rows = static_cast<std::uint64_t>(
      args.get_int("partition-rows", static_cast<std::int64_t>(options.partition_rows)));
  options.block_rows =
      static_cast<std::uint32_t>(args.get_int("block-rows", options.block_rows));
  options.compress = !args.has("no-compress");

  obs::Span span("store_build");
  span.attr("in", in);
  std::uint64_t rows = 0;
  if (in.ends_with(".bin")) {
    // Sorted binlogs stream through O(partition) memory.
    rows = telemetry::store::build_store_from_binlog(in, out, options,
                                                     ingest_options_from_flags(args));
  } else {
    auto dataset = load(in, ingest_options_from_flags(args));
    dataset.sort_by_time();
    telemetry::store::build_store(dataset, out, options);
    rows = dataset.size();
  }
  span.attr("rows", static_cast<std::int64_t>(rows));
  const auto store = telemetry::store::StoredDataset::open(out);
  std::cout << "wrote " << rows << " rows in " << store.partitions().size()
            << " partitions to " << out << " (" << mib(store.raw_bytes()) << " MiB raw, "
            << mib(store.stored_bytes()) << " MiB stored)\n";
  return 0;
}

int cmd_store_info(const cli::Args& args) {
  args.allow_only(with_obs({"in"}));
  const auto store = telemetry::store::StoredDataset::open(args.require("in"));
  report::Table table(
      {"partition", "day", "rows", "time range (ms)", "raw MiB", "stored MiB", "ratio"});
  for (const auto& p : store.partitions()) {
    const double ratio = p.raw_bytes > 0
                             ? static_cast<double>(p.stored_bytes) /
                                   static_cast<double>(p.raw_bytes)
                             : 0.0;
    std::string range = std::to_string(p.min_time_ms);
    range += "..";
    range += std::to_string(p.max_time_ms);
    table.add_row({p.dir_name, std::to_string(p.day), std::to_string(p.rows),
                   std::move(range), mib(p.raw_bytes), mib(p.stored_bytes),
                   report::Table::num(ratio, 3)});
  }
  table.print(std::cout);
  const double ratio = store.raw_bytes() > 0
                           ? static_cast<double>(store.stored_bytes()) /
                                 static_cast<double>(store.raw_bytes())
                           : 0.0;
  std::cout << store.partitions().size() << " partitions, " << store.rows() << " rows, "
            << mib(store.raw_bytes()) << " MiB raw, " << mib(store.stored_bytes())
            << " MiB stored (ratio " << report::Table::num(ratio, 3) << ")\n";
  return 0;
}

int cmd_store_export(const cli::Args& args) {
  args.allow_only(with_obs({"in", "out", "batch"}));
  const auto store = telemetry::store::StoredDataset::open(args.require("in"));
  const std::string out = args.require("out");
  obs::Span span("store_export");
  telemetry::store::export_binlog(store, out,
                                  static_cast<std::size_t>(args.get_int("batch", 4096)));
  std::cout << "exported " << store.rows() << " rows to " << out << "\n";
  return 0;
}

int cmd_store_analyze(const cli::Args& args) {
  args.allow_only(with_obs({"in", "window-days", "action", "class", "ref", "bin",
                            "max-latency", "no-normalize", "mc", "confidence", "replicates",
                            "threads"}));
  const auto store = telemetry::store::StoredDataset::open(args.require("in"));
  const auto options = options_from_flags(args);

  core::StoreStreamOptions stream;
  const auto window_days = args.get_int("window-days", 7);
  if (window_days <= 0) throw std::invalid_argument("--window-days must be positive");
  stream.window_ms = window_days * telemetry::kMillisPerDay;
  if (const auto action = args.get("action")) {
    stream.action = telemetry::parse_action_type(*action);
    if (!stream.action) throw std::invalid_argument("unknown action type: " + *action);
  }
  if (const auto user_class = args.get("class")) {
    stream.user_class = telemetry::parse_user_class(*user_class);
    if (!stream.user_class) throw std::invalid_argument("unknown user class: " + *user_class);
  }
  stream.with_confidence = args.has("confidence");
  stream.confidence.replicates = static_cast<std::size_t>(args.get_int("replicates", 50));
  stream.probe_latencies = {500.0, 750.0, 1000.0, 1500.0, 2000.0};

  obs::Span span("store_analyze");
  report::Table table({"window (day)", "records", "scanned", "pruned", "NLP@500",
                       "NLP@1000", "NLP@2000"});
  std::size_t windows = 0;
  std::uint64_t bytes_read = 0;
  const auto nlp_at = [](const std::optional<core::PreferenceResult>& preference,
                         double latency) -> std::string {
    if (!preference.has_value() || !preference->covers(latency)) return "-";
    return report::Table::num(preference->at(latency));
  };
  core::analyze_store_windows(store, options, stream, [&](const core::StoreWindowResult& w) {
    ++windows;
    bytes_read += w.bytes_read;
    std::string window = std::to_string(telemetry::day_index(w.begin_ms));
    window += "..";
    window += std::to_string(telemetry::day_index(w.end_ms - 1));
    table.add_row({std::move(window), std::to_string(w.records),
                   std::to_string(w.partitions_scanned), std::to_string(w.partitions_pruned),
                   nlp_at(w.preference, 500.0), nlp_at(w.preference, 1000.0),
                   nlp_at(w.preference, 2000.0)});
  });
  table.print(std::cout);
  std::cout << windows << " windows, " << mib(bytes_read) << " MiB read of "
            << mib(store.stored_bytes()) << " MiB stored\n";
  return 0;
}

int cmd_store(const std::string& verb, const cli::Args& args) {
  if (verb == "build") return cmd_store_build(args);
  if (verb == "info") return cmd_store_info(args);
  if (verb == "export") return cmd_store_export(args);
  if (verb == "analyze") return cmd_store_analyze(args);
  std::cerr << "unknown store verb: " << verb << "\n";
  return store_usage();
}

int dispatch(const std::string& command, const cli::Args& args) {
  if (command == "generate") return cmd_generate(args);
  if (command == "analyze") return cmd_analyze(args);
  if (command == "slices") return cmd_slices(args);
  if (command == "summary") return cmd_summary(args);
  if (command == "screen") return cmd_screen(args);
  if (command == "locality") return cmd_locality(args);
  if (command == "alpha") return cmd_alpha(args);
  if (command == "collect") return cmd_collect(args);
  if (command == "replay") return cmd_replay(args);
  if (command == "loadgen") return cmd_loadgen(args);
  if (command == "metrics") return cmd_metrics(args);
  std::cerr << "unknown command: " << command << "\n";
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    // `watch <url>` takes a positional URL, unlike every other subcommand.
    if (command == "watch") {
      if (argc < 3 || std::string(argv[2]).starts_with("--")) {
        std::cerr << "usage: autosens_cli watch URL [--interval-ms N] [--count N] "
                     "[--filter substr] [--all]\n";
        return 2;
      }
      const cli::Args args(argc, argv, 3, {"all", "stats"});
      setup_observability(args);
      const int code = cmd_watch(argv[2], args);
      finish_observability(args);
      return code;
    }
    // `store <verb>` takes a positional verb, like watch's URL.
    if (command == "store") {
      if (argc < 3 || std::string(argv[2]).starts_with("--")) return store_usage();
      const cli::Args args(argc, argv, 3,
                           {"no-normalize", "no-compress", "mc", "confidence", "stats"});
      setup_observability(args);
      ObsPlane plane;
      start_obs_plane(args, plane);
      const int code = cmd_store(argv[2], args);
      finish_observability(args);
      return code;
    }
    const cli::Args args(argc, argv, 2,
                         {"no-normalize", "mc", "confidence", "stats", "drop-on-exhausted"});
    setup_observability(args);
    // Cross-process traces: the collector side salts its span ids with a
    // distinct process tag so emitter and collector spans from a replay |
    // collect pair never collide under the shared trace id.
    if (command == "collect") obs::Tracer::global().set_process(2);
    ObsPlane plane;
    start_obs_plane(args, plane);
    const int code = dispatch(command, args);
    finish_observability(args);
    return code;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
