#!/usr/bin/env bash
# Run the --threads scaling benchmarks and the observability-overhead
# benchmark, recording the results as BENCH_parallel.json and BENCH_obs.json
# (google-benchmark JSON format) in the repo root.
#
# BENCH_obs.json compares the fig3-scale analyze pipeline with
# instrumentation disabled (the shipping default: hooks compiled in, gated
# off) against metrics-enabled and metrics+trace-enabled runs, so the
# overhead budget in DESIGN.md "Observability" is checkable from the numbers.
#
# Usage: tools/run_bench.sh [build-dir] [parallel-out] [obs-out]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
OUT="${2:-$ROOT/BENCH_parallel.json}"
OBS_OUT="${3:-$ROOT/BENCH_obs.json}"

if [[ ! -x "$BUILD/bench/micro_kernels" ]]; then
  echo "error: $BUILD/bench/micro_kernels not built" >&2
  echo "build first: cmake -B \"$BUILD\" -S \"$ROOT\" && cmake --build \"$BUILD\" -j" >&2
  exit 1
fi

"$BUILD/bench/micro_kernels" \
  --benchmark_filter='Threads' \
  --benchmark_format=json \
  --benchmark_out_format=json \
  --benchmark_out="$OUT.tmp" >/dev/null

mv "$OUT.tmp" "$OUT"
echo "wrote $OUT"

"$BUILD/bench/micro_kernels" \
  --benchmark_filter='ObsAnalyzeOverhead' \
  --benchmark_format=json \
  --benchmark_out_format=json \
  --benchmark_out="$OBS_OUT.tmp" >/dev/null

mv "$OBS_OUT.tmp" "$OBS_OUT"
echo "wrote $OBS_OUT"
