#!/usr/bin/env bash
# Run the --threads scaling benchmarks and record the results as
# BENCH_parallel.json (google-benchmark JSON format) in the repo root.
#
# Usage: tools/run_bench.sh [build-dir] [out-file]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
OUT="${2:-$ROOT/BENCH_parallel.json}"

if [[ ! -x "$BUILD/bench/micro_kernels" ]]; then
  echo "error: $BUILD/bench/micro_kernels not built" >&2
  echo "build first: cmake -B \"$BUILD\" -S \"$ROOT\" && cmake --build \"$BUILD\" -j" >&2
  exit 1
fi

"$BUILD/bench/micro_kernels" \
  --benchmark_filter='Threads' \
  --benchmark_format=json \
  --benchmark_out_format=json \
  --benchmark_out="$OUT.tmp" >/dev/null

mv "$OUT.tmp" "$OUT"
echo "wrote $OUT"
