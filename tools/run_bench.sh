#!/usr/bin/env bash
# Run the benchmark suite in a dedicated Release build and record the results
# as google-benchmark JSON in the repo root:
#   BENCH_parallel.json — --threads scaling of the parallel execution layer
#   BENCH_obs.json      — observability overhead (disabled / metrics / +trace)
#                         plus the /metrics scrape cost (encode-only and the
#                         full loopback HTTP round trip on a ~1k-series
#                         registry)
#   BENCH_columnar.json — columnar data-plane kernels (column access, the
#                         index-view day-block bootstrap, the confidence
#                         replicate loop)
#   BENCH_ingest.json   — the parallel zero-copy ingest engine (chunked
#                         CSV/JSONL parse and the ASL2 columnar binlog load
#                         vs the seed getline / ASL1-row paths)
#   BENCH_kernels.json  — the SIMD analysis kernels (biased/unbiased histogram
#                         fill, fused classify+fill, Savitzky–Golay FIR),
#                         Arg(0)=scalar vs Arg(1)=dispatch, recorded with
#                         per-repetition samples so the robust regression gate
#                         (tools/check_bench_regression.py) can filter
#                         scheduler spikes instead of gating on a raw mean
#   BENCH_net.json      — the collector fan-in saturation sweep (records/s vs
#                         session count, 1→10k): poll() baseline vs the
#                         sharded epoll collector (1/2/4 shards) vs the
#                         batched UDP transport, with per-repetition samples
#                         on the gated 1k-session rows
#   BENCH_store.json    — the out-of-core ASL3 store: full-store streaming
#                         scan (raw bytes/s through decode + CRC) and the
#                         windowed analyze wall-clock, store-streamed (Arg 1)
#                         vs the in-memory window baseline (Arg 0)
#
# The script configures and builds its own Release tree (default:
# <repo>/build-bench) instead of reusing the dev build — benchmark numbers
# from a Debug/RelWithDebInfo library are not comparable and earlier JSONs
# recorded "library_build_type": "debug" for exactly that reason.
#
# Usage: tools/run_bench.sh [build-dir] [parallel-out] [obs-out] [columnar-out]
#        [ingest-out] [kernels-out] [net-out] [store-out]
#        tools/run_bench.sh net  — rerun only the net sweep into BENCH_net.json
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

only_net=0
if [[ "${1:-}" == "net" ]]; then
  only_net=1
  shift
fi

BUILD="${1:-$ROOT/build-bench}"
OUT="${2:-$ROOT/BENCH_parallel.json}"
OBS_OUT="${3:-$ROOT/BENCH_obs.json}"
COLUMNAR_OUT="${4:-$ROOT/BENCH_columnar.json}"
INGEST_OUT="${5:-$ROOT/BENCH_ingest.json}"
KERNELS_OUT="${6:-$ROOT/BENCH_kernels.json}"
NET_OUT="${7:-$ROOT/BENCH_net.json}"
STORE_OUT="${8:-$ROOT/BENCH_store.json}"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD" --target micro_kernels -j "$(nproc)" >/dev/null

if [[ ! -x "$BUILD/bench/micro_kernels" ]]; then
  echo "error: $BUILD/bench/micro_kernels not built" >&2
  exit 1
fi

# Note: the "library_build_type" field google-benchmark writes describes how
# the *installed benchmark library* was compiled, not this repo —
# autosens_build_type below records the build type that actually matters.
run_filter() {
  local filter="$1" out="$2"
  shift 2
  "$BUILD/bench/micro_kernels" \
    --benchmark_filter="$filter" \
    --benchmark_context=autosens_build_type=Release \
    "$@" \
    --benchmark_format=json \
    --benchmark_out_format=json \
    --benchmark_out="$out.tmp" >/dev/null
  mv "$out.tmp" "$out"
  echo "wrote $out"
}

# The fan-in sweep runs with 5 repetitions throughout: the gate only reads
# the 1k-session rows, but one uniform run keeps the JSON self-consistent
# and gives every row a distribution for the checker's spike filter.
run_net() {
  run_filter 'BM_Net' "$NET_OUT" \
    --benchmark_repetitions=5 \
    --benchmark_report_aggregates_only=false
}

if [[ "$only_net" -eq 1 ]]; then
  run_net
  exit 0
fi

run_filter 'Threads' "$OUT"
# Per-repetition samples (not just aggregates) give the regression checker a
# distribution to run its outlier filter and robust statistic over.
run_filter 'BM_Kernel' "$KERNELS_OUT" \
  --benchmark_repetitions=15 \
  --benchmark_report_aggregates_only=false
run_filter 'ObsAnalyzeOverhead|ObsScrape' "$OBS_OUT"
# The prechange_* context entries freeze the pre-columnar Release baseline
# (AoS dataset, copying resample) measured on the same fig3-scale dataset,
# so the before/after story travels with the JSON.
# Arg(0) rows are the seed paths (getline / serial ASL1 decode), so the
# before/after ratio is computable from the JSON alone.
run_filter 'Ingest' "$INGEST_OUT"
run_filter 'DatasetColumns|DayBlockResample|ConfidenceReplicates' "$COLUMNAR_OUT" \
  --benchmark_context=prechange_analyze_once_ms=64.9 \
  --benchmark_context=prechange_day_block_resample_ms_per_rep=29.43 \
  --benchmark_context=prechange_confidence50_ms_best_of_3=3088.5 \
  --benchmark_context=postchange_analyze_once_ms=38.4 \
  --benchmark_context=postchange_day_block_resample_ms_per_rep=0.003 \
  --benchmark_context=postchange_confidence50_ms_best_of_3=1549.5
# Disk + mmap timings wobble; per-repetition samples feed the store gate's
# median, like the net sweep.
run_filter 'BM_Store' "$STORE_OUT" \
  --benchmark_repetitions=5 \
  --benchmark_report_aggregates_only=false

run_net
