# CTest driver for the opt-in benchmark regression gate (AUTOSENS_BENCH_GATE).
# Reruns one benchmark suite and diffs it against its committed baseline with
# tools/check_bench_regression.py.
#
# Expects: BENCH_BIN, BASELINE, CHECKER, PYTHON, WORK_DIR, GATE_NAME,
#          FILTER (benchmark_filter regex), KERNELS (;-list of BM_ names).

set(current_json "${WORK_DIR}/bench_gate_${GATE_NAME}_current.json")

execute_process(
  COMMAND "${BENCH_BIN}"
          "--benchmark_filter=${FILTER}"
          "--benchmark_format=json"
          "--benchmark_out_format=json"
          "--benchmark_out=${current_json}"
  RESULT_VARIABLE bench_result
  OUTPUT_QUIET)
if(NOT bench_result EQUAL 0)
  message(FATAL_ERROR "bench gate: micro_kernels failed (${bench_result})")
endif()

set(kernel_flags "")
foreach(kernel IN LISTS KERNELS)
  list(APPEND kernel_flags --kernel "${kernel}")
endforeach()

execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" "${BASELINE}" "${current_json}"
          --threshold 0.15
          ${kernel_flags}
  RESULT_VARIABLE check_result)
if(NOT check_result EQUAL 0)
  message(FATAL_ERROR "bench gate: regression check failed (${check_result})")
endif()
