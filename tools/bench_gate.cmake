# CTest driver for the opt-in benchmark regression gate (AUTOSENS_BENCH_GATE).
# Reruns the columnar data-plane kernels and diffs them against the committed
# baseline with tools/check_bench_regression.py.
#
# Expects: BENCH_BIN, BASELINE, CHECKER, PYTHON, WORK_DIR.

set(current_json "${WORK_DIR}/bench_gate_current.json")

execute_process(
  COMMAND "${BENCH_BIN}"
          "--benchmark_filter=DatasetColumns|DayBlockResample|ConfidenceReplicates"
          "--benchmark_format=json"
          "--benchmark_out_format=json"
          "--benchmark_out=${current_json}"
  RESULT_VARIABLE bench_result
  OUTPUT_QUIET)
if(NOT bench_result EQUAL 0)
  message(FATAL_ERROR "bench gate: micro_kernels failed (${bench_result})")
endif()

execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" "${BASELINE}" "${current_json}"
          --threshold 0.15
          --kernel BM_DatasetColumns
          --kernel BM_DayBlockResample
          --kernel BM_ConfidenceReplicates
  RESULT_VARIABLE check_result)
if(NOT check_result EQUAL 0)
  message(FATAL_ERROR "bench gate: regression check failed (${check_result})")
endif()
