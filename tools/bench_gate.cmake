# CTest driver for the opt-in benchmark regression gate (AUTOSENS_BENCH_GATE).
# Reruns one benchmark suite and diffs it against its committed baseline with
# tools/check_bench_regression.py.
#
# Expects: BENCH_BIN, BASELINE, CHECKER, PYTHON, WORK_DIR, GATE_NAME,
#          FILTER (benchmark_filter regex), KERNELS (;-list of BM_ names).
# Optional: REPETITIONS (run each benchmark N times and keep per-repetition
#           samples so the checker's spike filter has a distribution),
#           STAT (robust statistic to gate on: median | trimmed_mean | mean).

set(current_json "${WORK_DIR}/bench_gate_${GATE_NAME}_current.json")

set(rep_flags "")
if(DEFINED REPETITIONS AND REPETITIONS)
  list(APPEND rep_flags
       "--benchmark_repetitions=${REPETITIONS}"
       "--benchmark_report_aggregates_only=false")
endif()

execute_process(
  COMMAND "${BENCH_BIN}"
          "--benchmark_filter=${FILTER}"
          ${rep_flags}
          "--benchmark_format=json"
          "--benchmark_out_format=json"
          "--benchmark_out=${current_json}"
  RESULT_VARIABLE bench_result
  OUTPUT_QUIET)
if(NOT bench_result EQUAL 0)
  message(FATAL_ERROR "bench gate: micro_kernels failed (${bench_result})")
endif()

# KERNELS crosses the add_test -> ctest -> cmake -P boundary with escaped
# semicolons (one string item, not a list); unescape before iterating, or
# every name after the first reaches the checker as a bare positional.
string(REPLACE "\\;" ";" kernels_list "${KERNELS}")
set(kernel_flags "")
foreach(kernel IN LISTS kernels_list)
  list(APPEND kernel_flags --kernel "${kernel}")
endforeach()
if(DEFINED STAT AND STAT)
  list(APPEND kernel_flags --stat "${STAT}")
endif()

execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" "${BASELINE}" "${current_json}"
          --threshold 0.15
          ${kernel_flags}
  RESULT_VARIABLE check_result)
if(NOT check_result EQUAL 0)
  message(FATAL_ERROR "bench gate: regression check failed (${check_result})")
endif()
