#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and fail on real_time regressions.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json [--threshold 0.15]
                              [--kernel NAME ...]

Benchmarks are matched by their full name (e.g. "BM_DayBlockResample/1/
real_time"). With --kernel, only benchmarks whose name contains one of the
given substrings are gated; without it, every benchmark present in both
files is checked. A benchmark regresses when

    current.real_time > baseline.real_time * (1 + threshold)

for the same time_unit. Benchmarks where both sides run faster than
--min-time-us are reported but never fail: at microsecond scale a relative
threshold measures scheduler noise, not the kernel. Benchmarks present in
only one file are reported but do not fail the check (the suite is allowed
to grow). Exit status: 0 when no gated kernel regressed, 1 otherwise, 2 on
malformed input.
"""

import argparse
import json
import sys

NS_PER_UNIT = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path):
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, list):
        print(f"error: {path} has no 'benchmarks' array", file=sys.stderr)
        sys.exit(2)
    out = {}
    for entry in benchmarks:
        name = entry.get("name")
        real_time = entry.get("real_time")
        if name is None or real_time is None:
            continue
        if entry.get("run_type") == "aggregate":
            continue
        out[name] = (float(real_time), entry.get("time_unit", "ns"))
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed fractional real_time growth (default 0.15)")
    parser.add_argument("--kernel", action="append", default=[],
                        help="gate only benchmarks whose name contains this "
                             "substring (repeatable)")
    parser.add_argument("--min-time-us", type=float, default=100.0,
                        help="benchmarks faster than this on both sides are "
                             "reported but cannot fail (default 100us)")
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)

    def gated(name):
        return not args.kernel or any(k in name for k in args.kernel)

    regressions = []
    checked = 0
    for name, (base_time, base_unit) in sorted(baseline.items()):
        if not gated(name):
            continue
        if name not in current:
            print(f"note: {name} only in baseline (skipped)")
            continue
        cur_time, cur_unit = current[name]
        if cur_unit != base_unit:
            print(f"error: {name}: time_unit mismatch ({base_unit} vs {cur_unit})",
                  file=sys.stderr)
            sys.exit(2)
        checked += 1
        ratio = cur_time / base_time if base_time > 0 else float("inf")
        unit_ns = NS_PER_UNIT.get(base_unit, 1.0)
        floor_hit = max(base_time, cur_time) * unit_ns < args.min_time_us * 1e3
        status = "ok"
        if cur_time > base_time * (1.0 + args.threshold):
            if floor_hit:
                status = "noise"  # too fast to gate on a relative threshold
            else:
                status = "REGRESSION"
                regressions.append(name)
        print(f"{status:>10}  {name}: {base_time:.3f} -> {cur_time:.3f} {base_unit} "
              f"({ratio:+.1%} of baseline)")
    for name in sorted(current):
        if gated(name) and name not in baseline:
            print(f"note: {name} only in current (skipped)")

    if checked == 0:
        print("error: no benchmarks matched the gate", file=sys.stderr)
        sys.exit(2)
    if regressions:
        print(f"\n{len(regressions)} kernel(s) regressed beyond "
              f"{args.threshold:.0%}: {', '.join(regressions)}", file=sys.stderr)
        sys.exit(1)
    print(f"\nall {checked} gated kernel(s) within {args.threshold:.0%} of baseline")


if __name__ == "__main__":
    main()
