#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and fail on real_time regressions,
gating on a robust statistic over per-repetition samples.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json [--threshold 0.15]
                              [--kernel NAME ...] [--stat median]
                              [--spike-window 5] [--spike-mult 5.0]
                              [--noise-mult 3.0]
    check_bench_regression.py --self-test

Benchmarks are matched by their full name (e.g. "BM_KernelBiasedFill/1").
Files written with --benchmark_repetitions=N contribute one sample per
repetition (run_type == "iteration"); single-run files degenerate to one
sample per name. With --kernel, only benchmarks whose name contains one of
the given substrings are gated.

Each sample list goes through two robustness stages before the comparison:

 1. Temporal spike filter: a sliding-window (--spike-window) median tracks
    the local level of the repetition sequence; samples sitting more than
    --spike-mult MAD-sigmas ABOVE their local median are discarded as
    scheduler/interrupt spikes. The filter is one-sided (a latency spike is
    always positive) and refuses to drop more than half the samples, so a
    genuinely bimodal kernel is never silently averaged away.
 2. Robust statistic (--stat): median (default), trimmed_mean (central 60%),
    or mean (the legacy raw gate, applied after the spike filter; use
    --spike-mult inf to reproduce the old behaviour exactly).

A benchmark regresses only when BOTH hold for the same time_unit:

    cur_stat > base_stat * (1 + threshold)          -- relative growth
    cur_stat - base_stat > noise_mult * mad_sigma   -- above the noise floor

where mad_sigma = 1.4826 * MAD of the filtered baseline samples (zero for
single-sample baselines, disabling the floor). Benchmarks where both sides
run faster than --min-time-us are reported but never fail. Benchmarks
present in only one file are reported but do not fail the check (the suite
is allowed to grow). Exit status: 0 when no gated kernel regressed, 1
otherwise, 2 on malformed input. --self-test runs the embedded scenarios
(spike rejection, genuine regression, noise floor) and exits 0/1.
"""

import argparse
import json
import math
import sys

NS_PER_UNIT = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
MAD_TO_SIGMA = 1.4826  # MAD -> sigma for a normal distribution


def median(values):
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def mad_sigma(values):
    """Robust spread estimate: 1.4826 * median(|x - median(x)|)."""
    if len(values) < 2:
        return 0.0
    center = median(values)
    return MAD_TO_SIGMA * median([abs(v - center) for v in values])


def rolling_median(values, window):
    """Median of a centered window at each position (window clipped at the
    edges), tracking the local level of a temporal sample sequence."""
    half = max(1, window) // 2
    out = []
    for i in range(len(values)):
        lo = max(0, i - half)
        hi = min(len(values), i + half + 1)
        out.append(median(values[lo:hi]))
    return out

def filter_spikes(samples, window, mult):
    """Drop samples more than `mult` MAD-sigmas ABOVE their rolling median.

    One-sided: scheduler interrupts and frequency dips only ever make a
    repetition slower, and a too-fast sample would hide a regression if
    dropped. Returns (kept, dropped). Never drops more than half the
    samples; if it would, the sequence is bimodal rather than spiked and is
    returned unfiltered.
    """
    if len(samples) < 4 or not math.isfinite(mult):
        return list(samples), []
    local = rolling_median(samples, window)
    deviations = [s - m for s, m in zip(samples, local)]
    sigma = mad_sigma(deviations)
    if sigma <= 0.0:
        # Flat sequence (MAD collapses to zero when most repetitions are
        # identical): fall back to the mean absolute deviation, which a lone
        # spike cannot zero out.
        sigma = MAD_TO_SIGMA * sum(abs(d) for d in deviations) / len(deviations)
    if sigma <= 0.0:
        return list(samples), []
    kept, dropped = [], []
    for sample, level in zip(samples, local):
        (dropped if sample - level > mult * sigma else kept).append(sample)
    if len(kept) < (len(samples) + 1) // 2:
        return list(samples), []
    return kept, dropped


def trimmed_mean(values, trim=0.2):
    ordered = sorted(values)
    cut = int(len(ordered) * trim)
    core = ordered[cut:len(ordered) - cut] or ordered
    return sum(core) / len(core)


def statistic(values, stat):
    if stat == "median":
        return median(values)
    if stat == "trimmed_mean":
        return trimmed_mean(values)
    return sum(values) / len(values)


def evaluate(base_samples, cur_samples, *, threshold, stat, spike_window,
             spike_mult, noise_mult):
    """Gate one benchmark. Returns (regressed, detail dict)."""
    base_kept, base_dropped = filter_spikes(base_samples, spike_window, spike_mult)
    cur_kept, cur_dropped = filter_spikes(cur_samples, spike_window, spike_mult)
    base_stat = statistic(base_kept, stat)
    cur_stat = statistic(cur_kept, stat)
    floor = noise_mult * mad_sigma(base_kept)
    over_threshold = cur_stat > base_stat * (1.0 + threshold)
    over_noise = cur_stat - base_stat > floor
    return over_threshold and over_noise, {
        "base_stat": base_stat,
        "cur_stat": cur_stat,
        "noise_floor": floor,
        "dropped": len(base_dropped) + len(cur_dropped),
        "over_threshold": over_threshold,
        "over_noise": over_noise,
    }


def load_benchmarks(path):
    """name -> (samples in repetition order, time_unit)."""
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, list):
        print(f"error: {path} has no 'benchmarks' array", file=sys.stderr)
        sys.exit(2)
    out = {}
    for entry in benchmarks:
        name = entry.get("name")
        real_time = entry.get("real_time")
        if name is None or real_time is None:
            continue
        if entry.get("run_type") == "aggregate":
            continue
        # Repetition entries share a family name modulo the /repeats:N and
        # trailing iteration suffixes google-benchmark appends; run_name is
        # the stable key when present.
        key = entry.get("run_name", name)
        samples, unit = out.setdefault(key, ([], entry.get("time_unit", "ns")))
        if entry.get("time_unit", "ns") != unit:
            print(f"error: {path}: {key} mixes time units", file=sys.stderr)
            sys.exit(2)
        samples.append(float(real_time))
    return out


def self_test():
    """Embedded scenarios proving the robust gate behaves; exits 0/1."""
    opts = dict(threshold=0.15, stat="median", spike_window=5, spike_mult=5.0,
                noise_mult=3.0)
    failures = []

    def check(name, condition):
        print(f"{'ok' if condition else 'FAIL':>6}  self-test: {name}")
        if not condition:
            failures.append(name)

    # 1. A single scheduler spike in an otherwise-flat run: the legacy
    #    raw-mean gate flags it, the robust gate must not.
    base = [100.0] * 20
    spiked = [100.0 + 0.01 * i for i in range(19)] + [500.0]
    raw_mean = sum(spiked) / len(spiked)
    check("raw-mean gate would flag the spike",
          raw_mean > 100.0 * (1.0 + opts["threshold"]))
    regressed, detail = evaluate(base, spiked, **opts)
    check("robust gate rejects the injected spike",
          not regressed and detail["dropped"] == 1)

    # 2. A genuine 30% regression must still fail.
    regressed, _ = evaluate(base, [130.0 + 0.01 * i for i in range(20)], **opts)
    check("genuine 30% regression still fails", regressed)

    # 3. A genuine regression with a decoy spike in the baseline: filtering
    #    the baseline must not mask the current slowdown.
    regressed, _ = evaluate([100.0] * 19 + [400.0],
                            [130.0 + 0.01 * i for i in range(20)], **opts)
    check("baseline spike does not mask a regression", regressed)

    # 4. Noise floor: growth past the threshold but within the baseline's
    #    own MAD-sigma band is noise, not a regression.
    noisy_base = [90.0, 110.0, 95.0, 105.0, 92.0, 108.0, 94.0, 106.0, 98.0, 102.0]
    shifted = [v + 8.0 for v in noisy_base]
    tight = dict(opts, threshold=0.05)
    regressed, detail = evaluate(noisy_base, shifted, **tight)
    check("sub-noise-floor growth passes", not regressed and detail["over_threshold"])

    # 5. Single-sample files (legacy JSONs) still gate on the plain ratio.
    regressed, _ = evaluate([100.0], [130.0], **opts)
    check("single-sample regression still fails", regressed)
    regressed, _ = evaluate([100.0], [110.0], **opts)
    check("single-sample within threshold passes", not regressed)

    if failures:
        print(f"\nself-test FAILED: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("\nself-test passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("current", nargs="?")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed fractional growth of the robust "
                             "statistic (default 0.15)")
    parser.add_argument("--kernel", action="extend", nargs="+", default=[],
                        help="gate only benchmarks whose name contains one of "
                             "these substrings (repeatable, multi-value)")
    parser.add_argument("--min-time-us", type=float, default=100.0,
                        help="benchmarks faster than this on both sides are "
                             "reported but cannot fail (default 100us)")
    parser.add_argument("--stat", choices=("median", "trimmed_mean", "mean"),
                        default="median",
                        help="statistic compared across files (default median)")
    parser.add_argument("--spike-window", type=int, default=5,
                        help="sliding window (repetitions) of the temporal "
                             "spike filter (default 5)")
    parser.add_argument("--spike-mult", type=float, default=5.0,
                        help="drop samples this many MAD-sigmas above their "
                             "rolling median (default 5.0; inf disables)")
    parser.add_argument("--noise-mult", type=float, default=3.0,
                        help="regressions must clear this many baseline "
                             "MAD-sigmas (default 3.0; 0 disables)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded gate scenarios and exit")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())
    if args.baseline is None or args.current is None:
        parser.error("baseline and current JSON files are required")

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)

    def gated(name):
        return not args.kernel or any(k in name for k in args.kernel)

    regressions = []
    checked = 0
    for name, (base_samples, base_unit) in sorted(baseline.items()):
        if not gated(name):
            continue
        if name not in current:
            print(f"note: {name} only in baseline (skipped)")
            continue
        cur_samples, cur_unit = current[name]
        if cur_unit != base_unit:
            print(f"error: {name}: time_unit mismatch ({base_unit} vs {cur_unit})",
                  file=sys.stderr)
            sys.exit(2)
        checked += 1
        regressed, detail = evaluate(
            base_samples, cur_samples, threshold=args.threshold, stat=args.stat,
            spike_window=args.spike_window, spike_mult=args.spike_mult,
            noise_mult=args.noise_mult)
        base_stat, cur_stat = detail["base_stat"], detail["cur_stat"]
        ratio = cur_stat / base_stat if base_stat > 0 else float("inf")
        unit_ns = NS_PER_UNIT.get(base_unit, 1.0)
        floor_hit = max(base_stat, cur_stat) * unit_ns < args.min_time_us * 1e3
        status = "ok"
        if regressed:
            status = "noise" if floor_hit else "REGRESSION"
            if not floor_hit:
                regressions.append(name)
        elif detail["over_threshold"]:
            status = "noise"  # inside the MAD noise floor or the time floor
        spikes = f", {detail['dropped']} spike(s) dropped" if detail["dropped"] else ""
        reps = f"{len(base_samples)}v{len(cur_samples)} reps"
        print(f"{status:>10}  {name}: {args.stat} {base_stat:.3f} -> {cur_stat:.3f} "
              f"{base_unit} ({ratio - 1.0:+.1%}, {reps}{spikes})")
    for name in sorted(current):
        if gated(name) and name not in baseline:
            print(f"note: {name} only in current (skipped)")

    if checked == 0:
        print("error: no benchmarks matched the gate", file=sys.stderr)
        sys.exit(2)
    if regressions:
        print(f"\n{len(regressions)} kernel(s) regressed beyond "
              f"{args.threshold:.0%} of the {args.stat}: {', '.join(regressions)}",
              file=sys.stderr)
        sys.exit(1)
    print(f"\nall {checked} gated kernel(s) within {args.threshold:.0%} "
          f"of the baseline {args.stat}")


if __name__ == "__main__":
    main()
