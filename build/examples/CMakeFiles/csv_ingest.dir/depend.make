# Empty dependencies file for csv_ingest.
# This may be replaced when dependencies are built.
