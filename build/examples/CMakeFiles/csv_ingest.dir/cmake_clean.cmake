file(REMOVE_RECURSE
  "CMakeFiles/csv_ingest.dir/csv_ingest.cpp.o"
  "CMakeFiles/csv_ingest.dir/csv_ingest.cpp.o.d"
  "csv_ingest"
  "csv_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
