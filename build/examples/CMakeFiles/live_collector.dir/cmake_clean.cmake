file(REMOVE_RECURSE
  "CMakeFiles/live_collector.dir/live_collector.cpp.o"
  "CMakeFiles/live_collector.dir/live_collector.cpp.o.d"
  "live_collector"
  "live_collector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_collector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
