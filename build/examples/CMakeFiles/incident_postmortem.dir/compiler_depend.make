# Empty compiler generated dependencies file for incident_postmortem.
# This may be replaced when dependencies are built.
