file(REMOVE_RECURSE
  "CMakeFiles/incident_postmortem.dir/incident_postmortem.cpp.o"
  "CMakeFiles/incident_postmortem.dir/incident_postmortem.cpp.o.d"
  "incident_postmortem"
  "incident_postmortem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incident_postmortem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
