# Empty compiler generated dependencies file for conditioning_study.
# This may be replaced when dependencies are built.
