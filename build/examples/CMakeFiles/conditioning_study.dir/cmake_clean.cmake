file(REMOVE_RECURSE
  "CMakeFiles/conditioning_study.dir/conditioning_study.cpp.o"
  "CMakeFiles/conditioning_study.dir/conditioning_study.cpp.o.d"
  "conditioning_study"
  "conditioning_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conditioning_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
