file(REMOVE_RECURSE
  "CMakeFiles/action_type_study.dir/action_type_study.cpp.o"
  "CMakeFiles/action_type_study.dir/action_type_study.cpp.o.d"
  "action_type_study"
  "action_type_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/action_type_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
