# Empty dependencies file for action_type_study.
# This may be replaced when dependencies are built.
