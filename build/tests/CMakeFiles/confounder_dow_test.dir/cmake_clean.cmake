file(REMOVE_RECURSE
  "CMakeFiles/confounder_dow_test.dir/confounder_dow_test.cpp.o"
  "CMakeFiles/confounder_dow_test.dir/confounder_dow_test.cpp.o.d"
  "confounder_dow_test"
  "confounder_dow_test.pdb"
  "confounder_dow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confounder_dow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
