# Empty dependencies file for confounder_dow_test.
# This may be replaced when dependencies are built.
