file(REMOVE_RECURSE
  "CMakeFiles/logdir_test.dir/logdir_test.cpp.o"
  "CMakeFiles/logdir_test.dir/logdir_test.cpp.o.d"
  "logdir_test"
  "logdir_test.pdb"
  "logdir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logdir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
