# Empty compiler generated dependencies file for logdir_test.
# This may be replaced when dependencies are built.
