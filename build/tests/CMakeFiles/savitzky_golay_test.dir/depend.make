# Empty dependencies file for savitzky_golay_test.
# This may be replaced when dependencies are built.
