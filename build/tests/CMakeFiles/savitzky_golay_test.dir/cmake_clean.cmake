file(REMOVE_RECURSE
  "CMakeFiles/savitzky_golay_test.dir/savitzky_golay_test.cpp.o"
  "CMakeFiles/savitzky_golay_test.dir/savitzky_golay_test.cpp.o.d"
  "savitzky_golay_test"
  "savitzky_golay_test.pdb"
  "savitzky_golay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/savitzky_golay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
