# Empty dependencies file for user_stats_test.
# This may be replaced when dependencies are built.
