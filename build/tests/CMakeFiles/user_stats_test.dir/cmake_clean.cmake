file(REMOVE_RECURSE
  "CMakeFiles/user_stats_test.dir/user_stats_test.cpp.o"
  "CMakeFiles/user_stats_test.dir/user_stats_test.cpp.o.d"
  "user_stats_test"
  "user_stats_test.pdb"
  "user_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/user_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
