file(REMOVE_RECURSE
  "CMakeFiles/biased_test.dir/biased_test.cpp.o"
  "CMakeFiles/biased_test.dir/biased_test.cpp.o.d"
  "biased_test"
  "biased_test.pdb"
  "biased_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biased_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
