file(REMOVE_RECURSE
  "CMakeFiles/preference_model_test.dir/preference_model_test.cpp.o"
  "CMakeFiles/preference_model_test.dir/preference_model_test.cpp.o.d"
  "preference_model_test"
  "preference_model_test.pdb"
  "preference_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preference_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
