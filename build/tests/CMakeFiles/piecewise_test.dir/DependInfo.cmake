
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/piecewise_test.cpp" "tests/CMakeFiles/piecewise_test.dir/piecewise_test.cpp.o" "gcc" "tests/CMakeFiles/piecewise_test.dir/piecewise_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/autosens_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simulate/CMakeFiles/autosens_simulate.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/autosens_report.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/autosens_net.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/autosens_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/autosens_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
