file(REMOVE_RECURSE
  "CMakeFiles/unbiased_test.dir/unbiased_test.cpp.o"
  "CMakeFiles/unbiased_test.dir/unbiased_test.cpp.o.d"
  "unbiased_test"
  "unbiased_test.pdb"
  "unbiased_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unbiased_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
