# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for unbiased_test.
