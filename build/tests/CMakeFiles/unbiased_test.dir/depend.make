# Empty dependencies file for unbiased_test.
# This may be replaced when dependencies are built.
