file(REMOVE_RECURSE
  "CMakeFiles/estimator_property_test.dir/estimator_property_test.cpp.o"
  "CMakeFiles/estimator_property_test.dir/estimator_property_test.cpp.o.d"
  "estimator_property_test"
  "estimator_property_test.pdb"
  "estimator_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimator_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
