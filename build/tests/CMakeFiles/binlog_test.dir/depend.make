# Empty dependencies file for binlog_test.
# This may be replaced when dependencies are built.
