file(REMOVE_RECURSE
  "CMakeFiles/binlog_test.dir/binlog_test.cpp.o"
  "CMakeFiles/binlog_test.dir/binlog_test.cpp.o.d"
  "binlog_test"
  "binlog_test.pdb"
  "binlog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binlog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
