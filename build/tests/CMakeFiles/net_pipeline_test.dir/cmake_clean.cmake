file(REMOVE_RECURSE
  "CMakeFiles/net_pipeline_test.dir/net_pipeline_test.cpp.o"
  "CMakeFiles/net_pipeline_test.dir/net_pipeline_test.cpp.o.d"
  "net_pipeline_test"
  "net_pipeline_test.pdb"
  "net_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
