# Empty dependencies file for net_pipeline_test.
# This may be replaced when dependencies are built.
