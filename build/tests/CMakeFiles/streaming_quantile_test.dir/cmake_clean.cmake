file(REMOVE_RECURSE
  "CMakeFiles/streaming_quantile_test.dir/streaming_quantile_test.cpp.o"
  "CMakeFiles/streaming_quantile_test.dir/streaming_quantile_test.cpp.o.d"
  "streaming_quantile_test"
  "streaming_quantile_test.pdb"
  "streaming_quantile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_quantile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
