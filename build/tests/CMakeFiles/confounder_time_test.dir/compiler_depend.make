# Empty compiler generated dependencies file for confounder_time_test.
# This may be replaced when dependencies are built.
