file(REMOVE_RECURSE
  "CMakeFiles/confounder_time_test.dir/confounder_time_test.cpp.o"
  "CMakeFiles/confounder_time_test.dir/confounder_time_test.cpp.o.d"
  "confounder_time_test"
  "confounder_time_test.pdb"
  "confounder_time_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confounder_time_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
