file(REMOVE_RECURSE
  "CMakeFiles/diurnal_test.dir/diurnal_test.cpp.o"
  "CMakeFiles/diurnal_test.dir/diurnal_test.cpp.o.d"
  "diurnal_test"
  "diurnal_test.pdb"
  "diurnal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diurnal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
