file(REMOVE_RECURSE
  "CMakeFiles/core_preference_test.dir/core_preference_test.cpp.o"
  "CMakeFiles/core_preference_test.dir/core_preference_test.cpp.o.d"
  "core_preference_test"
  "core_preference_test.pdb"
  "core_preference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_preference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
