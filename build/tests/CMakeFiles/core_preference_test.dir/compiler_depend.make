# Empty compiler generated dependencies file for core_preference_test.
# This may be replaced when dependencies are built.
