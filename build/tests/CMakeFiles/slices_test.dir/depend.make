# Empty dependencies file for slices_test.
# This may be replaced when dependencies are built.
