file(REMOVE_RECURSE
  "CMakeFiles/slices_test.dir/slices_test.cpp.o"
  "CMakeFiles/slices_test.dir/slices_test.cpp.o.d"
  "slices_test"
  "slices_test.pdb"
  "slices_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slices_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
