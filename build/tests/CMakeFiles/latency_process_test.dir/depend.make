# Empty dependencies file for latency_process_test.
# This may be replaced when dependencies are built.
