file(REMOVE_RECURSE
  "CMakeFiles/latency_process_test.dir/latency_process_test.cpp.o"
  "CMakeFiles/latency_process_test.dir/latency_process_test.cpp.o.d"
  "latency_process_test"
  "latency_process_test.pdb"
  "latency_process_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_process_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
