# Empty compiler generated dependencies file for pchip_test.
# This may be replaced when dependencies are built.
