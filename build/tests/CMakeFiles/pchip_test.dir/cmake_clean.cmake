file(REMOVE_RECURSE
  "CMakeFiles/pchip_test.dir/pchip_test.cpp.o"
  "CMakeFiles/pchip_test.dir/pchip_test.cpp.o.d"
  "pchip_test"
  "pchip_test.pdb"
  "pchip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pchip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
