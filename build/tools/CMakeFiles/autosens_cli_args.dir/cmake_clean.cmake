file(REMOVE_RECURSE
  "CMakeFiles/autosens_cli_args.dir/cli_args.cpp.o"
  "CMakeFiles/autosens_cli_args.dir/cli_args.cpp.o.d"
  "libautosens_cli_args.a"
  "libautosens_cli_args.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autosens_cli_args.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
