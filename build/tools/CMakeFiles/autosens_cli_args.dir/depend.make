# Empty dependencies file for autosens_cli_args.
# This may be replaced when dependencies are built.
