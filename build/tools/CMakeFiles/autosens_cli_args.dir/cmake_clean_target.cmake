file(REMOVE_RECURSE
  "libautosens_cli_args.a"
)
