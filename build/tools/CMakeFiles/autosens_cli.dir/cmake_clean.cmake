file(REMOVE_RECURSE
  "CMakeFiles/autosens_cli.dir/autosens_cli.cpp.o"
  "CMakeFiles/autosens_cli.dir/autosens_cli.cpp.o.d"
  "autosens_cli"
  "autosens_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autosens_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
