# Empty compiler generated dependencies file for autosens_cli.
# This may be replaced when dependencies are built.
