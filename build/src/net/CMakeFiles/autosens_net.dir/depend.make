# Empty dependencies file for autosens_net.
# This may be replaced when dependencies are built.
