file(REMOVE_RECURSE
  "CMakeFiles/autosens_net.dir/collector.cpp.o"
  "CMakeFiles/autosens_net.dir/collector.cpp.o.d"
  "CMakeFiles/autosens_net.dir/emitter.cpp.o"
  "CMakeFiles/autosens_net.dir/emitter.cpp.o.d"
  "CMakeFiles/autosens_net.dir/socket.cpp.o"
  "CMakeFiles/autosens_net.dir/socket.cpp.o.d"
  "CMakeFiles/autosens_net.dir/wire.cpp.o"
  "CMakeFiles/autosens_net.dir/wire.cpp.o.d"
  "libautosens_net.a"
  "libautosens_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autosens_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
