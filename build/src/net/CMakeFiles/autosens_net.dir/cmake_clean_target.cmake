file(REMOVE_RECURSE
  "libautosens_net.a"
)
