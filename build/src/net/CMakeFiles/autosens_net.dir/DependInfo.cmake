
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/collector.cpp" "src/net/CMakeFiles/autosens_net.dir/collector.cpp.o" "gcc" "src/net/CMakeFiles/autosens_net.dir/collector.cpp.o.d"
  "/root/repo/src/net/emitter.cpp" "src/net/CMakeFiles/autosens_net.dir/emitter.cpp.o" "gcc" "src/net/CMakeFiles/autosens_net.dir/emitter.cpp.o.d"
  "/root/repo/src/net/socket.cpp" "src/net/CMakeFiles/autosens_net.dir/socket.cpp.o" "gcc" "src/net/CMakeFiles/autosens_net.dir/socket.cpp.o.d"
  "/root/repo/src/net/wire.cpp" "src/net/CMakeFiles/autosens_net.dir/wire.cpp.o" "gcc" "src/net/CMakeFiles/autosens_net.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/telemetry/CMakeFiles/autosens_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/autosens_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
