file(REMOVE_RECURSE
  "CMakeFiles/autosens_simulate.dir/diurnal.cpp.o"
  "CMakeFiles/autosens_simulate.dir/diurnal.cpp.o.d"
  "CMakeFiles/autosens_simulate.dir/generator.cpp.o"
  "CMakeFiles/autosens_simulate.dir/generator.cpp.o.d"
  "CMakeFiles/autosens_simulate.dir/latency_process.cpp.o"
  "CMakeFiles/autosens_simulate.dir/latency_process.cpp.o.d"
  "CMakeFiles/autosens_simulate.dir/population.cpp.o"
  "CMakeFiles/autosens_simulate.dir/population.cpp.o.d"
  "CMakeFiles/autosens_simulate.dir/preference.cpp.o"
  "CMakeFiles/autosens_simulate.dir/preference.cpp.o.d"
  "CMakeFiles/autosens_simulate.dir/presets.cpp.o"
  "CMakeFiles/autosens_simulate.dir/presets.cpp.o.d"
  "libautosens_simulate.a"
  "libautosens_simulate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autosens_simulate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
