file(REMOVE_RECURSE
  "libautosens_simulate.a"
)
