
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simulate/diurnal.cpp" "src/simulate/CMakeFiles/autosens_simulate.dir/diurnal.cpp.o" "gcc" "src/simulate/CMakeFiles/autosens_simulate.dir/diurnal.cpp.o.d"
  "/root/repo/src/simulate/generator.cpp" "src/simulate/CMakeFiles/autosens_simulate.dir/generator.cpp.o" "gcc" "src/simulate/CMakeFiles/autosens_simulate.dir/generator.cpp.o.d"
  "/root/repo/src/simulate/latency_process.cpp" "src/simulate/CMakeFiles/autosens_simulate.dir/latency_process.cpp.o" "gcc" "src/simulate/CMakeFiles/autosens_simulate.dir/latency_process.cpp.o.d"
  "/root/repo/src/simulate/population.cpp" "src/simulate/CMakeFiles/autosens_simulate.dir/population.cpp.o" "gcc" "src/simulate/CMakeFiles/autosens_simulate.dir/population.cpp.o.d"
  "/root/repo/src/simulate/preference.cpp" "src/simulate/CMakeFiles/autosens_simulate.dir/preference.cpp.o" "gcc" "src/simulate/CMakeFiles/autosens_simulate.dir/preference.cpp.o.d"
  "/root/repo/src/simulate/presets.cpp" "src/simulate/CMakeFiles/autosens_simulate.dir/presets.cpp.o" "gcc" "src/simulate/CMakeFiles/autosens_simulate.dir/presets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/telemetry/CMakeFiles/autosens_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/autosens_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
