# Empty dependencies file for autosens_simulate.
# This may be replaced when dependencies are built.
