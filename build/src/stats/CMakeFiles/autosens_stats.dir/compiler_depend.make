# Empty compiler generated dependencies file for autosens_stats.
# This may be replaced when dependencies are built.
