file(REMOVE_RECURSE
  "CMakeFiles/autosens_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/autosens_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/autosens_stats.dir/correlation.cpp.o"
  "CMakeFiles/autosens_stats.dir/correlation.cpp.o.d"
  "CMakeFiles/autosens_stats.dir/descriptive.cpp.o"
  "CMakeFiles/autosens_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/autosens_stats.dir/distance.cpp.o"
  "CMakeFiles/autosens_stats.dir/distance.cpp.o.d"
  "CMakeFiles/autosens_stats.dir/histogram.cpp.o"
  "CMakeFiles/autosens_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/autosens_stats.dir/linalg.cpp.o"
  "CMakeFiles/autosens_stats.dir/linalg.cpp.o.d"
  "CMakeFiles/autosens_stats.dir/pchip.cpp.o"
  "CMakeFiles/autosens_stats.dir/pchip.cpp.o.d"
  "CMakeFiles/autosens_stats.dir/piecewise.cpp.o"
  "CMakeFiles/autosens_stats.dir/piecewise.cpp.o.d"
  "CMakeFiles/autosens_stats.dir/rng.cpp.o"
  "CMakeFiles/autosens_stats.dir/rng.cpp.o.d"
  "CMakeFiles/autosens_stats.dir/sampling.cpp.o"
  "CMakeFiles/autosens_stats.dir/sampling.cpp.o.d"
  "CMakeFiles/autosens_stats.dir/savitzky_golay.cpp.o"
  "CMakeFiles/autosens_stats.dir/savitzky_golay.cpp.o.d"
  "CMakeFiles/autosens_stats.dir/streaming_quantile.cpp.o"
  "CMakeFiles/autosens_stats.dir/streaming_quantile.cpp.o.d"
  "CMakeFiles/autosens_stats.dir/timeseries.cpp.o"
  "CMakeFiles/autosens_stats.dir/timeseries.cpp.o.d"
  "libautosens_stats.a"
  "libautosens_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autosens_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
