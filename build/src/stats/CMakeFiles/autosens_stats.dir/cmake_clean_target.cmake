file(REMOVE_RECURSE
  "libautosens_stats.a"
)
