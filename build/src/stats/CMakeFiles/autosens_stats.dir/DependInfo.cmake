
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/bootstrap.cpp" "src/stats/CMakeFiles/autosens_stats.dir/bootstrap.cpp.o" "gcc" "src/stats/CMakeFiles/autosens_stats.dir/bootstrap.cpp.o.d"
  "/root/repo/src/stats/correlation.cpp" "src/stats/CMakeFiles/autosens_stats.dir/correlation.cpp.o" "gcc" "src/stats/CMakeFiles/autosens_stats.dir/correlation.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/autosens_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/autosens_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/distance.cpp" "src/stats/CMakeFiles/autosens_stats.dir/distance.cpp.o" "gcc" "src/stats/CMakeFiles/autosens_stats.dir/distance.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/autosens_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/autosens_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/linalg.cpp" "src/stats/CMakeFiles/autosens_stats.dir/linalg.cpp.o" "gcc" "src/stats/CMakeFiles/autosens_stats.dir/linalg.cpp.o.d"
  "/root/repo/src/stats/pchip.cpp" "src/stats/CMakeFiles/autosens_stats.dir/pchip.cpp.o" "gcc" "src/stats/CMakeFiles/autosens_stats.dir/pchip.cpp.o.d"
  "/root/repo/src/stats/piecewise.cpp" "src/stats/CMakeFiles/autosens_stats.dir/piecewise.cpp.o" "gcc" "src/stats/CMakeFiles/autosens_stats.dir/piecewise.cpp.o.d"
  "/root/repo/src/stats/rng.cpp" "src/stats/CMakeFiles/autosens_stats.dir/rng.cpp.o" "gcc" "src/stats/CMakeFiles/autosens_stats.dir/rng.cpp.o.d"
  "/root/repo/src/stats/sampling.cpp" "src/stats/CMakeFiles/autosens_stats.dir/sampling.cpp.o" "gcc" "src/stats/CMakeFiles/autosens_stats.dir/sampling.cpp.o.d"
  "/root/repo/src/stats/savitzky_golay.cpp" "src/stats/CMakeFiles/autosens_stats.dir/savitzky_golay.cpp.o" "gcc" "src/stats/CMakeFiles/autosens_stats.dir/savitzky_golay.cpp.o.d"
  "/root/repo/src/stats/streaming_quantile.cpp" "src/stats/CMakeFiles/autosens_stats.dir/streaming_quantile.cpp.o" "gcc" "src/stats/CMakeFiles/autosens_stats.dir/streaming_quantile.cpp.o.d"
  "/root/repo/src/stats/timeseries.cpp" "src/stats/CMakeFiles/autosens_stats.dir/timeseries.cpp.o" "gcc" "src/stats/CMakeFiles/autosens_stats.dir/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
