
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/biased.cpp" "src/core/CMakeFiles/autosens_core.dir/biased.cpp.o" "gcc" "src/core/CMakeFiles/autosens_core.dir/biased.cpp.o.d"
  "/root/repo/src/core/confidence.cpp" "src/core/CMakeFiles/autosens_core.dir/confidence.cpp.o" "gcc" "src/core/CMakeFiles/autosens_core.dir/confidence.cpp.o.d"
  "/root/repo/src/core/confounder_dow.cpp" "src/core/CMakeFiles/autosens_core.dir/confounder_dow.cpp.o" "gcc" "src/core/CMakeFiles/autosens_core.dir/confounder_dow.cpp.o.d"
  "/root/repo/src/core/confounder_time.cpp" "src/core/CMakeFiles/autosens_core.dir/confounder_time.cpp.o" "gcc" "src/core/CMakeFiles/autosens_core.dir/confounder_time.cpp.o.d"
  "/root/repo/src/core/locality.cpp" "src/core/CMakeFiles/autosens_core.dir/locality.cpp.o" "gcc" "src/core/CMakeFiles/autosens_core.dir/locality.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/autosens_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/autosens_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/preference.cpp" "src/core/CMakeFiles/autosens_core.dir/preference.cpp.o" "gcc" "src/core/CMakeFiles/autosens_core.dir/preference.cpp.o.d"
  "/root/repo/src/core/sensitivity.cpp" "src/core/CMakeFiles/autosens_core.dir/sensitivity.cpp.o" "gcc" "src/core/CMakeFiles/autosens_core.dir/sensitivity.cpp.o.d"
  "/root/repo/src/core/slices.cpp" "src/core/CMakeFiles/autosens_core.dir/slices.cpp.o" "gcc" "src/core/CMakeFiles/autosens_core.dir/slices.cpp.o.d"
  "/root/repo/src/core/streaming.cpp" "src/core/CMakeFiles/autosens_core.dir/streaming.cpp.o" "gcc" "src/core/CMakeFiles/autosens_core.dir/streaming.cpp.o.d"
  "/root/repo/src/core/unbiased.cpp" "src/core/CMakeFiles/autosens_core.dir/unbiased.cpp.o" "gcc" "src/core/CMakeFiles/autosens_core.dir/unbiased.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/telemetry/CMakeFiles/autosens_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/autosens_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
