# Empty dependencies file for autosens_core.
# This may be replaced when dependencies are built.
