file(REMOVE_RECURSE
  "libautosens_core.a"
)
