file(REMOVE_RECURSE
  "CMakeFiles/autosens_core.dir/biased.cpp.o"
  "CMakeFiles/autosens_core.dir/biased.cpp.o.d"
  "CMakeFiles/autosens_core.dir/confidence.cpp.o"
  "CMakeFiles/autosens_core.dir/confidence.cpp.o.d"
  "CMakeFiles/autosens_core.dir/confounder_dow.cpp.o"
  "CMakeFiles/autosens_core.dir/confounder_dow.cpp.o.d"
  "CMakeFiles/autosens_core.dir/confounder_time.cpp.o"
  "CMakeFiles/autosens_core.dir/confounder_time.cpp.o.d"
  "CMakeFiles/autosens_core.dir/locality.cpp.o"
  "CMakeFiles/autosens_core.dir/locality.cpp.o.d"
  "CMakeFiles/autosens_core.dir/pipeline.cpp.o"
  "CMakeFiles/autosens_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/autosens_core.dir/preference.cpp.o"
  "CMakeFiles/autosens_core.dir/preference.cpp.o.d"
  "CMakeFiles/autosens_core.dir/sensitivity.cpp.o"
  "CMakeFiles/autosens_core.dir/sensitivity.cpp.o.d"
  "CMakeFiles/autosens_core.dir/slices.cpp.o"
  "CMakeFiles/autosens_core.dir/slices.cpp.o.d"
  "CMakeFiles/autosens_core.dir/streaming.cpp.o"
  "CMakeFiles/autosens_core.dir/streaming.cpp.o.d"
  "CMakeFiles/autosens_core.dir/unbiased.cpp.o"
  "CMakeFiles/autosens_core.dir/unbiased.cpp.o.d"
  "libautosens_core.a"
  "libautosens_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autosens_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
