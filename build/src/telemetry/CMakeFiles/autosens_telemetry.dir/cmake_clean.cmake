file(REMOVE_RECURSE
  "CMakeFiles/autosens_telemetry.dir/binlog.cpp.o"
  "CMakeFiles/autosens_telemetry.dir/binlog.cpp.o.d"
  "CMakeFiles/autosens_telemetry.dir/clock.cpp.o"
  "CMakeFiles/autosens_telemetry.dir/clock.cpp.o.d"
  "CMakeFiles/autosens_telemetry.dir/csv.cpp.o"
  "CMakeFiles/autosens_telemetry.dir/csv.cpp.o.d"
  "CMakeFiles/autosens_telemetry.dir/dataset.cpp.o"
  "CMakeFiles/autosens_telemetry.dir/dataset.cpp.o.d"
  "CMakeFiles/autosens_telemetry.dir/filter.cpp.o"
  "CMakeFiles/autosens_telemetry.dir/filter.cpp.o.d"
  "CMakeFiles/autosens_telemetry.dir/jsonl.cpp.o"
  "CMakeFiles/autosens_telemetry.dir/jsonl.cpp.o.d"
  "CMakeFiles/autosens_telemetry.dir/logdir.cpp.o"
  "CMakeFiles/autosens_telemetry.dir/logdir.cpp.o.d"
  "CMakeFiles/autosens_telemetry.dir/record.cpp.o"
  "CMakeFiles/autosens_telemetry.dir/record.cpp.o.d"
  "CMakeFiles/autosens_telemetry.dir/user_stats.cpp.o"
  "CMakeFiles/autosens_telemetry.dir/user_stats.cpp.o.d"
  "CMakeFiles/autosens_telemetry.dir/validate.cpp.o"
  "CMakeFiles/autosens_telemetry.dir/validate.cpp.o.d"
  "libautosens_telemetry.a"
  "libautosens_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autosens_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
