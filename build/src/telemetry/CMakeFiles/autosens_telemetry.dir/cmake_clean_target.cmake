file(REMOVE_RECURSE
  "libautosens_telemetry.a"
)
