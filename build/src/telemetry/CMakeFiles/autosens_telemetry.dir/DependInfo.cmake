
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/binlog.cpp" "src/telemetry/CMakeFiles/autosens_telemetry.dir/binlog.cpp.o" "gcc" "src/telemetry/CMakeFiles/autosens_telemetry.dir/binlog.cpp.o.d"
  "/root/repo/src/telemetry/clock.cpp" "src/telemetry/CMakeFiles/autosens_telemetry.dir/clock.cpp.o" "gcc" "src/telemetry/CMakeFiles/autosens_telemetry.dir/clock.cpp.o.d"
  "/root/repo/src/telemetry/csv.cpp" "src/telemetry/CMakeFiles/autosens_telemetry.dir/csv.cpp.o" "gcc" "src/telemetry/CMakeFiles/autosens_telemetry.dir/csv.cpp.o.d"
  "/root/repo/src/telemetry/dataset.cpp" "src/telemetry/CMakeFiles/autosens_telemetry.dir/dataset.cpp.o" "gcc" "src/telemetry/CMakeFiles/autosens_telemetry.dir/dataset.cpp.o.d"
  "/root/repo/src/telemetry/filter.cpp" "src/telemetry/CMakeFiles/autosens_telemetry.dir/filter.cpp.o" "gcc" "src/telemetry/CMakeFiles/autosens_telemetry.dir/filter.cpp.o.d"
  "/root/repo/src/telemetry/jsonl.cpp" "src/telemetry/CMakeFiles/autosens_telemetry.dir/jsonl.cpp.o" "gcc" "src/telemetry/CMakeFiles/autosens_telemetry.dir/jsonl.cpp.o.d"
  "/root/repo/src/telemetry/logdir.cpp" "src/telemetry/CMakeFiles/autosens_telemetry.dir/logdir.cpp.o" "gcc" "src/telemetry/CMakeFiles/autosens_telemetry.dir/logdir.cpp.o.d"
  "/root/repo/src/telemetry/record.cpp" "src/telemetry/CMakeFiles/autosens_telemetry.dir/record.cpp.o" "gcc" "src/telemetry/CMakeFiles/autosens_telemetry.dir/record.cpp.o.d"
  "/root/repo/src/telemetry/user_stats.cpp" "src/telemetry/CMakeFiles/autosens_telemetry.dir/user_stats.cpp.o" "gcc" "src/telemetry/CMakeFiles/autosens_telemetry.dir/user_stats.cpp.o.d"
  "/root/repo/src/telemetry/validate.cpp" "src/telemetry/CMakeFiles/autosens_telemetry.dir/validate.cpp.o" "gcc" "src/telemetry/CMakeFiles/autosens_telemetry.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/autosens_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
