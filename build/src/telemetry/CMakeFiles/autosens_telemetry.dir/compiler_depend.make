# Empty compiler generated dependencies file for autosens_telemetry.
# This may be replaced when dependencies are built.
