# Empty compiler generated dependencies file for autosens_report.
# This may be replaced when dependencies are built.
