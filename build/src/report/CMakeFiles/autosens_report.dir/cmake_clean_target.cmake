file(REMOVE_RECURSE
  "libautosens_report.a"
)
