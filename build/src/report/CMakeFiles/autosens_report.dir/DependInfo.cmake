
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/report/ascii_chart.cpp" "src/report/CMakeFiles/autosens_report.dir/ascii_chart.cpp.o" "gcc" "src/report/CMakeFiles/autosens_report.dir/ascii_chart.cpp.o.d"
  "/root/repo/src/report/compare.cpp" "src/report/CMakeFiles/autosens_report.dir/compare.cpp.o" "gcc" "src/report/CMakeFiles/autosens_report.dir/compare.cpp.o.d"
  "/root/repo/src/report/csvout.cpp" "src/report/CMakeFiles/autosens_report.dir/csvout.cpp.o" "gcc" "src/report/CMakeFiles/autosens_report.dir/csvout.cpp.o.d"
  "/root/repo/src/report/table.cpp" "src/report/CMakeFiles/autosens_report.dir/table.cpp.o" "gcc" "src/report/CMakeFiles/autosens_report.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/autosens_core.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/autosens_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/autosens_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
