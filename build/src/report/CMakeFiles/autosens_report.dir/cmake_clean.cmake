file(REMOVE_RECURSE
  "CMakeFiles/autosens_report.dir/ascii_chart.cpp.o"
  "CMakeFiles/autosens_report.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/autosens_report.dir/compare.cpp.o"
  "CMakeFiles/autosens_report.dir/compare.cpp.o.d"
  "CMakeFiles/autosens_report.dir/csvout.cpp.o"
  "CMakeFiles/autosens_report.dir/csvout.cpp.o.d"
  "CMakeFiles/autosens_report.dir/table.cpp.o"
  "CMakeFiles/autosens_report.dir/table.cpp.o.d"
  "libautosens_report.a"
  "libautosens_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autosens_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
