# Empty compiler generated dependencies file for fig5_business_consumer.
# This may be replaced when dependencies are built.
