file(REMOVE_RECURSE
  "CMakeFiles/fig5_business_consumer.dir/fig5_business_consumer.cpp.o"
  "CMakeFiles/fig5_business_consumer.dir/fig5_business_consumer.cpp.o.d"
  "fig5_business_consumer"
  "fig5_business_consumer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_business_consumer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
