# Empty dependencies file for table1_normalization.
# This may be replaced when dependencies are built.
