file(REMOVE_RECURSE
  "CMakeFiles/table1_normalization.dir/table1_normalization.cpp.o"
  "CMakeFiles/table1_normalization.dir/table1_normalization.cpp.o.d"
  "table1_normalization"
  "table1_normalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_normalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
