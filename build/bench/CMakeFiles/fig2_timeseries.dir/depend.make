# Empty dependencies file for fig2_timeseries.
# This may be replaced when dependencies are built.
