file(REMOVE_RECURSE
  "CMakeFiles/fig2_timeseries.dir/fig2_timeseries.cpp.o"
  "CMakeFiles/fig2_timeseries.dir/fig2_timeseries.cpp.o.d"
  "fig2_timeseries"
  "fig2_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
