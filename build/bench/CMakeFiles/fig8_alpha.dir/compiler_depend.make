# Empty compiler generated dependencies file for fig8_alpha.
# This may be replaced when dependencies are built.
