file(REMOVE_RECURSE
  "CMakeFiles/fig8_alpha.dir/fig8_alpha.cpp.o"
  "CMakeFiles/fig8_alpha.dir/fig8_alpha.cpp.o.d"
  "fig8_alpha"
  "fig8_alpha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
