file(REMOVE_RECURSE
  "CMakeFiles/ext_weekday_weekend.dir/ext_weekday_weekend.cpp.o"
  "CMakeFiles/ext_weekday_weekend.dir/ext_weekday_weekend.cpp.o.d"
  "ext_weekday_weekend"
  "ext_weekday_weekend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_weekday_weekend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
