# Empty compiler generated dependencies file for ext_weekday_weekend.
# This may be replaced when dependencies are built.
