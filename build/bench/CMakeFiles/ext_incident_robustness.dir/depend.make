# Empty dependencies file for ext_incident_robustness.
# This may be replaced when dependencies are built.
