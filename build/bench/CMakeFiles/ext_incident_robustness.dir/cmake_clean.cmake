file(REMOVE_RECURSE
  "CMakeFiles/ext_incident_robustness.dir/ext_incident_robustness.cpp.o"
  "CMakeFiles/ext_incident_robustness.dir/ext_incident_robustness.cpp.o.d"
  "ext_incident_robustness"
  "ext_incident_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_incident_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
