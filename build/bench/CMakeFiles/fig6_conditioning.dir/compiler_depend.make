# Empty compiler generated dependencies file for fig6_conditioning.
# This may be replaced when dependencies are built.
