file(REMOVE_RECURSE
  "CMakeFiles/fig6_conditioning.dir/fig6_conditioning.cpp.o"
  "CMakeFiles/fig6_conditioning.dir/fig6_conditioning.cpp.o.d"
  "fig6_conditioning"
  "fig6_conditioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_conditioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
