file(REMOVE_RECURSE
  "CMakeFiles/fig9_months.dir/fig9_months.cpp.o"
  "CMakeFiles/fig9_months.dir/fig9_months.cpp.o.d"
  "fig9_months"
  "fig9_months.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_months.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
