# Empty dependencies file for fig9_months.
# This may be replaced when dependencies are built.
