file(REMOVE_RECURSE
  "CMakeFiles/fig3_methodology.dir/fig3_methodology.cpp.o"
  "CMakeFiles/fig3_methodology.dir/fig3_methodology.cpp.o.d"
  "fig3_methodology"
  "fig3_methodology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_methodology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
