# Empty dependencies file for fig3_methodology.
# This may be replaced when dependencies are built.
