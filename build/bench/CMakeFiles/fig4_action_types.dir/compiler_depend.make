# Empty compiler generated dependencies file for fig4_action_types.
# This may be replaced when dependencies are built.
