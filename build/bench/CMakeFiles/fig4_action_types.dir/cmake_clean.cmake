file(REMOVE_RECURSE
  "CMakeFiles/fig4_action_types.dir/fig4_action_types.cpp.o"
  "CMakeFiles/fig4_action_types.dir/fig4_action_types.cpp.o.d"
  "fig4_action_types"
  "fig4_action_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_action_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
