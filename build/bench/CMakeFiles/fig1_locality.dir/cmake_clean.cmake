file(REMOVE_RECURSE
  "CMakeFiles/fig1_locality.dir/fig1_locality.cpp.o"
  "CMakeFiles/fig1_locality.dir/fig1_locality.cpp.o.d"
  "fig1_locality"
  "fig1_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
