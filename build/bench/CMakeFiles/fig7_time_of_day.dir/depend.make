# Empty dependencies file for fig7_time_of_day.
# This may be replaced when dependencies are built.
